//! The paper's §3 formalization in action: enumerate every
//! non-α-equivalent variant of the WHILE program of Figure 5 and
//! differential-test the buggy WHILE compiler (the §5.3 generality
//! experiment in miniature).
//!
//! Run with `cargo run --example while_enumeration`.

use spe::combinatorics::Rgs;
use spe::skeleton::WhileSkeleton;
use spe::while_lang::compiler::{compile, execute, BugProfile, Options};
use spe::while_lang::{interpret, Outcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sk = WhileSkeleton::from_source("a := 10; b := 1; while a do a := a - b")?;
    let (n, k) = (sk.num_holes(), sk.variables().len());
    println!(
        "Figure 5: {n} holes over {k} variables -> {} naive fillings, {} partitions\n",
        sk.instance().naive_count(),
        spe::combinatorics::paper_count(sk.instance()),
    );

    let mut crashes = std::collections::BTreeSet::new();
    let mut wrong = 0;
    let mut shown = 0;
    let mut names = Vec::new();
    let mut rendered = String::new();
    for rgs in Rgs::new(n, k) {
        // Variants are realized through the compiled render template
        // (segment/slot splice into reused buffers) and re-parsed for
        // execution; `realize_rgs` survives as the differential oracle.
        sk.render_rgs_into(&rgs, &mut names, &mut rendered);
        let variant = spe::while_lang::parse(&rendered)?;
        if shown < 3 {
            println!("--- variant {rgs:?} ---\n{rendered}\n");
            shown += 1;
        }
        let Ok(Outcome::Finished(reference)) = interpret(&variant, 20_000) else {
            continue; // non-terminating variant: skipped, like UB in C
        };
        match compile(
            &variant,
            Options {
                opt_level: 1,
                profile: BugProfile::CompCertSim,
            },
        ) {
            Err(ice) => {
                crashes.insert(ice.to_string());
            }
            Ok(c) => {
                if let Ok(Outcome::Finished(out)) = execute(&c, 200_000) {
                    if out != reference {
                        wrong += 1;
                    }
                }
            }
        }
    }
    println!(
        "compcert-sim: {} distinct crash signatures, {wrong} miscompiled variants",
        crashes.len()
    );
    for c in &crashes {
        println!("  {c}");
    }
    Ok(())
}
