//! Bug hunting: differential-test the simulated trunk compilers with SPE
//! variants of the paper's own figure programs (§2 and Figure 11).
//!
//! Run with `cargo run --example bug_hunt`.

use spe::core::Algorithm;
use spe::harness::{run_campaign, CampaignConfig};
use spe::simcc::{Compiler, CompilerId};

fn main() {
    let files = spe::corpus::seeds::all();
    println!("Hunting bugs in {} seed skeletons...\n", files.len());
    let report = run_campaign(
        &files,
        &CampaignConfig {
            compilers: vec![
                Compiler::new(CompilerId::gcc(700), 0),
                Compiler::new(CompilerId::gcc(700), 3),
                Compiler::new(CompilerId::clang(390), 0),
                Compiler::new(CompilerId::clang(390), 3),
            ],
            budget: 300,
            algorithm: Algorithm::Paper,
            check_wrong_code: true,
            fuel: 50_000,
        },
    );
    println!(
        "{} variants tested, {} skipped by the UB oracle, {} reports ({} duplicates)\n",
        report.variants_tested,
        report.variants_ub_skipped,
        report.findings.len(),
        report.duplicates(),
    );
    for f in &report.findings {
        println!(
            "[{}] {} at -O{}: {}",
            f.kind.label(),
            f.compiler,
            f.opt,
            f.signature
        );
        if let Some(bug) = f.bug_id {
            println!("    root cause (triaged): {bug}  [from {}]", f.file);
        }
    }
}
