//! Quickstart: skeletal program enumeration of the paper's Figure 1.
//!
//! Run with `cargo run --example quickstart`.

use spe::core::{naive_count, spe_count, Enumerator, EnumeratorConfig, Granularity, Skeleton};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The motivating program of the paper (Figure 1).
    let src = "int main() {
    int a, b = 1;
    b = b - a;
    if (a)
        a = a - b;
    return 0;
}";
    let sk = Skeleton::from_source(src)?;
    println!(
        "Skeleton has {} holes over {} variables\n",
        sk.num_holes(),
        2
    );
    println!(
        "Naive fillings:            {}",
        naive_count(&sk, Granularity::Intra)
    );
    println!(
        "Non-α-equivalent variants: {}\n",
        spe_count(&sk, Granularity::Intra)
    );

    // Enumerate and show the first three variants (P1, P2, P3 of
    // Figure 1 are among them).
    let enumerator = Enumerator::new(EnumeratorConfig::default());
    let variants = enumerator.collect_sources(&sk);
    for (i, v) in variants.iter().take(3).enumerate() {
        println!("--- variant {i} ---\n{v}");
    }
    println!("... and {} more", variants.len().saturating_sub(3));
    Ok(())
}
