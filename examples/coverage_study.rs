//! Coverage study (the paper's Figure 9 at quick scale): how much more of
//! the compiler do SPE variants exercise compared to Orion-style
//! statement deletion?
//!
//! Run with `cargo run --example coverage_study`.

use spe::corpus::{generate, CorpusConfig};
use spe::harness::coverage_run::figure9;

fn main() {
    let files = generate(&CorpusConfig {
        files: 40,
        seed: 45,
    });
    println!(
        "Measuring pass coverage over {} test programs (budget 25/file)...\n",
        files.len()
    );
    let fig = figure9(&files, 25, &[10, 20, 30], 7);
    println!(
        "Baseline suite:  {:6.2}% functions, {:6.2}% lines",
        fig.baseline.function, fig.baseline.line
    );
    for (x, p) in &fig.pm {
        println!(
            "PM-{x:<2} adds:     {:+6.2}% functions, {:+6.2}% lines",
            p.function, p.line
        );
    }
    println!(
        "SPE adds:        {:+6.2}% functions, {:+6.2}% lines",
        fig.spe.function, fig.spe.line
    );
}
