//! Synthetic c-torture-like corpus for skeletal program enumeration.
//!
//! The paper's evaluation derives skeletons from GCC-4.8.5's regression
//! test-suite (~21K files, Table 2: avg 7.34 holes, 2.77 scopes, 1.85
//! functions, 3.46 candidate variables per hole). That suite is not
//! shippable here, so this crate generates a seeded, deterministic corpus
//! calibrated to the same statistics, plus the paper's own figure
//! programs as hand-written seeds. See `DESIGN.md` §3.
//!
//! # Examples
//!
//! ```
//! use spe_corpus::{generate, CorpusConfig};
//!
//! let files = generate(&CorpusConfig { files: 10, seed: 42 });
//! assert_eq!(files.len(), 10);
//! for f in &files {
//!     spe_minic::parse(&f.source).expect("corpus programs parse");
//! }
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod seeds;
pub mod stats;

/// Corpus generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusConfig {
    /// Number of files to generate.
    pub files: usize,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            files: 2000,
            seed: 42,
        }
    }
}

/// One generated test file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestFile {
    /// Synthetic file name.
    pub name: String,
    /// Mini-C source.
    pub source: String,
}

/// Generates the corpus: mostly tiny c-torture-style programs, a minority
/// with pointers/arrays/gotos/structs, and a heavy tail of large
/// straight-line files that dominate the naive search space (as in the
/// paper's Table 1, where the naive total reaches 10^163).
pub fn generate(config: &CorpusConfig) -> Vec<TestFile> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    (0..config.files)
        .map(|i| {
            let source = gen_file(&mut rng, i);
            TestFile {
                name: format!("synthetic/t{i:05}.c"),
                source,
            }
        })
        .collect()
}

struct Gen {
    out: String,
    /// Visible integer variable names, per scope depth.
    scopes: Vec<Vec<String>>,
    next_var: usize,
    indent: usize,
}

impl Gen {
    fn new() -> Gen {
        Gen {
            out: String::new(),
            scopes: vec![Vec::new()],
            next_var: 0,
            indent: 0,
        }
    }

    fn fresh(&mut self) -> String {
        // Single letters first, then indexed names — like reduced test
        // cases in bug reports.
        const LETTERS: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
        let name = if self.next_var < LETTERS.len() {
            (LETTERS[self.next_var] as char).to_string()
        } else {
            format!("v{}", self.next_var)
        };
        self.next_var += 1;
        name
    }

    fn visible(&self) -> Vec<String> {
        self.scopes.iter().flatten().cloned().collect()
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn expr(&mut self, rng: &mut SmallRng, depth: usize) -> String {
        let vars = self.visible();
        if depth == 0 || vars.is_empty() || rng.gen_bool(0.3) {
            if !vars.is_empty() && rng.gen_bool(0.7) {
                return vars[rng.gen_range(0..vars.len())].clone();
            }
            return rng.gen_range(0..20i64).to_string();
        }
        let a = self.expr(rng, depth - 1);
        let b = self.expr(rng, depth - 1);
        let op = match rng.gen_range(0..10) {
            0..=3 => "+",
            4..=6 => "-",
            7..=8 => "*",
            _ => {
                // A ternary instead of an operator occasionally.
                let c = self.expr(rng, 0);
                return format!("({a} ? {b} : {c})");
            }
        };
        format!("({a} {op} {b})")
    }

    fn stmt(&mut self, rng: &mut SmallRng, depth: usize) {
        let vars = self.visible();
        if vars.is_empty() {
            let name = self.fresh();
            let init = rng.gen_range(0..10);
            self.line(&format!("int {name} = {init};"));
            self.scopes.last_mut().expect("scope").push(name);
            return;
        }
        match rng.gen_range(0..100) {
            // Plain assignment — the bread and butter of c-torture.
            0..=44 => {
                let target = vars[rng.gen_range(0..vars.len())].clone();
                let depth = rng.gen_range(1..3);
                let e = self.expr(rng, depth);
                self.line(&format!("{target} = {e};"));
            }
            45..=57 => {
                let target = vars[rng.gen_range(0..vars.len())].clone();
                let e = self.expr(rng, 1);
                let op = ["+=", "-=", "*="][rng.gen_range(0..3)];
                self.line(&format!("{target} {op} {e};"));
            }
            // New local declaration.
            58..=69 => {
                let name = self.fresh();
                let init = self.expr(rng, 1);
                self.line(&format!("int {name} = {init};"));
                self.scopes.last_mut().expect("scope").push(name);
            }
            // `if` with a block scope (the Figure 6 pattern).
            70..=84 if depth > 0 => {
                let cond = self.expr(rng, 1);
                self.line(&format!("if ({cond}) {{"));
                self.indent += 1;
                self.scopes.push(Vec::new());
                if rng.gen_bool(0.5) {
                    let name = self.fresh();
                    let init = self.expr(rng, 1);
                    self.line(&format!("int {name} = {init};"));
                    self.scopes.last_mut().expect("scope").push(name);
                }
                let inner = rng.gen_range(1..3);
                for _ in 0..inner {
                    self.stmt(rng, depth - 1);
                }
                self.scopes.pop();
                self.indent -= 1;
                self.line("}");
            }
            // Bounded for loop.
            85..=94 if depth > 0 => {
                let i = self.fresh();
                let bound = rng.gen_range(2..6);
                let target = vars[rng.gen_range(0..vars.len())].clone();
                self.line(&format!("for (int {i} = 0; {i} < {bound}; {i}++) {{"));
                self.indent += 1;
                self.scopes.push(vec![i.clone()]);
                let e = self.expr(rng, 1);
                self.line(&format!("{target} += {e};"));
                self.scopes.pop();
                self.indent -= 1;
                self.line("}");
            }
            _ => {
                let target = vars[rng.gen_range(0..vars.len())].clone();
                let e = self.expr(rng, 1);
                self.line(&format!("{target} = {e};"));
            }
        }
    }
}

fn gen_file(rng: &mut SmallRng, idx: usize) -> String {
    let profile = rng.gen_range(0..100);
    match profile {
        // 3%: struct-bearing files (exercise the C++-ish frontend bugs;
        // compile-only in campaigns).
        0..=2 => gen_struct_file(rng),
        // 6%: pointer/alias files (the Figure 2 population).
        3..=8 => gen_pointer_file(rng),
        // 6%: array/loop files (the Figure 12(b) population).
        9..=14 => gen_array_file(rng),
        // 4%: goto/label files (the Figure 11 population).
        15..=18 => gen_goto_file(rng),
        // 2%: heavy tail — large straight-line files dominating the
        // naive search space.
        19..=20 => gen_tail_file(rng, idx),
        // 20%: multi-type files — several independent type groups, the
        // structure behind the paper's six-orders-of-magnitude reduction
        // under the 10K threshold (naive multiplies over all holes, SPE
        // multiplies small per-group partition counts).
        21..=40 => gen_multitype_file(rng),
        // The rest: small arithmetic torture tests.
        _ => gen_plain_file(rng),
    }
}

fn gen_plain_file(rng: &mut SmallRng) -> String {
    let mut g = Gen::new();
    let nglobals = rng.gen_range(0..3);
    for _ in 0..nglobals {
        let name = g.fresh();
        let init = rng.gen_range(0..10);
        g.line(&format!("int {name} = {init};"));
        g.scopes[0].push(name);
    }
    let helpers = rng.gen_range(0..2);
    for h in 0..helpers {
        let p = g.fresh();
        g.line(&format!("int helper{h}(int {p}) {{"));
        g.indent += 1;
        g.scopes.push(vec![p]);
        let n = rng.gen_range(1..3);
        for _ in 0..n {
            g.stmt(rng, 1);
        }
        let ret = g.expr(rng, 1);
        g.line(&format!("return {ret};"));
        g.scopes.pop();
        g.indent -= 1;
        g.line("}");
    }
    g.line("int main() {");
    g.indent += 1;
    g.scopes.push(Vec::new());
    let nlocals = rng.gen_range(1..4);
    for _ in 0..nlocals {
        let name = g.fresh();
        let init = g.expr(rng, 1);
        g.line(&format!("int {name} = {init};"));
        g.scopes.last_mut().expect("scope").push(name);
    }
    let nstmts = rng.gen_range(2..7);
    for _ in 0..nstmts {
        g.stmt(rng, 2);
    }
    if helpers > 0 && rng.gen_bool(0.5) {
        let vars = g.visible();
        let target = vars[rng.gen_range(0..vars.len())].clone();
        let arg = g.expr(rng, 1);
        g.line(&format!("{target} = helper0({arg});"));
    }
    let ret = g.expr(rng, 1);
    g.line(&format!("return {ret};"));
    g.indent -= 1;
    g.line("}");
    g.out
}

fn gen_pointer_file(rng: &mut SmallRng) -> String {
    let mut g = Gen::new();
    let a = g.fresh();
    g.line(&format!("int {a} = 0;"));
    g.scopes[0].push(a.clone());
    let b = g.fresh();
    g.line(&format!("int {b} = 0;"));
    g.scopes[0].push(b.clone());
    g.line("int main() {");
    g.indent += 1;
    g.scopes.push(Vec::new());
    // Two pointers; whether they alias depends on enumeration.
    let t1 = if rng.gen_bool(0.5) {
        a.clone()
    } else {
        b.clone()
    };
    let t2 = if rng.gen_bool(0.5) {
        a.clone()
    } else {
        b.clone()
    };
    g.line(&format!("int *p = &{t1}, *q = &{t2};"));
    g.line(&format!("*p = {};", rng.gen_range(1..5)));
    g.line(&format!("*q = {};", rng.gen_range(5..9)));
    for _ in 0..rng.gen_range(0..3) {
        g.stmt(rng, 1);
    }
    let ret = if rng.gen_bool(0.5) { a } else { b };
    g.line(&format!("return {ret};"));
    g.indent -= 1;
    g.line("}");
    g.out
}

fn gen_array_file(rng: &mut SmallRng) -> String {
    let mut g = Gen::new();
    let n = rng.gen_range(4..10);
    g.line(&format!("int u[{n}];"));
    let a = g.fresh();
    let b = g.fresh();
    g.line(&format!("int {a} = 1, {b} = 2;"));
    g.scopes[0].push(a.clone());
    g.scopes[0].push(b.clone());
    g.line("int main() {");
    g.indent += 1;
    g.scopes.push(Vec::new());
    let i = g.fresh();
    g.line(&format!("for (int {i} = 0; {i} < {n}; {i}++) {{"));
    g.indent += 1;
    g.scopes.push(vec![i.clone()]);
    let e = g.expr(rng, 1);
    g.line(&format!("u[{i}] = {e};"));
    g.scopes.pop();
    g.indent -= 1;
    g.line("}");
    for _ in 0..rng.gen_range(1..4) {
        g.stmt(rng, 1);
    }
    g.line(&format!("return u[{}] + {a};", rng.gen_range(0..n)));
    g.indent -= 1;
    g.line("}");
    g.out
}

fn gen_goto_file(rng: &mut SmallRng) -> String {
    let mut g = Gen::new();
    g.line("int main() {");
    g.indent += 1;
    g.scopes.push(Vec::new());
    let i = g.fresh();
    let s = g.fresh();
    g.line(&format!("int {i} = 0, {s} = 0;"));
    g.scopes.last_mut().expect("scope").push(i.clone());
    g.scopes.last_mut().expect("scope").push(s.clone());
    g.line("again:");
    g.line(&format!("{i}++;"));
    let e = g.expr(rng, 1);
    g.line(&format!("{s} += {e};"));
    let bound = rng.gen_range(2..6);
    g.line(&format!("if ({i} < {bound}) goto again;"));
    for _ in 0..rng.gen_range(0..3) {
        g.stmt(rng, 1);
    }
    g.line(&format!("return {s};"));
    g.indent -= 1;
    g.line("}");
    g.out
}

fn gen_struct_file(rng: &mut SmallRng) -> String {
    let mut g = Gen::new();
    g.line("struct s {");
    g.line("    char c[1];");
    g.line("};");
    g.line("struct s a, b, c;");
    let d = g.fresh();
    let e = g.fresh();
    g.line(&format!("int {d} = 0; int {e} = 0;"));
    g.scopes[0].push(d.clone());
    g.scopes[0].push(e.clone());
    g.line("int main(void) {");
    g.indent += 1;
    g.scopes.push(Vec::new());
    // Nested conditional expressions over the int globals — the Figure 3
    // shape; which variables repeat is up to enumeration.
    let x = if rng.gen_bool(0.5) {
        d.clone()
    } else {
        e.clone()
    };
    let y = if rng.gen_bool(0.5) {
        d.clone()
    } else {
        e.clone()
    };
    g.line(&format!(
        "{d} = {x} ? ({y} == 0 ? 1 : 2) : ({x} == 0 ? 3 : 4);"
    ));
    g.line("return 0;");
    g.indent -= 1;
    g.line("}");
    g.out
}

fn gen_multitype_file(rng: &mut SmallRng) -> String {
    const TYPES: &[&str] = &["int", "unsigned", "long", "char", "double", "float"];
    let mut g = Gen::new();
    let ngroups = rng.gen_range(4..=TYPES.len() + 4);
    // Declare 2-3 variables per type group (pointer variants double the
    // group space); remember them per group.
    let mut groups: Vec<Vec<String>> = Vec::new();
    for gi in 0..ngroups {
        let ty = TYPES[gi % TYPES.len()];
        let star = if gi >= TYPES.len() { "*" } else { "" };
        // Few holes over many candidates per group: this is where the
        // (k-1)! reduction of Equation (2) bites hardest.
        let nvars = rng.gen_range(4..7);
        let mut names = Vec::new();
        let mut decl = format!("{ty} ");
        for v in 0..nvars {
            let name = g.fresh();
            if v > 0 {
                decl.push_str(", ");
            }
            decl.push_str(&format!("{star}{name}"));
            names.push(name);
        }
        decl.push(';');
        g.line(&decl);
        groups.push(names);
    }
    g.line("int main() {");
    g.indent += 1;
    // One or two holes' worth of uses per group, within the group's type.
    for (gi, names) in groups.iter().enumerate() {
        let is_ptr = gi >= TYPES.len();
        let a = &names[rng.gen_range(0..names.len())];
        let b = &names[rng.gen_range(0..names.len())];
        if is_ptr || rng.gen_bool(0.7) {
            g.line(&format!("{a} = {b};"));
        } else {
            let c = &names[rng.gen_range(0..names.len())];
            g.line(&format!("{a} = {b} + {c};"));
        }
    }
    g.line("return 0;");
    g.indent -= 1;
    g.line("}");
    g.out
}

fn gen_tail_file(rng: &mut SmallRng, idx: usize) -> String {
    let mut g = Gen::new();
    // Many variables, long straight-line body: the naive product
    // explodes while SPE stays Bell-bounded per block.
    let nvars = rng.gen_range(10..22);
    let nstmts = rng.gen_range(40..120) + (idx % 7) * 10;
    let mut decl = String::from("int ");
    for v in 0..nvars {
        let name = g.fresh();
        if v > 0 {
            decl.push_str(", ");
        }
        decl.push_str(&format!("{name} = {v}"));
        g.scopes[0].push(name);
    }
    decl.push(';');
    g.line(&decl);
    g.line("int main() {");
    g.indent += 1;
    g.scopes.push(Vec::new());
    for _ in 0..nstmts {
        let vars = g.visible();
        let t = vars[rng.gen_range(0..vars.len())].clone();
        let a = vars[rng.gen_range(0..vars.len())].clone();
        let b = vars[rng.gen_range(0..vars.len())].clone();
        let op = ["+", "-", "*"][rng.gen_range(0..3)];
        g.line(&format!("{t} = {a} {op} {b};"));
    }
    let ret = g.visible()[0].clone();
    g.line(&format!("return {ret};"));
    g.indent -= 1;
    g.line("}");
    g.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_skeleton::Skeleton;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&CorpusConfig { files: 25, seed: 7 });
        let b = generate(&CorpusConfig { files: 25, seed: 7 });
        assert_eq!(a, b);
        let c = generate(&CorpusConfig { files: 25, seed: 8 });
        assert_ne!(a, c);
    }

    #[test]
    fn all_files_parse_and_analyze() {
        let files = generate(&CorpusConfig {
            files: 300,
            seed: 42,
        });
        for f in &files {
            Skeleton::from_source(&f.source)
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", f.name, f.source));
        }
    }

    #[test]
    fn corpus_has_structural_diversity() {
        let files = generate(&CorpusConfig {
            files: 400,
            seed: 42,
        });
        let has = |needle: &str| files.iter().any(|f| f.source.contains(needle));
        assert!(has("struct s"), "struct files present");
        assert!(has("*p = "), "pointer files present");
        assert!(has("goto again"), "goto files present");
        assert!(has("u["), "array files present");
        assert!(has("for (int "), "loops present");
    }

    #[test]
    fn tail_files_have_many_holes() {
        let files = generate(&CorpusConfig {
            files: 400,
            seed: 42,
        });
        let max_holes = files
            .iter()
            .map(|f| {
                Skeleton::from_source(&f.source)
                    .map(|s| s.num_holes())
                    .unwrap_or(0)
            })
            .max()
            .expect("non-empty corpus");
        assert!(max_holes >= 80, "heavy tail missing: max holes {max_holes}");
    }

    #[test]
    fn most_files_are_small() {
        let files = generate(&CorpusConfig {
            files: 400,
            seed: 42,
        });
        let small = files
            .iter()
            .filter(|f| {
                Skeleton::from_source(&f.source)
                    .map(|s| s.num_holes() <= 30)
                    .unwrap_or(false)
            })
            .count();
        assert!(
            small * 10 >= files.len() * 7,
            "at least 70% of files should be small: {small}/{}",
            files.len()
        );
    }
}
