//! Hand-written seed programs: the SPE paper's own figures, expressed in
//! the mini-C subset.
//!
//! These are the skeleton sources used by unit/integration tests and by
//! the bug-hunting examples; each is a small program whose enumeration
//! reaches one of the seeded defects of `spe-simcc`.

use crate::TestFile;

/// Figure 1: the motivating three-variant example.
pub const FIGURE_1: &str = "int main() {
    int a, b = 1;
    b = b - a;
    if (a)
        a = a - b;
    return 0;
}
";

/// Figure 2 (simplified, without the alias attribute): the ten-year
/// miscompilation. The skeleton enumeration rewires which variable each
/// pointer takes the address of.
pub const FIGURE_2: &str = "int a = 0;
int b = 0;
int main() {
    int *p = &a, *q = &b;
    *p = 1;
    *q = 2;
    return a;
}
";

/// Figure 3: the release-blocking constant-folding crash. The original
/// test (with `e` in the third operand) is healthy; replacing `e` with
/// `d` makes both ternary arms identical.
pub const FIGURE_3: &str = "struct s {
    char c[1];
};
struct s a, b, c;
int d = 0;
int e = 0;
int main(void) {
    d = e ? (d == 0 ? 1 : 2) : (e == 0 ? 1 : 2);
    return 0;
}
";

/// Figure 11(b): backward goto into a branch (irreducible loop).
pub const FIGURE_11B: &str = "int a = 0;
int b = 0;
int main() {
    if (b)
        ;
    else {
        l1: ;
        b = b + 1;
    }
    if (a) goto l1;
    return b;
}
";

/// Figure 11(d): the lifetime wrong-code bug.
pub const FIGURE_11D: &str = "int main() {
    int *p = 0;
    trick:
    if (p)
        return *p;
    int x = 0;
    p = &x;
    goto trick;
    return 0;
}
";

/// Figure 12(b) (simplified): the loop-vectorizer wrong-code pattern.
pub const FIGURE_12B: &str = "int u[16];
int a = 1, b = 2;
int main() {
    u[a + 3 * b] = 7;
    u[b] = 1;
    return u[a + 3 * b] + u[b];
}
";

/// All seed programs with names.
pub fn all() -> Vec<TestFile> {
    vec![
        TestFile {
            name: "seeds/figure1.c".into(),
            source: FIGURE_1.into(),
        },
        TestFile {
            name: "seeds/figure2.c".into(),
            source: FIGURE_2.into(),
        },
        TestFile {
            name: "seeds/figure3.c".into(),
            source: FIGURE_3.into(),
        },
        TestFile {
            name: "seeds/figure11b.c".into(),
            source: FIGURE_11B.into(),
        },
        TestFile {
            name: "seeds/figure11d.c".into(),
            source: FIGURE_11D.into(),
        },
        TestFile {
            name: "seeds/figure12b.c".into(),
            source: FIGURE_12B.into(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seeds_parse() {
        for f in all() {
            spe_minic::parse(&f.source).unwrap_or_else(|e| panic!("{}: {e}", f.name));
        }
    }

    #[test]
    fn seed_names_are_unique() {
        let files = all();
        let mut names: Vec<_> = files.iter().map(|f| &f.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), files.len());
    }
}
