//! Corpus-level statistics: the columns of the paper's Table 2.

use crate::TestFile;
use spe_skeleton::Skeleton;

/// Averages over a set of test files (Table 2's row format).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusStats {
    /// Files successfully analyzed.
    pub files: usize,
    /// Average holes per file.
    pub holes: f64,
    /// Average scopes per file.
    pub scopes: f64,
    /// Average function definitions per file.
    pub funcs: f64,
    /// Average distinct variable types per file.
    pub types: f64,
    /// Average candidate variables per hole.
    pub vars_per_hole: f64,
}

/// Computes Table 2-style averages. Files that fail to parse or analyze
/// are skipped (the paper's pipeline likewise only processes files its
/// frontend accepts).
///
/// # Examples
///
/// ```
/// use spe_corpus::{stats::compute, seeds};
/// let s = compute(&seeds::all());
/// assert!(s.files > 0);
/// assert!(s.holes > 0.0);
/// ```
pub fn compute(files: &[TestFile]) -> CorpusStats {
    let mut n = 0usize;
    let (mut holes, mut scopes, mut funcs, mut types, mut vph) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for f in files {
        let Ok(sk) = Skeleton::from_source(&f.source) else {
            continue;
        };
        let st = sk.stats();
        n += 1;
        holes += st.holes as f64;
        scopes += st.scopes as f64;
        funcs += st.funcs as f64;
        types += st.types as f64;
        vph += st.vars_per_hole;
    }
    let d = n.max(1) as f64;
    CorpusStats {
        files: n,
        holes: holes / d,
        scopes: scopes / d,
        funcs: funcs / d,
        types: types / d,
        vars_per_hole: vph / d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, CorpusConfig};

    #[test]
    fn stats_are_in_torture_suite_ballpark() {
        // Table 2 reports 7.34 holes, 2.77 scopes, 1.85 funcs, 1.38
        // types, 3.46 vars/hole on average; the synthetic corpus should
        // land in the same ballpark (not exactly — it is a different
        // suite).
        let files = generate(&CorpusConfig {
            files: 500,
            seed: 42,
        });
        let s = compute(&files);
        assert_eq!(s.files, 500);
        assert!(
            (3.0..25.0).contains(&s.holes),
            "avg holes {} out of range",
            s.holes
        );
        assert!(
            (2.0..5.0).contains(&s.scopes),
            "avg scopes {} out of range",
            s.scopes
        );
        assert!(
            (1.0..3.0).contains(&s.funcs),
            "avg funcs {} out of range",
            s.funcs
        );
        assert!(
            (1.0..3.0).contains(&s.types),
            "avg types {} out of range",
            s.types
        );
        assert!(
            (2.0..8.0).contains(&s.vars_per_hole),
            "avg vars/hole {} out of range",
            s.vars_per_hole
        );
    }

    #[test]
    fn unparsable_files_are_skipped() {
        let files = vec![
            TestFile {
                name: "bad.c".into(),
                source: "not c at all".into(),
            },
            TestFile {
                name: "good.c".into(),
                source: "int a; int main() { return a; }".into(),
            },
        ];
        let s = compute(&files);
        assert_eq!(s.files, 1);
    }
}
