//! Property tests driving the whole frontend with generated corpora:
//! parse → print → parse fixpoints, analysis stability, and enumeration
//! safety on arbitrary seeds.

use proptest::prelude::*;
use spe_corpus::{generate, CorpusConfig};
use spe_skeleton::{Granularity, Skeleton};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn printer_is_a_fixpoint_on_generated_corpora(seed in 0u64..10_000) {
        let files = generate(&CorpusConfig { files: 6, seed });
        for f in &files {
            let p1 = spe_minic::parse(&f.source).expect("generated code parses");
            let s1 = spe_minic::print_program(&p1);
            let p2 = spe_minic::parse(&s1)
                .unwrap_or_else(|e| panic!("{}: reprint failed: {e}\n{s1}", f.name));
            let s2 = spe_minic::print_program(&p2);
            prop_assert_eq!(s1, s2, "printer not a fixpoint for {}", f.name);
        }
    }

    #[test]
    fn skeleton_statistics_are_stable_under_reprinting(seed in 0u64..10_000) {
        let files = generate(&CorpusConfig { files: 4, seed });
        for f in &files {
            let sk1 = Skeleton::from_source(&f.source).expect("analyzes");
            let reprinted = sk1.source();
            let sk2 = Skeleton::from_source(&reprinted).expect("reanalyzes");
            prop_assert_eq!(sk1.num_holes(), sk2.num_holes());
            let s1 = sk1.stats();
            let s2 = sk2.stats();
            prop_assert_eq!(s1.scopes, s2.scopes);
            prop_assert_eq!(s1.funcs, s2.funcs);
            prop_assert_eq!(s1.types, s2.types);
        }
    }

    #[test]
    fn counts_are_invariant_under_alpha_renaming_of_the_seed(seed in 0u64..10_000) {
        // Enumerating a variant of a skeleton must give the same counts
        // as enumerating the original (the skeleton is the invariant).
        use spe_combinatorics::paper_count;
        let files = generate(&CorpusConfig { files: 2, seed });
        for f in &files {
            let sk = Skeleton::from_source(&f.source).expect("analyzes");
            let units = sk.units(Granularity::Intra);
            // Only exact flat encodings guarantee valid realizations for
            // every paper solution (DESIGN.md §2: the flat view is an
            // approximation under declaration-order effects).
            if units
                .iter()
                .flat_map(|u| u.groups.iter())
                .any(|g| !g.flat_exact)
            {
                continue;
            }
            let Some(group) = units.iter().flat_map(|u| u.groups.iter()).next() else {
                continue;
            };
            let (sols, _) = spe_combinatorics::paper_solutions(&group.flat, 50);
            let Some(sol) = sols.last() else { continue };
            let mut names: Vec<_> = sk.holes().iter().map(|h| sk.var_name(h.var)).collect();
            for (h, n) in sk.rename_for_solution(group, sol) {
                names[h as usize] = n;
            }
            let variant_src = sk.render(&names);
            let sk2 = Skeleton::from_source(&variant_src).expect("variant analyzes");
            let units2 = sk2.units(Granularity::Intra);
            let count1: Vec<_> = units
                .iter()
                .flat_map(|u| u.groups.iter())
                .map(|g| paper_count(&g.flat))
                .collect();
            let count2: Vec<_> = units2
                .iter()
                .flat_map(|u| u.groups.iter())
                .map(|g| paper_count(&g.flat))
                .collect();
            prop_assert_eq!(count1, count2, "{}", f.name);
        }
    }
}
