//! A dependency-free binary codec for journal record payloads.
//!
//! Records are flat byte strings: fixed-width little-endian integers,
//! length-prefixed UTF-8 strings and byte blobs, and the compositions a
//! campaign checkpoint needs (options, sequences). Encoding is infallible;
//! decoding returns [`DecodeError`] on truncation or malformed data, which
//! the checkpoint layer treats the same way as a failed frame checksum —
//! the record is rejected, never half-applied.

use std::fmt;

/// Builds a record payload.
///
/// # Examples
///
/// ```
/// use spe_persist::{Decoder, Encoder};
///
/// let mut enc = Encoder::new();
/// enc.u32(7).str("shard").bool(true);
/// let bytes = enc.finish();
///
/// let mut dec = Decoder::new(&bytes);
/// assert_eq!(dec.u32().unwrap(), 7);
/// assert_eq!(dec.str().unwrap(), "shard");
/// assert!(dec.bool().unwrap());
/// assert!(dec.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) -> &mut Encoder {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Encoder {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Encoder {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `usize` as a `u64` (journals are portable across
    /// pointer widths).
    pub fn usize(&mut self, v: usize) -> &mut Encoder {
        self.u64(v as u64)
    }

    /// Appends a boolean as one byte (`0` / `1`).
    pub fn bool(&mut self, v: bool) -> &mut Encoder {
        self.u8(u8::from(v))
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Encoder {
        self.bytes(v.as_bytes())
    }

    /// Appends a length-prefixed byte blob.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Encoder {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends `Some(s)` as `1` + string, `None` as `0`.
    pub fn opt_str(&mut self, v: Option<&str>) -> &mut Encoder {
        match v {
            Some(s) => self.bool(true).str(s),
            None => self.bool(false),
        }
    }

    /// The encoded payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Why a record payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the requested field.
    Eof,
    /// A field held an invalid value (e.g. non-UTF-8 in a string, a
    /// boolean byte that is neither 0 nor 1, an unknown enum tag).
    Invalid(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Eof => write!(f, "record payload truncated"),
            DecodeError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Reads a record payload written by [`Encoder`].
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Starts decoding at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Eof)?;
        if end > self.buf.len() {
            return Err(DecodeError::Eof);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` written by [`Encoder::usize`] back into a `usize`.
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.u64()?).map_err(|_| DecodeError::Invalid("usize overflow"))
    }

    /// Reads a boolean byte.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Invalid("boolean byte")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Invalid("utf-8 string"))
    }

    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.usize()?;
        self.take(len)
    }

    /// Reads an optional string written by [`Encoder::opt_str`].
    pub fn opt_str(&mut self) -> Result<Option<String>, DecodeError> {
        Ok(if self.bool()? {
            Some(self.str()?)
        } else {
            None
        })
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Fails unless the payload was consumed exactly — guards against
    /// truncated or over-long records masquerading as valid.
    pub fn expect_empty(&self) -> Result<(), DecodeError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::Invalid("trailing bytes in record"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_kinds() {
        let mut enc = Encoder::new();
        enc.u8(7)
            .u32(0xdead_beef)
            .u64(u64::MAX)
            .usize(42)
            .bool(false)
            .str("héllo")
            .bytes(&[1, 2, 3])
            .opt_str(Some("x"))
            .opt_str(None);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u32().unwrap(), 0xdead_beef);
        assert_eq!(dec.u64().unwrap(), u64::MAX);
        assert_eq!(dec.usize().unwrap(), 42);
        assert!(!dec.bool().unwrap());
        assert_eq!(dec.str().unwrap(), "héllo");
        assert_eq!(dec.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(dec.opt_str().unwrap().as_deref(), Some("x"));
        assert_eq!(dec.opt_str().unwrap(), None);
        dec.expect_empty().unwrap();
    }

    #[test]
    fn truncation_is_eof_not_panic() {
        let mut enc = Encoder::new();
        enc.str("hello");
        let bytes = enc.finish();
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            assert!(dec.str().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn invalid_bool_and_utf8_are_rejected() {
        let mut dec = Decoder::new(&[9]);
        assert_eq!(dec.bool(), Err(DecodeError::Invalid("boolean byte")));
        let mut enc = Encoder::new();
        enc.bytes(&[0xff, 0xfe]);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.str(), Err(DecodeError::Invalid("utf-8 string")));
    }

    #[test]
    fn expect_empty_rejects_trailing_bytes() {
        let mut enc = Encoder::new();
        enc.u8(1).u8(2);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        dec.u8().unwrap();
        assert!(dec.expect_empty().is_err());
    }
}
