//! Append-only, versioned, crash-safe on-disk journals.
//!
//! Long SPE campaigns (the paper's Table 2 reports multi-day enumeration
//! budgets) must survive crashes and preemption. This crate provides the
//! persistence substrate the harness builds checkpointable campaigns on
//! (`spe_harness::checkpoint`): a [`journal`] of fsync'd, checksummed
//! record frames plus a dependency-free binary [`codec`] for the record
//! payloads. `DESIGN.md` §9 documents the format and the argument for why
//! resuming from a journal reproduces a byte-identical final report.
//!
//! Like the rest of the workspace, the crate has **no external
//! dependencies** (mirroring the `vendor/` shim policy): framing,
//! checksumming and serialization are implemented here directly. The
//! only in-workspace dependency is `spe-telemetry`, through whose
//! process-global sink each append reports its write/fsync latency
//! and the journal's growth (a no-op unless a sink is installed).
//!
//! # Journal format
//!
//! A journal file is a magic string, a version byte, one *header* frame,
//! and any number of *record* frames. Every frame is
//! `[u32 LE payload length][u64 LE FNV-1a of payload][payload bytes]`,
//! and every append is flushed and fsync'd before it is acknowledged. A
//! torn tail frame — the visible form of a crash mid-append — fails its
//! length or checksum test and is dropped on read, so the journal's
//! valid prefix is always a consistent campaign state.
//!
//! Two readers share the validation logic: [`JournalReader`]
//! materializes the whole valid prefix (fine for tests and small
//! journals), while [`JournalIter`] streams one frame at a time — replay
//! memory bounded by the largest frame, not the journal — and can carry
//! the writer lock from scan into append ([`JournalIter::into_appender`])
//! or into a compaction rewrite committed by [`journal::promote`]'s
//! atomic rename (`DESIGN.md` §11).
//!
//! The example below is the runnable form of the `DESIGN.md` §9 format
//! walkthrough (CI runs it as a doctest):
//!
//! ```
//! use spe_persist::journal::{Journal, JournalReader};
//!
//! let dir = std::env::temp_dir().join(format!("spe-journal-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let path = dir.join("campaign.journal");
//!
//! // Create: magic + version + one header frame, fsync'd.
//! let mut j = Journal::create(&path, b"manifest: files, config, shards")?;
//! j.append(b"progress: job 0, emitted 1024, 2 findings")?;
//! j.append(b"job-done: job 0")?;
//! drop(j);
//!
//! // Simulate a crash mid-append: a torn half-frame at the tail.
//! use std::io::Write;
//! let mut f = std::fs::OpenOptions::new().append(true).open(&path)?;
//! f.write_all(&[0x2a, 0x00, 0x00, 0x00, 0xde, 0xad])?; // length says 42, bytes missing
//! drop(f);
//!
//! // Read: the valid prefix survives, the torn tail is reported + dropped.
//! let contents = JournalReader::read(&path)?;
//! assert_eq!(contents.header, b"manifest: files, config, shards");
//! assert_eq!(contents.records.len(), 2);
//! assert!(contents.truncated_tail);
//!
//! // Re-opening for append truncates the torn tail first, so new records
//! // land on a frame boundary.
//! let mut j = Journal::open_append(&path)?;
//! j.append(b"progress: job 1, emitted 512")?;
//! let contents = JournalReader::read(&path)?;
//! assert_eq!(contents.records.len(), 3);
//! assert!(!contents.truncated_tail);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod journal;

pub use codec::{DecodeError, Decoder, Encoder};
pub use journal::{
    CorruptionReason, Journal, JournalContents, JournalError, JournalIter, JournalReader,
    JournalSet, TailCorruption,
};
