//! The append-only, checksummed, fsync'd record journal.
//!
//! File layout (`DESIGN.md` §9):
//!
//! ```text
//! "SPEJRNL\x01"                 8-byte magic, last byte = format version
//! frame(header payload)          caller-defined manifest bytes
//! frame(record payload) ...      zero or more records
//!
//! frame(p) = [u32 LE len(p)] [u64 LE fnv1a(p)] [p]
//! ```
//!
//! Crash safety comes from three properties:
//!
//! 1. **Append-only**: committed bytes are never rewritten, so a crash
//!    can only damage the tail;
//! 2. **Framing**: a torn tail (partial frame header, short payload, or
//!    checksum mismatch) is detected on read and dropped — the valid
//!    prefix is returned with [`JournalContents::truncated_tail`] set;
//! 3. **Durability**: [`Journal::append`] flushes and fsyncs before
//!    returning, so an acknowledged record survives power loss.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic prefix of every journal file; the final byte is the format
/// version.
pub const MAGIC: [u8; 8] = *b"SPEJRNL\x01";

/// Frame header size: u32 length + u64 checksum.
const FRAME_HEADER: usize = 4 + 8;

/// Upper bound on a single frame payload (1 GiB) — rejects absurd
/// lengths read from corrupt frame headers before any allocation.
const MAX_PAYLOAD: u32 = 1 << 30;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Errors of journal creation, appending and reading.
#[derive(Debug)]
pub enum JournalError {
    /// An I/O error from the filesystem.
    Io(io::Error),
    /// The file does not start with the journal magic (wrong file, or a
    /// journal of an incompatible format version).
    BadMagic,
    /// The file ends before a complete header frame — created by a crash
    /// during [`Journal::create`]; there is no state to resume from.
    NoHeader,
    /// Another process (or another `Journal` in this process) holds the
    /// journal open for appending. Writers take an exclusive OS-level
    /// file lock: two concurrent resumes of one campaign would otherwise
    /// interleave individually-valid frames and silently double-count
    /// work on replay.
    Busy,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::BadMagic => write!(f, "not a journal (bad magic or version)"),
            JournalError::NoHeader => write!(f, "journal has no complete header frame"),
            JournalError::Busy => write!(f, "journal is locked by another writer"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

/// An open journal, positioned for appending.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Creates a new journal at `path` (truncating any existing file)
    /// with the given header payload, fsync'd before returning.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the file cannot be created or
    /// written.
    pub fn create(path: impl AsRef<Path>, header: &[u8]) -> Result<Journal, JournalError> {
        let path = path.as_ref();
        // Open *without* truncating, take the writer lock, and only then
        // clear the file: truncating first would destroy a live
        // journal's committed frames even though this call then fails
        // `Busy` — the active writer would keep appending into a
        // zero-filled hole.
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        lock_exclusive(&file)?;
        file.set_len(0)?;
        file.write_all(&MAGIC)?;
        write_frame(&mut file, header)?;
        file.sync_all()?;
        // Durability of the file itself, not just its contents: fsync
        // the parent directory so the new entry survives power loss
        // (without this, acknowledged appends can land in a file the
        // directory no longer names after a crash).
        #[cfg(unix)]
        if let Some(parent) = path.parent() {
            let dir = if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            };
            File::open(dir)?.sync_all()?;
        }
        Ok(Journal { file })
    }

    /// Opens an existing journal for appending. The file is first scanned
    /// and **truncated to its valid prefix**, so a torn tail frame from
    /// an earlier crash is physically removed and the next append lands
    /// on a frame boundary.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::BadMagic`] / [`JournalError::NoHeader`]
    /// when the file is not a resumable journal, or
    /// [`JournalError::Io`] on filesystem failure.
    pub fn open_append(path: impl AsRef<Path>) -> Result<Journal, JournalError> {
        let path = path.as_ref();
        let contents = JournalReader::read(path)?;
        Journal::open_append_with(path, &contents)
    }

    /// [`Journal::open_append`] for a journal the caller has **already
    /// read**: trusts `contents` for the valid-prefix length instead of
    /// re-scanning and re-checksumming the file — resume paths, which
    /// must read the journal to replay it anyway, open for append in one
    /// scan instead of two.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the file cannot be opened,
    /// truncated, or positioned.
    pub fn open_append_with(
        path: impl AsRef<Path>,
        contents: &JournalContents,
    ) -> Result<Journal, JournalError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        lock_exclusive(&file)?;
        if contents.truncated_tail {
            file.set_len(contents.valid_len)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(contents.valid_len))?;
        Ok(Journal { file })
    }

    /// Appends one record frame, flushed and fsync'd before returning —
    /// an acknowledged append is durable.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the write or sync fails; the
    /// journal's committed prefix is unaffected (a partial frame at the
    /// tail is dropped on the next read).
    pub fn append(&mut self, payload: &[u8]) -> Result<(), JournalError> {
        write_frame(&mut self.file, payload)?;
        self.file.sync_data()?;
        Ok(())
    }
}

/// Takes the writer's exclusive advisory lock on the journal file; held
/// until the [`Journal`] is dropped. A second writer — concurrent
/// resumes of one campaign from two processes, say — fails fast with
/// [`JournalError::Busy`] instead of interleaving frames that would
/// silently double-count work on replay.
fn lock_exclusive(file: &File) -> Result<(), JournalError> {
    file.try_lock().map_err(|e| match e {
        std::fs::TryLockError::WouldBlock => JournalError::Busy,
        std::fs::TryLockError::Error(e) => JournalError::Io(e),
    })
}

fn write_frame(file: &mut File, payload: &[u8]) -> io::Result<()> {
    assert!(
        payload.len() as u64 <= MAX_PAYLOAD as u64,
        "journal frame payload too large"
    );
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    file.write_all(&frame)
}

/// The decoded contents of a journal file: its valid prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalContents {
    /// The header frame's payload.
    pub header: Vec<u8>,
    /// Every complete, checksum-valid record payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Whether bytes after the last valid frame were dropped (a torn
    /// frame from a crash mid-append, or trailing corruption).
    pub truncated_tail: bool,
    /// Byte length of the valid prefix (where appends resume).
    pub valid_len: u64,
}

/// Reads journal files.
#[derive(Debug)]
pub struct JournalReader;

impl JournalReader {
    /// Reads the valid prefix of the journal at `path`.
    ///
    /// Corruption **after** the header frame is not an error: reading
    /// stops at the first frame whose length or checksum fails, returns
    /// everything before it, and sets
    /// [`JournalContents::truncated_tail`] — the caller decides whether
    /// lost tail records matter (a resumed campaign simply recomputes
    /// that work).
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::BadMagic`] when the magic or format
    /// version mismatches, [`JournalError::NoHeader`] when no complete
    /// header frame exists, or [`JournalError::Io`] on read failure.
    pub fn read(path: impl AsRef<Path>) -> Result<JournalContents, JournalError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
            return Err(JournalError::BadMagic);
        }
        let mut pos = MAGIC.len();
        let header = match next_frame(&bytes, &mut pos) {
            Some(h) => h.to_vec(),
            None => return Err(JournalError::NoHeader),
        };
        let mut records = Vec::new();
        let mut valid_len = pos as u64;
        while let Some(payload) = next_frame(&bytes, &mut pos) {
            records.push(payload.to_vec());
            valid_len = pos as u64;
        }
        Ok(JournalContents {
            header,
            records,
            truncated_tail: valid_len < bytes.len() as u64,
            valid_len,
        })
    }
}

/// Parses the frame at `*pos`, advancing past it; `None` when the bytes
/// do not contain a complete, checksum-valid frame there.
fn next_frame<'a>(bytes: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let start = *pos;
    if bytes.len() - start < FRAME_HEADER {
        return None;
    }
    let len = u32::from_le_bytes(bytes[start..start + 4].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return None;
    }
    let checksum = u64::from_le_bytes(bytes[start + 4..start + 12].try_into().expect("8 bytes"));
    let data_start = start + FRAME_HEADER;
    let data_end = data_start.checked_add(len as usize)?;
    if data_end > bytes.len() {
        return None;
    }
    let payload = &bytes[data_start..data_end];
    if fnv1a(payload) != checksum {
        return None;
    }
    *pos = data_end;
    Some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spe-persist-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn roundtrip_header_and_records() {
        let path = temp_path("roundtrip.journal");
        let mut j = Journal::create(&path, b"header").unwrap();
        j.append(b"one").unwrap();
        j.append(b"").unwrap();
        j.append(&[0xff; 1000]).unwrap();
        drop(j);
        let c = JournalReader::read(&path).unwrap();
        assert_eq!(c.header, b"header");
        assert_eq!(c.records.len(), 3);
        assert_eq!(c.records[0], b"one");
        assert_eq!(c.records[1], b"");
        assert_eq!(c.records[2], vec![0xff; 1000]);
        assert!(!c.truncated_tail);
    }

    #[test]
    fn torn_tail_is_dropped_at_every_cut_point() {
        let path = temp_path("torn.journal");
        let mut j = Journal::create(&path, b"h").unwrap();
        j.append(b"first record").unwrap();
        j.append(b"second record").unwrap();
        drop(j);
        let full = std::fs::read(&path).unwrap();
        // Find where the second record's frame begins.
        let c = JournalReader::read(&path).unwrap();
        let second_start = full.len() - (FRAME_HEADER + b"second record".len());
        assert_eq!(c.valid_len, full.len() as u64);
        for cut in second_start + 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let c = JournalReader::read(&path).unwrap();
            assert_eq!(c.records, vec![b"first record".to_vec()], "cut {cut}");
            assert!(c.truncated_tail, "cut {cut}");
            assert_eq!(c.valid_len as usize, second_start, "cut {cut}");
        }
    }

    #[test]
    fn corrupt_checksum_stops_the_read() {
        let path = temp_path("corrupt.journal");
        let mut j = Journal::create(&path, b"h").unwrap();
        j.append(b"good").unwrap();
        j.append(b"flipped").unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // flip a payload bit of the final record
        std::fs::write(&path, &bytes).unwrap();
        let c = JournalReader::read(&path).unwrap();
        assert_eq!(c.records, vec![b"good".to_vec()]);
        assert!(c.truncated_tail);
    }

    #[test]
    fn open_append_truncates_the_torn_tail() {
        let path = temp_path("reopen.journal");
        let mut j = Journal::create(&path, b"h").unwrap();
        j.append(b"kept").unwrap();
        drop(j);
        // Torn frame: plausible header, missing payload.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[10, 0, 0, 0, 1, 2, 3]).unwrap();
        drop(f);
        let mut j = Journal::open_append(&path).unwrap();
        j.append(b"after crash").unwrap();
        drop(j);
        let c = JournalReader::read(&path).unwrap();
        assert_eq!(c.records, vec![b"kept".to_vec(), b"after crash".to_vec()]);
        assert!(!c.truncated_tail);
    }

    #[test]
    fn a_second_writer_is_rejected_while_the_first_holds_the_journal() {
        let path = temp_path("locked.journal");
        let mut j = Journal::create(&path, b"h").unwrap();
        j.append(b"rec").unwrap();
        assert!(
            matches!(Journal::open_append(&path), Err(JournalError::Busy)),
            "concurrent writers must fail fast"
        );
        // A racing `create` must also fail Busy — and must NOT have
        // damaged the live journal (truncation only happens under the
        // lock).
        assert!(matches!(
            Journal::create(&path, b"other"),
            Err(JournalError::Busy)
        ));
        j.append(b"still fine").unwrap();
        drop(j); // releases the lock
        let c = JournalReader::read(&path).unwrap();
        assert_eq!(c.header, b"h", "live journal survived the racing create");
        assert_eq!(c.records, vec![b"rec".to_vec(), b"still fine".to_vec()]);
        let mut j2 = Journal::open_append(&path).unwrap();
        j2.append(b"after").unwrap();
        drop(j2);
        assert_eq!(JournalReader::read(&path).unwrap().records.len(), 3);
    }

    #[test]
    fn bad_magic_and_missing_header_are_errors() {
        let path = temp_path("magic.journal");
        std::fs::write(&path, b"not a journal at all").unwrap();
        assert!(matches!(
            JournalReader::read(&path),
            Err(JournalError::BadMagic)
        ));
        std::fs::write(&path, MAGIC).unwrap();
        assert!(matches!(
            JournalReader::read(&path),
            Err(JournalError::NoHeader)
        ));
        assert!(Journal::open_append(&path).is_err());
    }

    #[test]
    fn version_bump_invalidates_old_readers() {
        let path = temp_path("version.journal");
        Journal::create(&path, b"h").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[7] = 0x02; // future format version
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            JournalReader::read(&path),
            Err(JournalError::BadMagic)
        ));
    }
}
