//! The append-only, checksummed, fsync'd record journal.
//!
//! File layout (`DESIGN.md` §9):
//!
//! ```text
//! "SPEJRNL\x01"                 8-byte magic, last byte = format version
//! frame(header payload)          caller-defined manifest bytes
//! frame(record payload) ...      zero or more records
//!
//! frame(p) = [u32 LE len(p)] [u64 LE fnv1a(p)] [p]
//! ```
//!
//! Crash safety comes from three properties:
//!
//! 1. **Append-only**: committed bytes are never rewritten, so a crash
//!    can only damage the tail;
//! 2. **Framing**: a torn tail (partial frame header, short payload, or
//!    checksum mismatch) is detected on read and dropped — the valid
//!    prefix is returned with [`JournalContents::truncated_tail`] set,
//!    and the drop point is triaged as a [`TailCorruption`] carrying
//!    the frame's byte offset and the reason its validation failed;
//! 3. **Durability**: [`Journal::append`] flushes and fsyncs before
//!    returning, so an acknowledged record survives power loss.
//!
//! Two readers exist. [`JournalReader::read`] materializes the whole
//! valid prefix — convenient for small journals and tests.
//! [`JournalIter`] **streams** one frame at a time, so replaying a
//! multi-GB campaign journal needs memory proportional to the largest
//! frame (plus whatever live state the caller folds records into), not
//! to the journal; `spe_harness::checkpoint` resumes through it, and
//! journal compaction (`DESIGN.md` §11) rewrites through it combined
//! with [`promote`]'s write-new → fsync → atomic-rename sequence.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of every journal file; the final byte is the format
/// version.
pub const MAGIC: [u8; 8] = *b"SPEJRNL\x01";

/// Frame header size: u32 length + u64 checksum.
const FRAME_HEADER: usize = 4 + 8;

/// Upper bound on a single frame payload (1 GiB) — rejects absurd
/// lengths read from corrupt frame headers before any allocation.
const MAX_PAYLOAD: u32 = 1 << 30;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Errors of journal creation, appending and reading. Every variant
/// names the journal file it concerns, and I/O failures additionally
/// carry the operation that failed — a campaign that degrades or aborts
/// over a journal fault must be diagnosable from the error text alone.
#[derive(Debug)]
pub enum JournalError {
    /// An I/O error from the filesystem, tagged with the operation
    /// (`"create"`, `"append"`, `"fsync"`, `"read"`, ...) and path.
    Io {
        /// What the journal was doing when the filesystem failed.
        op: &'static str,
        /// The journal (or directory) the operation targeted.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The file does not start with the journal magic (wrong file, or a
    /// journal of an incompatible format version).
    BadMagic {
        /// The offending file.
        path: PathBuf,
    },
    /// The file ends before a complete header frame — created by a crash
    /// during [`Journal::create`]; there is no state to resume from.
    NoHeader {
        /// The offending file.
        path: PathBuf,
    },
    /// Another process (or another `Journal` in this process) holds the
    /// journal open for appending. Writers take an exclusive OS-level
    /// file lock: two concurrent resumes of one campaign would otherwise
    /// interleave individually-valid frames and silently double-count
    /// work on replay.
    Busy {
        /// The locked journal.
        path: PathBuf,
    },
}

impl JournalError {
    fn io(op: &'static str, path: &Path, source: io::Error) -> JournalError {
        JournalError::Io {
            op,
            path: path.to_path_buf(),
            source,
        }
    }
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { op, path, source } => {
                write!(f, "journal {op} failed on {}: {source}", path.display())
            }
            JournalError::BadMagic { path } => write!(
                f,
                "{} is not a journal (bad magic or version)",
                path.display()
            ),
            JournalError::NoHeader { path } => {
                write!(f, "journal {} has no complete header frame", path.display())
            }
            JournalError::Busy { path } => {
                write!(f, "journal {} is locked by another writer", path.display())
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Test-only fault injection for journal appends.
///
/// The fault-injection suites (`tests/orchestrator_faults.rs`, this
/// crate's own corruption tests) must provoke `ENOSPC`/`EIO`-style
/// append failures deterministically, which no real filesystem does on
/// cue. An injection arms the **next `count` appends whose journal path
/// contains `path_contains`** to fail with the given OS error before
/// touching the file — the journal's committed prefix is untouched,
/// exactly like a real failed write. Scoping by path substring keeps
/// concurrently running tests (one process, many journals) from
/// consuming each other's faults.
#[doc(hidden)]
pub mod faults {
    use std::io;
    use std::path::Path;
    use std::sync::Mutex;

    struct Injection {
        path_contains: String,
        remaining: u32,
        errno: i32,
    }

    static INJECTED: Mutex<Vec<Injection>> = Mutex::new(Vec::new());

    /// Arms `count` append failures (OS error `errno`, e.g. 5 = EIO,
    /// 28 = ENOSPC) for journals whose path contains `path_contains`.
    pub fn inject_append_failures(path_contains: &str, count: u32, errno: i32) {
        INJECTED.lock().expect("poisoned").push(Injection {
            path_contains: path_contains.to_string(),
            remaining: count,
            errno,
        });
    }

    /// Disarms every injection.
    pub fn clear() {
        INJECTED.lock().expect("poisoned").clear();
    }

    pub(crate) fn take(path: &Path) -> Option<io::Error> {
        let mut injected = INJECTED.lock().expect("poisoned");
        let path = path.to_string_lossy();
        for inj in injected.iter_mut() {
            if inj.remaining > 0 && path.contains(&inj.path_contains) {
                inj.remaining -= 1;
                return Some(io::Error::from_raw_os_error(inj.errno));
            }
        }
        None
    }
}

/// An open journal, positioned for appending.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    /// File length after the last acknowledged append (the gauge the
    /// telemetry sink reports as journal growth).
    len: u64,
}

impl Journal {
    /// Creates a new journal at `path` (truncating any existing file)
    /// with the given header payload, fsync'd before returning.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the file cannot be created or
    /// written, [`JournalError::Busy`] when another writer holds it.
    pub fn create(path: impl AsRef<Path>, header: &[u8]) -> Result<Journal, JournalError> {
        let path = path.as_ref();
        // Open *without* truncating, take the writer lock, and only then
        // clear the file: truncating first would destroy a live
        // journal's committed frames even though this call then fails
        // `Busy` — the active writer would keep appending into a
        // zero-filled hole.
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)
            .map_err(|e| JournalError::io("create", path, e))?;
        lock_exclusive(&file, path)?;
        file.set_len(0)
            .map_err(|e| JournalError::io("truncate", path, e))?;
        file.write_all(&MAGIC)
            .map_err(|e| JournalError::io("write magic", path, e))?;
        write_frame(&mut file, header).map_err(|e| JournalError::io("write header", path, e))?;
        file.sync_all()
            .map_err(|e| JournalError::io("fsync", path, e))?;
        // Durability of the file itself, not just its contents: fsync
        // the parent directory so the new entry survives power loss
        // (without this, acknowledged appends can land in a file the
        // directory no longer names after a crash).
        sync_parent_dir(path)?;
        let len = (MAGIC.len() + FRAME_HEADER + header.len()) as u64;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            len,
        })
    }

    /// Opens an existing journal for appending. The file is first scanned
    /// and **truncated to its valid prefix**, so a torn tail frame from
    /// an earlier crash is physically removed and the next append lands
    /// on a frame boundary.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::BadMagic`] / [`JournalError::NoHeader`]
    /// when the file is not a resumable journal, [`JournalError::Busy`]
    /// when another writer holds it, or [`JournalError::Io`] on
    /// filesystem failure.
    pub fn open_append(path: impl AsRef<Path>) -> Result<Journal, JournalError> {
        let mut iter = JournalIter::open_locked(path.as_ref())?;
        for record in &mut iter {
            record?; // scan to the end of the valid prefix
        }
        iter.into_appender()
    }

    /// [`Journal::open_append`] for a journal the caller has **already
    /// read**: trusts `contents` for the valid-prefix length instead of
    /// re-scanning and re-checksumming the file.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the file cannot be opened,
    /// truncated, or positioned, [`JournalError::Busy`] when another
    /// writer holds it.
    pub fn open_append_with(
        path: impl AsRef<Path>,
        contents: &JournalContents,
    ) -> Result<Journal, JournalError> {
        let path = path.as_ref();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| JournalError::io("open", path, e))?;
        lock_exclusive(&file, path)?;
        if contents.truncated_tail {
            file.set_len(contents.valid_len)
                .map_err(|e| JournalError::io("truncate torn tail", path, e))?;
            file.sync_all()
                .map_err(|e| JournalError::io("fsync", path, e))?;
        }
        file.seek(SeekFrom::Start(contents.valid_len))
            .map_err(|e| JournalError::io("seek", path, e))?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            len: contents.valid_len,
        })
    }

    /// Appends one record frame, flushed and fsync'd before returning —
    /// an acknowledged append is durable.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the write or sync fails; the
    /// journal's committed prefix is unaffected (a partial frame at the
    /// tail is dropped on the next read).
    pub fn append(&mut self, payload: &[u8]) -> Result<(), JournalError> {
        if let Some(injected) = faults::take(&self.path) {
            return Err(JournalError::io("append", &self.path, injected));
        }
        let telemetry = spe_telemetry::global();
        let write_timer = spe_telemetry::Timer::start(&*telemetry);
        write_frame(&mut self.file, payload)
            .map_err(|e| JournalError::io("append", &self.path, e))?;
        let write_ns = write_timer.stop_nanos();
        let sync_timer = spe_telemetry::Timer::start(&*telemetry);
        self.file
            .sync_data()
            .map_err(|e| JournalError::io("fsync", &self.path, e))?;
        self.len += (FRAME_HEADER + payload.len()) as u64;
        if telemetry.enabled() {
            use spe_telemetry::names;
            telemetry.histogram(names::JOURNAL_APPEND_NS, write_ns);
            telemetry.histogram(names::JOURNAL_FSYNC_NS, sync_timer.stop_nanos());
            telemetry.counter(names::JOURNAL_APPENDS, 1);
            telemetry.counter(names::JOURNAL_APPENDED_BYTES, (FRAME_HEADER + payload.len()) as u64);
            telemetry.gauge(names::JOURNAL_LEN_BYTES, i64::try_from(self.len).unwrap_or(i64::MAX));
        }
        Ok(())
    }

    /// The journal's file length in bytes after the last acknowledged
    /// append (committed prefix only — a torn tail from a failed
    /// append is not counted).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Atomically replaces the journal at `dst` with the one at `tmp`:
/// fsync `tmp`'s contents, `rename(tmp, dst)` (atomic on POSIX — at
/// every instant `dst` names either the complete old journal or the
/// complete new one, never a mixture), then fsync the parent directory
/// so the rename itself survives power loss.
///
/// This is the commit point of journal compaction (`DESIGN.md` §11): a
/// crash before the rename leaves the original journal untouched (plus
/// a stray `tmp`, overwritten by the next compaction); a crash after it
/// leaves the compacted journal. Both are valid, resumable states.
///
/// # Errors
///
/// Returns [`JournalError::Io`] naming the failing operation and path.
pub fn promote(tmp: impl AsRef<Path>, dst: impl AsRef<Path>) -> Result<(), JournalError> {
    let (tmp, dst) = (tmp.as_ref(), dst.as_ref());
    File::open(tmp)
        .and_then(|f| f.sync_all())
        .map_err(|e| JournalError::io("fsync before promote", tmp, e))?;
    std::fs::rename(tmp, dst).map_err(|e| JournalError::io("promote rename", dst, e))?;
    sync_parent_dir(dst)
}

/// Fsyncs `path`'s parent directory (unix only) so directory-entry
/// changes — creation, rename — survive power loss.
fn sync_parent_dir(path: &Path) -> Result<(), JournalError> {
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        File::open(dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| JournalError::io("fsync parent dir", dir, e))?;
    }
    Ok(())
}

/// Takes the writer's exclusive advisory lock on the journal file; held
/// until the [`Journal`] is dropped. A second writer — concurrent
/// resumes of one campaign from two processes, say — fails fast with
/// [`JournalError::Busy`] instead of interleaving frames that would
/// silently double-count work on replay.
fn lock_exclusive(file: &File, path: &Path) -> Result<(), JournalError> {
    file.try_lock().map_err(|e| match e {
        std::fs::TryLockError::WouldBlock => JournalError::Busy {
            path: path.to_path_buf(),
        },
        std::fs::TryLockError::Error(e) => JournalError::io("lock", path, e),
    })
}

fn write_frame(file: &mut File, payload: &[u8]) -> io::Result<()> {
    assert!(
        payload.len() as u64 <= MAX_PAYLOAD as u64,
        "journal frame payload too large"
    );
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    file.write_all(&frame)
}

/// Why the first invalid frame of a journal tail failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionReason {
    /// Fewer than 12 bytes remained — a frame header torn mid-write.
    TruncatedHeader,
    /// The length field exceeds the 1 GiB frame cap — a corrupted (or
    /// bit-flipped) header read as an absurd length.
    OversizedLength(u32),
    /// The header promised more payload bytes than the file holds — a
    /// payload torn mid-write.
    TruncatedPayload,
    /// The payload's FNV-1a hash does not match the frame header — a
    /// bit flip (in payload or header) inside a fully-written frame.
    ChecksumMismatch,
}

impl fmt::Display for CorruptionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptionReason::TruncatedHeader => write!(f, "torn frame header"),
            CorruptionReason::OversizedLength(len) => {
                write!(f, "frame length {len} exceeds the payload cap")
            }
            CorruptionReason::TruncatedPayload => write!(f, "torn frame payload"),
            CorruptionReason::ChecksumMismatch => write!(f, "frame checksum mismatch"),
        }
    }
}

/// Triage of the point where a journal stopped validating: the byte
/// offset of the first invalid frame and the reason it failed. A torn
/// tail from a crash shows up as `TruncatedHeader`/`TruncatedPayload`
/// at the end of the file; a mid-journal bit flip shows up as
/// `ChecksumMismatch` (or `OversizedLength`) with everything after the
/// flipped frame dropped — either way the valid prefix is a consistent
/// state, and the offset tells an operator *where* the damage starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailCorruption {
    /// Byte offset of the first invalid frame (= the valid prefix
    /// length).
    pub offset: u64,
    /// Why that frame failed validation.
    pub reason: CorruptionReason,
}

impl fmt::Display for TailCorruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte offset {}", self.reason, self.offset)
    }
}

/// A streaming journal reader: yields one record frame at a time, so
/// replay memory is bounded by the largest single frame (plus the live
/// state the caller accumulates), never by journal size.
///
/// Iteration ends at the first invalid frame; [`JournalIter::corruption`]
/// then triages it (offset + reason), and
/// [`JournalIter::truncated_tail`] reports whether any bytes were
/// dropped. [`JournalIter::open_locked`] additionally takes the writer's
/// exclusive lock up front, and [`JournalIter::into_appender`] converts
/// the exhausted iterator into an appending [`Journal`] positioned at
/// the valid prefix — the resume paths in `spe_harness::checkpoint`
/// lock, replay, truncate, and append in **one streaming pass**.
///
/// # Examples
///
/// ```
/// use spe_persist::journal::{Journal, JournalIter};
///
/// let dir = std::env::temp_dir().join(format!("spe-journal-iter-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("stream.journal");
/// let mut j = Journal::create(&path, b"manifest")?;
/// j.append(b"one")?;
/// j.append(b"two")?;
/// drop(j);
///
/// let mut iter = JournalIter::open(&path)?;
/// assert_eq!(iter.header(), b"manifest");
/// let records: Vec<Vec<u8>> = (&mut iter).collect::<Result<_, _>>()?;
/// assert_eq!(records, vec![b"one".to_vec(), b"two".to_vec()]);
/// assert!(!iter.truncated_tail());
/// assert!(iter.corruption().is_none());
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct JournalIter {
    reader: BufReader<File>,
    path: PathBuf,
    header: Vec<u8>,
    /// Offset just past the last valid frame read so far.
    valid_len: u64,
    file_len: u64,
    corruption: Option<TailCorruption>,
    fused: bool,
    locked: bool,
}

impl JournalIter {
    /// Opens the journal read-only (no writer lock) and validates the
    /// magic and header frame.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::BadMagic`] / [`JournalError::NoHeader`]
    /// when the file is not a journal, [`JournalError::Io`] on read
    /// failure.
    pub fn open(path: impl AsRef<Path>) -> Result<JournalIter, JournalError> {
        JournalIter::open_inner(path.as_ref(), false)
    }

    /// As [`JournalIter::open`], additionally taking the writer's
    /// exclusive lock for the iterator's lifetime — use when the scan
    /// precedes appending ([`JournalIter::into_appender`]) or a
    /// compaction rewrite, so no concurrent writer can extend the file
    /// between scan and write.
    ///
    /// # Errors
    ///
    /// As [`JournalIter::open`], plus [`JournalError::Busy`] when
    /// another writer holds the journal.
    pub fn open_locked(path: impl AsRef<Path>) -> Result<JournalIter, JournalError> {
        JournalIter::open_inner(path.as_ref(), true)
    }

    fn open_inner(path: &Path, locked: bool) -> Result<JournalIter, JournalError> {
        let file = OpenOptions::new()
            .read(true)
            .write(locked)
            .open(path)
            .map_err(|e| JournalError::io("open", path, e))?;
        if locked {
            lock_exclusive(&file, path)?;
        }
        let file_len = file
            .metadata()
            .map_err(|e| JournalError::io("stat", path, e))?
            .len();
        let mut reader = BufReader::new(file);
        let mut magic = [0u8; 8];
        match reader.read_exact(&mut magic) {
            Ok(()) if magic == MAGIC => {}
            Ok(()) => {
                return Err(JournalError::BadMagic {
                    path: path.to_path_buf(),
                })
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(JournalError::BadMagic {
                    path: path.to_path_buf(),
                })
            }
            Err(e) => return Err(JournalError::io("read magic", path, e)),
        }
        let mut iter = JournalIter {
            reader,
            path: path.to_path_buf(),
            header: Vec::new(),
            valid_len: MAGIC.len() as u64,
            file_len,
            corruption: None,
            fused: false,
            locked,
        };
        match iter.read_frame() {
            Ok(Some(header)) => {
                iter.header = header;
                Ok(iter)
            }
            Ok(None) => Err(JournalError::NoHeader {
                path: path.to_path_buf(),
            }),
            Err(e) => Err(e),
        }
    }

    /// The header frame's payload.
    pub fn header(&self) -> &[u8] {
        &self.header
    }

    /// The path the iterator was opened on.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte length of the valid prefix scanned so far (final once the
    /// iterator is exhausted).
    pub fn valid_len(&self) -> u64 {
        self.valid_len
    }

    /// Whether bytes past the valid prefix will be (or were) dropped.
    /// Meaningful once the iterator is exhausted.
    pub fn truncated_tail(&self) -> bool {
        self.valid_len < self.file_len
    }

    /// Triage of the first invalid frame, if iteration stopped on one:
    /// its byte offset and the validation that failed. `None` while
    /// frames remain or when the journal ended cleanly on a frame
    /// boundary.
    pub fn corruption(&self) -> Option<&TailCorruption> {
        self.corruption.as_ref()
    }

    /// Converts an **exhausted, [`JournalIter::open_locked`]** iterator
    /// into an appending [`Journal`]: any invalid tail is physically
    /// truncated and the write position set to the valid prefix — the
    /// lock taken at open is carried over, so no other writer can have
    /// slipped in between scan and append.
    ///
    /// Remaining unread frames are drained (and validated) first, so
    /// calling this early cannot truncate valid records.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when draining, truncating, or
    /// seeking fails.
    ///
    /// # Panics
    ///
    /// Panics if the iterator was opened without the lock
    /// ([`JournalIter::open`]) — appending without the scan-time lock
    /// could truncate frames a concurrent writer committed.
    pub fn into_appender(mut self) -> Result<Journal, JournalError> {
        assert!(
            self.locked,
            "into_appender requires JournalIter::open_locked"
        );
        for record in &mut self {
            record?;
        }
        let path = self.path;
        let mut file = self.reader.into_inner();
        if self.valid_len < self.file_len {
            file.set_len(self.valid_len)
                .map_err(|e| JournalError::io("truncate torn tail", &path, e))?;
            file.sync_all()
                .map_err(|e| JournalError::io("fsync", &path, e))?;
        }
        file.seek(SeekFrom::Start(self.valid_len))
            .map_err(|e| JournalError::io("seek", &path, e))?;
        Ok(Journal {
            file,
            path,
            len: self.valid_len,
        })
    }

    /// Reads and validates the frame at the current position. `Ok(None)`
    /// when no further valid frame exists (clean end or corruption —
    /// the latter recorded in `self.corruption`).
    fn read_frame(&mut self) -> Result<Option<Vec<u8>>, JournalError> {
        let mut header = [0u8; FRAME_HEADER];
        let mut got = 0usize;
        while got < header.len() {
            match self.reader.read(&mut header[got..]) {
                Ok(0) => break,
                Ok(n) => got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(JournalError::io("read frame header", &self.path, e)),
            }
        }
        if got < header.len() {
            if got > 0 || self.valid_len < self.file_len {
                self.corruption = Some(TailCorruption {
                    offset: self.valid_len,
                    reason: CorruptionReason::TruncatedHeader,
                });
            }
            return Ok(None);
        }
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            self.corruption = Some(TailCorruption {
                offset: self.valid_len,
                reason: CorruptionReason::OversizedLength(len),
            });
            return Ok(None);
        }
        let checksum = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        let mut payload = vec![0u8; len as usize];
        if let Err(e) = self.reader.read_exact(&mut payload) {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                self.corruption = Some(TailCorruption {
                    offset: self.valid_len,
                    reason: CorruptionReason::TruncatedPayload,
                });
                return Ok(None);
            }
            return Err(JournalError::io("read frame payload", &self.path, e));
        }
        if fnv1a(&payload) != checksum {
            self.corruption = Some(TailCorruption {
                offset: self.valid_len,
                reason: CorruptionReason::ChecksumMismatch,
            });
            return Ok(None);
        }
        self.valid_len += (FRAME_HEADER + payload.len()) as u64;
        Ok(Some(payload))
    }
}

impl Iterator for JournalIter {
    type Item = Result<Vec<u8>, JournalError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.fused {
            return None;
        }
        match self.read_frame() {
            Ok(Some(payload)) => Some(Ok(payload)),
            Ok(None) => {
                self.fused = true;
                None
            }
            Err(e) => {
                self.fused = true;
                Some(Err(e))
            }
        }
    }
}

/// The decoded contents of a journal file: its valid prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalContents {
    /// The header frame's payload.
    pub header: Vec<u8>,
    /// Every complete, checksum-valid record payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Whether bytes after the last valid frame were dropped (a torn
    /// frame from a crash mid-append, or trailing corruption).
    pub truncated_tail: bool,
    /// Byte length of the valid prefix (where appends resume).
    pub valid_len: u64,
}

/// Reads journal files by materializing the whole valid prefix. For
/// journals whose size may exceed memory, stream through
/// [`JournalIter`] instead.
#[derive(Debug)]
pub struct JournalReader;

impl JournalReader {
    /// Reads the valid prefix of the journal at `path`.
    ///
    /// Corruption **after** the header frame is not an error: reading
    /// stops at the first frame whose length or checksum fails, returns
    /// everything before it, and sets
    /// [`JournalContents::truncated_tail`] — the caller decides whether
    /// lost tail records matter (a resumed campaign simply recomputes
    /// that work).
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::BadMagic`] when the magic or format
    /// version mismatches, [`JournalError::NoHeader`] when no complete
    /// header frame exists, or [`JournalError::Io`] on read failure.
    pub fn read(path: impl AsRef<Path>) -> Result<JournalContents, JournalError> {
        let mut iter = JournalIter::open(path)?;
        let mut records = Vec::new();
        for record in &mut iter {
            records.push(record?);
        }
        Ok(JournalContents {
            header: iter.header,
            records,
            truncated_tail: iter.valid_len < iter.file_len,
            valid_len: iter.valid_len,
        })
    }
}

/// Read-only streaming access to a set of sibling journals — typically
/// the per-host journals of one distributed campaign, opened together
/// so a merge can validate all headers before folding any records.
///
/// Journals are opened without the writer lock ([`JournalIter::open`])
/// in caller order; every accessor is indexed by that order. Unlike a
/// single-journal resume, which silently truncates a torn tail and
/// recomputes the lost work, a cross-journal consumer usually must
/// treat corruption as fatal — the sibling that could recompute the
/// dropped frames is another host — so [`JournalSet::corruption`]
/// attributes the first invalid frame to its journal index and the
/// caller decides.
///
/// # Examples
///
/// ```
/// use spe_persist::{Journal, JournalSet};
///
/// # let dir = std::env::temp_dir().join(format!("spe-persist-doc-set-{}", std::process::id()));
/// # std::fs::create_dir_all(&dir)?;
/// let paths: Vec<_> = (0..2).map(|h| dir.join(format!("host{h}.journal"))).collect();
/// for (h, p) in paths.iter().enumerate() {
///     let mut j = Journal::create(p, format!("host {h}").as_bytes())?;
///     j.append(b"rec")?;
/// }
/// let mut set = JournalSet::open(&paths)?;
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.header(1), b"host 1");
/// let records: Vec<Vec<u8>> = set.records(0).collect::<Result<_, _>>()?;
/// assert_eq!(records, vec![b"rec".to_vec()]);
/// assert!(set.corruption(0).is_none());
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct JournalSet {
    journals: Vec<JournalIter>,
}

impl JournalSet {
    /// Opens every path read-only and validates each file's magic and
    /// header frame. All-or-nothing: the first failure aborts the open
    /// (its [`JournalError`] names the offending path).
    ///
    /// # Errors
    ///
    /// As [`JournalIter::open`], for the first path that fails.
    pub fn open<P: AsRef<Path>>(paths: &[P]) -> Result<JournalSet, JournalError> {
        let journals = paths
            .iter()
            .map(JournalIter::open)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(JournalSet { journals })
    }

    /// Number of journals in the set.
    pub fn len(&self) -> usize {
        self.journals.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.journals.is_empty()
    }

    /// Header payload of journal `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn header(&self, index: usize) -> &[u8] {
        self.journals[index].header()
    }

    /// Path journal `index` was opened on.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn path(&self, index: usize) -> &Path {
        self.journals[index].path()
    }

    /// The record stream of journal `index`, for draining with
    /// `for rec in set.records(i)` (each item as [`JournalIter`]'s).
    /// After exhaustion, check [`JournalSet::corruption`]`(index)`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn records(&mut self, index: usize) -> &mut JournalIter {
        &mut self.journals[index]
    }

    /// Triage of journal `index`'s first invalid frame, if its stream
    /// stopped on one — `None` while frames remain or when that journal
    /// ended cleanly on a frame boundary (see [`JournalIter::corruption`]).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn corruption(&self, index: usize) -> Option<&TailCorruption> {
        self.journals[index].corruption()
    }

    /// Whether journal `index` has bytes past its valid prefix
    /// (meaningful once its stream is exhausted).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn truncated_tail(&self, index: usize) -> bool {
        self.journals[index].truncated_tail()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spe-persist-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn roundtrip_header_and_records() {
        let path = temp_path("roundtrip.journal");
        let mut j = Journal::create(&path, b"header").unwrap();
        j.append(b"one").unwrap();
        j.append(b"").unwrap();
        j.append(&[0xff; 1000]).unwrap();
        drop(j);
        let c = JournalReader::read(&path).unwrap();
        assert_eq!(c.header, b"header");
        assert_eq!(c.records.len(), 3);
        assert_eq!(c.records[0], b"one");
        assert_eq!(c.records[1], b"");
        assert_eq!(c.records[2], vec![0xff; 1000]);
        assert!(!c.truncated_tail);
    }

    #[test]
    fn torn_tail_is_dropped_at_every_cut_point() {
        let path = temp_path("torn.journal");
        let mut j = Journal::create(&path, b"h").unwrap();
        j.append(b"first record").unwrap();
        j.append(b"second record").unwrap();
        drop(j);
        let full = std::fs::read(&path).unwrap();
        // Find where the second record's frame begins.
        let c = JournalReader::read(&path).unwrap();
        let second_start = full.len() - (FRAME_HEADER + b"second record".len());
        assert_eq!(c.valid_len, full.len() as u64);
        for cut in second_start + 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let c = JournalReader::read(&path).unwrap();
            assert_eq!(c.records, vec![b"first record".to_vec()], "cut {cut}");
            assert!(c.truncated_tail, "cut {cut}");
            assert_eq!(c.valid_len as usize, second_start, "cut {cut}");
        }
    }

    #[test]
    fn corrupt_checksum_stops_the_read() {
        let path = temp_path("corrupt.journal");
        let mut j = Journal::create(&path, b"h").unwrap();
        j.append(b"good").unwrap();
        j.append(b"flipped").unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // flip a payload bit of the final record
        std::fs::write(&path, &bytes).unwrap();
        let c = JournalReader::read(&path).unwrap();
        assert_eq!(c.records, vec![b"good".to_vec()]);
        assert!(c.truncated_tail);
    }

    #[test]
    fn streaming_iter_triages_corruption_with_offset_and_reason() {
        let path = temp_path("triage.journal");
        let mut j = Journal::create(&path, b"h").unwrap();
        j.append(b"good record").unwrap();
        j.append(b"will be flipped").unwrap();
        j.append(b"lost after the flip").unwrap();
        drop(j);
        let clean = std::fs::read(&path).unwrap();
        // Offset of the second record's frame.
        let tail = [b"will be flipped".len(), b"lost after the flip".len()]
            .iter()
            .map(|l| FRAME_HEADER + l)
            .sum::<usize>();
        let second_start = clean.len() - tail;

        // Mid-journal payload bit flip: checksum mismatch at that frame,
        // later (individually valid) frames dropped with it.
        let mut bytes = clean.clone();
        bytes[second_start + FRAME_HEADER + 3] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let mut iter = JournalIter::open(&path).unwrap();
        let records: Vec<Vec<u8>> = (&mut iter).collect::<Result<_, _>>().unwrap();
        assert_eq!(records, vec![b"good record".to_vec()]);
        assert!(iter.truncated_tail());
        let corruption = iter.corruption().expect("triaged");
        assert_eq!(corruption.offset, second_start as u64);
        assert_eq!(corruption.reason, CorruptionReason::ChecksumMismatch);

        // Length-field bit flip into an absurd frame size.
        let mut bytes = clean.clone();
        bytes[second_start + 3] ^= 0x80; // high byte of the u32 length
        std::fs::write(&path, &bytes).unwrap();
        let mut iter = JournalIter::open(&path).unwrap();
        assert_eq!((&mut iter).count(), 1);
        assert!(matches!(
            iter.corruption().expect("triaged").reason,
            CorruptionReason::OversizedLength(_)
        ));

        // Torn tail: header cut short.
        std::fs::write(&path, &clean[..second_start + 5]).unwrap();
        let mut iter = JournalIter::open(&path).unwrap();
        assert_eq!((&mut iter).count(), 1);
        let corruption = *iter.corruption().expect("triaged");
        assert_eq!(corruption.reason, CorruptionReason::TruncatedHeader);
        assert_eq!(corruption.offset, second_start as u64);

        // Torn tail: payload cut short.
        std::fs::write(&path, &clean[..second_start + FRAME_HEADER + 4]).unwrap();
        let mut iter = JournalIter::open(&path).unwrap();
        assert_eq!((&mut iter).count(), 1);
        assert_eq!(
            iter.corruption().expect("triaged").reason,
            CorruptionReason::TruncatedPayload
        );
        assert!(!format!("{}", iter.corruption().unwrap()).is_empty());
    }

    #[test]
    fn open_append_truncates_the_torn_tail() {
        let path = temp_path("reopen.journal");
        let mut j = Journal::create(&path, b"h").unwrap();
        j.append(b"kept").unwrap();
        drop(j);
        // Torn frame: plausible header, missing payload.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[10, 0, 0, 0, 1, 2, 3]).unwrap();
        drop(f);
        let mut j = Journal::open_append(&path).unwrap();
        j.append(b"after crash").unwrap();
        drop(j);
        let c = JournalReader::read(&path).unwrap();
        assert_eq!(c.records, vec![b"kept".to_vec(), b"after crash".to_vec()]);
        assert!(!c.truncated_tail);
    }

    #[test]
    fn locked_iter_becomes_an_appender_in_one_pass() {
        let path = temp_path("iter-appender.journal");
        let mut j = Journal::create(&path, b"h").unwrap();
        j.append(b"one").unwrap();
        j.append(b"two").unwrap();
        drop(j);
        // Torn tail to be truncated by the appender conversion.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[99, 0, 0, 0, 9]).unwrap();
        drop(f);
        let mut iter = JournalIter::open_locked(&path).unwrap();
        let mut n = 0;
        for rec in &mut iter {
            rec.unwrap();
            n += 1;
        }
        assert_eq!(n, 2);
        // The lock is already held: a second writer fails Busy.
        assert!(matches!(
            Journal::open_append(&path),
            Err(JournalError::Busy { .. })
        ));
        let mut j = iter.into_appender().unwrap();
        j.append(b"three").unwrap();
        drop(j);
        let c = JournalReader::read(&path).unwrap();
        assert_eq!(
            c.records,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        assert!(!c.truncated_tail);
    }

    #[test]
    fn a_second_writer_is_rejected_while_the_first_holds_the_journal() {
        let path = temp_path("locked.journal");
        let mut j = Journal::create(&path, b"h").unwrap();
        j.append(b"rec").unwrap();
        assert!(
            matches!(Journal::open_append(&path), Err(JournalError::Busy { .. })),
            "concurrent writers must fail fast"
        );
        // A racing `create` must also fail Busy — and must NOT have
        // damaged the live journal (truncation only happens under the
        // lock).
        assert!(matches!(
            Journal::create(&path, b"other"),
            Err(JournalError::Busy { .. })
        ));
        j.append(b"still fine").unwrap();
        drop(j); // releases the lock
        let c = JournalReader::read(&path).unwrap();
        assert_eq!(c.header, b"h", "live journal survived the racing create");
        assert_eq!(c.records, vec![b"rec".to_vec(), b"still fine".to_vec()]);
        let mut j2 = Journal::open_append(&path).unwrap();
        j2.append(b"after").unwrap();
        drop(j2);
        assert_eq!(JournalReader::read(&path).unwrap().records.len(), 3);
    }

    #[test]
    fn bad_magic_and_missing_header_are_errors() {
        let path = temp_path("magic.journal");
        std::fs::write(&path, b"not a journal at all").unwrap();
        assert!(matches!(
            JournalReader::read(&path),
            Err(JournalError::BadMagic { .. })
        ));
        std::fs::write(&path, MAGIC).unwrap();
        assert!(matches!(
            JournalReader::read(&path),
            Err(JournalError::NoHeader { .. })
        ));
        assert!(Journal::open_append(&path).is_err());
    }

    #[test]
    fn errors_name_the_path_and_operation() {
        let path = temp_path("named-errors.journal");
        std::fs::write(&path, b"junk").unwrap();
        let err = JournalReader::read(&path).unwrap_err();
        assert!(
            err.to_string().contains("named-errors.journal"),
            "error names the file: {err}"
        );
        let missing = temp_path("does-not-exist.journal");
        std::fs::remove_file(&missing).ok();
        let err = JournalIter::open(&missing).unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("open") && text.contains("does-not-exist.journal"),
            "I/O error names operation and path: {text}"
        );
    }

    #[test]
    fn injected_append_failures_surface_as_io_errors() {
        let path = temp_path("injected.journal");
        let mut j = Journal::create(&path, b"h").unwrap();
        j.append(b"before").unwrap();
        faults::inject_append_failures("injected.journal", 2, 28); // ENOSPC
        let err = j.append(b"fails").unwrap_err();
        match &err {
            JournalError::Io { op, source, .. } => {
                assert_eq!(*op, "append");
                assert_eq!(source.raw_os_error(), Some(28));
            }
            other => panic!("expected Io, got {other:?}"),
        }
        assert!(j.append(b"fails too").is_err());
        // The injection budget is spent; appends recover, and the
        // committed prefix never saw the failed writes.
        j.append(b"after").unwrap();
        drop(j);
        let c = JournalReader::read(&path).unwrap();
        assert_eq!(c.records, vec![b"before".to_vec(), b"after".to_vec()]);
        faults::clear();
    }

    #[test]
    fn version_bump_invalidates_old_readers() {
        let path = temp_path("version.journal");
        Journal::create(&path, b"h").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[7] = 0x02; // future format version
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            JournalReader::read(&path),
            Err(JournalError::BadMagic { .. })
        ));
    }

    #[test]
    fn promote_atomically_replaces_a_journal() {
        let dst = temp_path("promote-dst.journal");
        let tmp = temp_path("promote-tmp.journal");
        let mut j = Journal::create(&dst, b"old").unwrap();
        j.append(b"old record").unwrap();
        drop(j);
        let mut j = Journal::create(&tmp, b"new").unwrap();
        j.append(b"new record").unwrap();
        drop(j);
        promote(&tmp, &dst).unwrap();
        assert!(!tmp.exists(), "tmp was renamed away");
        let c = JournalReader::read(&dst).unwrap();
        assert_eq!(c.header, b"new");
        assert_eq!(c.records, vec![b"new record".to_vec()]);
    }

    #[test]
    fn journal_set_streams_headers_and_records_in_caller_order() {
        let paths: Vec<PathBuf> = (0..3)
            .map(|h| temp_path(&format!("set-order-{h}.journal")))
            .collect();
        for (h, p) in paths.iter().enumerate() {
            let mut j = Journal::create(p, format!("host {h}").as_bytes()).unwrap();
            for r in 0..=h {
                j.append(format!("h{h} r{r}").as_bytes()).unwrap();
            }
        }
        let mut set = JournalSet::open(&paths).unwrap();
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        for (h, path) in paths.iter().enumerate() {
            assert_eq!(set.header(h), format!("host {h}").as_bytes());
            assert_eq!(set.path(h), path.as_path());
            let records: Vec<Vec<u8>> = set.records(h).collect::<Result<_, _>>().unwrap();
            assert_eq!(records.len(), h + 1);
            assert_eq!(records[0], format!("h{h} r0").into_bytes());
            assert!(set.corruption(h).is_none());
            assert!(!set.truncated_tail(h));
        }
    }

    #[test]
    fn journal_set_attributes_corruption_to_the_offending_journal() {
        let clean = temp_path("set-clean.journal");
        let torn = temp_path("set-torn.journal");
        for p in [&clean, &torn] {
            let mut j = Journal::create(p, b"m").unwrap();
            j.append(b"first").unwrap();
            j.append(b"second").unwrap();
        }
        // Tear the second journal's last frame mid-payload.
        let len = std::fs::metadata(&torn).unwrap().len();
        let f = OpenOptions::new().write(true).open(&torn).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let mut set = JournalSet::open(&[&clean, &torn]).unwrap();
        for h in 0..2 {
            for rec in set.records(h) {
                rec.unwrap();
            }
        }
        assert!(set.corruption(0).is_none(), "clean journal stays clean");
        let c = set.corruption(1).expect("torn journal is triaged");
        assert_eq!(c.reason, CorruptionReason::TruncatedPayload);
        assert!(set.truncated_tail(1));
    }

    #[test]
    fn journal_set_open_is_all_or_nothing_and_names_the_bad_path() {
        let good = temp_path("set-good.journal");
        drop(Journal::create(&good, b"m").unwrap());
        let bad = temp_path("set-not-a.journal");
        std::fs::write(&bad, b"not a journal at all").unwrap();
        let err = JournalSet::open(&[&good, &bad]).unwrap_err();
        match err {
            JournalError::BadMagic { path } => assert_eq!(path, bad),
            other => panic!("expected BadMagic for {bad:?}, got {other}"),
        }
    }
}
