//! Partition-coverage property for multi-host fleet campaigns
//! (`DESIGN.md` §14): dealing a skeleton's shard space across hosts by
//! `even_ranges` must hand **every emission index to exactly one
//! (host, shard) slice**, and replaying the slices in (host, shard)
//! order must reproduce the serial enumeration variant-for-variant —
//! brute-force checked against an ownership table, so no index can be
//! dropped or double-enumerated no matter where the host cuts land.

use proptest::prelude::*;
use spe_combinatorics::even_ranges;
use spe_core::{
    Algorithm, Enumerator, EnumeratorConfig, NameId, ShardedEnumerator, Skeleton, Variant,
};
use std::ops::ControlFlow;

/// A small mini-C program whose skeleton's variant space grows with the
/// number of variables and statements.
fn program(vars: usize, stmts: usize) -> String {
    let mut src = String::from("int main() {\n");
    for v in 0..vars {
        src.push_str(&format!("    int a{v} = {v};\n"));
    }
    for s in 0..stmts {
        src.push_str(&format!(
            "    a{} = a{} + a{};\n",
            s % vars,
            (s + 1) % vars,
            (s + 2) % vars
        ));
    }
    src.push_str("    return a0;\n}\n");
    src
}

fn collect(outcomes: &mut Vec<(u64, Vec<NameId>)>) -> impl FnMut(&Variant) -> ControlFlow<()> + '_ {
    |v| {
        outcomes.push((v.index, v.names.clone()));
        ControlFlow::Continue(())
    }
}

/// Enumerates the full fleet — every shard of every host slice, in
/// (host, shard) order — asserting along the way that each emission
/// index is produced by exactly the (host, shard) the partition
/// arithmetic says owns it.
fn fleet_enumeration(
    sk: &Skeleton,
    config: &EnumeratorConfig,
    shards: usize,
    n_hosts: usize,
) -> Vec<(u64, Vec<NameId>)> {
    let sharded = ShardedEnumerator::new(*config, shards);
    let space = sharded.prepare(sk);
    let ranges = sharded.shard_ranges_prepared(&space);
    let host_slices = even_ranges(shards, n_hosts);
    let total = space.total(config.budget);
    // owner[i] = Some((host, shard)) once slice (host, shard) emits i.
    let mut owner: Vec<Option<(usize, usize)>> = vec![None; total as usize];
    let mut merged = Vec::new();
    for (host, slice) in host_slices.iter().enumerate() {
        for shard in slice.clone() {
            let mut emitted = Vec::new();
            sharded.enumerate_shard_prepared(&space, shard, &mut collect(&mut emitted));
            for (index, names) in emitted {
                assert!(
                    ranges[shard].contains(&index),
                    "shard {shard} emitted index {index} outside its range {:?}",
                    ranges[shard]
                );
                let prev = owner[index as usize].replace((host, shard));
                assert_eq!(
                    prev, None,
                    "index {index} enumerated by both {prev:?} and ({host}, {shard})"
                );
                merged.push((index, names));
            }
        }
    }
    let orphans: Vec<usize> = owner
        .iter()
        .enumerate()
        .filter_map(|(i, o)| o.is_none().then_some(i))
        .collect();
    assert!(orphans.is_empty(), "indices owned by no slice: {orphans:?}");
    merged
}

#[test]
fn every_emission_index_is_owned_by_exactly_one_host_shard_slice() {
    let sk = Skeleton::from_source(&program(4, 3)).expect("skeleton builds");
    let config = EnumeratorConfig {
        budget: 200,
        ..EnumeratorConfig::default()
    };
    let mut serial = Vec::new();
    Enumerator::new(config).enumerate(&sk, &mut collect(&mut serial));
    assert!(serial.len() > 1, "the space must be non-trivial");
    for (shards, n_hosts) in [(1, 1), (4, 2), (5, 3), (7, 8), (3, 5)] {
        assert_eq!(
            fleet_enumeration(&sk, &config, shards, n_hosts),
            serial,
            "{shards} shards over {n_hosts} hosts diverged from serial"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fleet_slices_reproduce_serial_enumeration_exactly(
        vars in 2usize..5,
        stmts in 1usize..4,
        shards in 1usize..8,
        n_hosts in 1usize..6,
        budget in 4usize..120,
        canonical in 0usize..2,
    ) {
        let sk = Skeleton::from_source(&program(vars, stmts)).expect("skeleton builds");
        let config = EnumeratorConfig {
            algorithm: if canonical == 1 { Algorithm::Canonical } else { Algorithm::Paper },
            budget,
            ..EnumeratorConfig::default()
        };
        let mut serial = Vec::new();
        Enumerator::new(config).enumerate(&sk, &mut collect(&mut serial));
        prop_assert_eq!(fleet_enumeration(&sk, &config, shards, n_hosts), serial);
    }
}
