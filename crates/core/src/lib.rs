//! Skeletal program enumeration — the core public API.
//!
//! This crate is the paper's primary contribution as a library: given a
//! program, enumerate (or count) all non-α-equivalent variable-usage
//! variants of its skeleton.
//!
//! * [`Enumerator`] drives enumeration over a [`Skeleton`] with a chosen
//!   [`Algorithm`], [`Granularity`] and per-skeleton variant budget (the
//!   paper uses a 10,000-variant threshold in §5.2.1);
//! * [`spe_count`] / [`naive_count`] are the closed-form counting
//!   counterparts used for the search-space-reduction results (Table 1);
//! * [`Variant`]s carry the use-site rename map and realize to compilable
//!   source on demand.
//!
//! # Quick start
//!
//! ```
//! use spe_core::{Enumerator, EnumeratorConfig, Algorithm, Granularity, Skeleton};
//!
//! let sk = Skeleton::from_source(
//!     "int main() { int a, b = 1; b = b - a; if (a) a = a - b; return 0; }",
//! )?;
//! // Figure 1: 2^7 = 128 naive fillings, 64 non-α-equivalent.
//! assert_eq!(spe_core::naive_count(&sk, Granularity::Intra).to_u64(), Some(128));
//! assert_eq!(spe_core::spe_count(&sk, Granularity::Intra).to_u64(), Some(64));
//!
//! let e = Enumerator::new(EnumeratorConfig::default());
//! let variants = e.collect_sources(&sk);
//! assert_eq!(variants.len(), 64);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

use spe_bignum::BigUint;
use spe_combinatorics::{
    assignment_for_rgs, canonical_solutions, enumerate_canonical_shard, orbit_solutions,
    paper_solutions, rgs_unrank, ConstrainedRgs, Fillings, GeneralInstance, RgsShard,
};
pub use spe_skeleton::{
    Granularity, Hole, NameId, NameTable, RenderTemplate, Skeleton, SkeletonError, TypeGroup, Unit,
};
use std::ops::ControlFlow;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};

/// Which enumeration semantics to use. See `DESIGN.md` §2 for the
/// relationship between the three non-naive variants (on the paper's
/// Example 6 they produce 36, 35 and 40 solutions respectively; they all
/// coincide with Bell-number enumeration when every variable is global).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// Algorithm 1 + `PartitionScope`, verbatim from the paper. Used for
    /// all experiment reproductions.
    #[default]
    Paper,
    /// One representative per *valid partition* — duplicate-free and
    /// exhaustive w.r.t. dependence structure.
    Canonical,
    /// One representative per strict compact-α-renaming class.
    Orbit,
    /// The full Cartesian product of fillings (§3.1) — the baseline.
    Naive,
}

/// Enumerator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumeratorConfig {
    /// Enumeration semantics.
    pub algorithm: Algorithm,
    /// Intra- or inter-procedural units (§4.3).
    pub granularity: Granularity,
    /// Maximum number of variants emitted per skeleton; the paper's
    /// threshold is 10,000.
    pub budget: usize,
}

impl Default for EnumeratorConfig {
    fn default() -> Self {
        EnumeratorConfig {
            algorithm: Algorithm::Paper,
            granularity: Granularity::Intra,
            budget: 10_000,
        }
    }
}

/// One enumerated variant: a use-site renaming of the skeleton as a flat
/// hole-indexed vector of interned names.
///
/// `names[h]` fills hole `h` of [`Skeleton::holes`] (merged across all
/// units and type groups). The enumerator reuses one `Variant` across the
/// whole stream — visitors receive `&Variant` and must copy
/// ([`Variant::clone`]) anything they keep past the callback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// Sequential index in emission order.
    pub index: u64,
    /// The chosen name of every hole, in [`Skeleton::holes`] order.
    pub names: Vec<NameId>,
}

impl Variant {
    /// Realizes the variant as source text via the skeleton's compiled
    /// render template.
    pub fn source(&self, sk: &Skeleton) -> String {
        sk.render(&self.names)
    }

    /// Renders the variant into a caller-provided reusable buffer
    /// (cleared first) — the allocation-free hot path.
    pub fn render_into(&self, sk: &Skeleton, out: &mut String) {
        sk.render_into(&self.names, out);
    }

    /// Collects into `out` (cleared first) the hole indices whose names
    /// differ between `prev` and this variant.
    ///
    /// Consecutive variants in emission order differ by a single
    /// odometer digit, so the delta is almost always one index — this
    /// is what lets an incremental oracle resplice only the changed
    /// bindings instead of reprocessing the whole program. A `prev` of
    /// different length (e.g. the first variant after a skeleton
    /// boundary) yields every hole index.
    pub fn changed_holes_into(&self, prev: &[NameId], out: &mut Vec<usize>) {
        out.clear();
        if prev.len() != self.names.len() {
            out.extend(0..self.names.len());
            return;
        }
        for (h, (&old, &new)) in prev.iter().zip(&self.names).enumerate() {
            if old != new {
                out.push(h);
            }
        }
    }
}

/// Outcome of an enumeration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerationOutcome {
    /// Variants emitted.
    pub emitted: u64,
    /// Whether the budget cut the enumeration short.
    pub truncated: bool,
}

/// The SPE enumerator.
#[derive(Debug, Clone, Default)]
pub struct Enumerator {
    config: EnumeratorConfig,
}

impl Enumerator {
    /// Creates an enumerator with the given configuration.
    pub fn new(config: EnumeratorConfig) -> Enumerator {
        Enumerator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EnumeratorConfig {
        &self.config
    }

    /// Enumerates variants of `sk`, calling `visit` for each until the
    /// budget is reached or the visitor breaks.
    pub fn enumerate<F>(&self, sk: &Skeleton, visit: &mut F) -> EnumerationOutcome
    where
        F: FnMut(&Variant) -> ControlFlow<()>,
    {
        let (base, fragments, mut truncated) = materialize_fragments(&self.config, sk);
        let total = emission_total(&fragments, self.config.budget, &mut truncated);
        let (emitted, broke) = stream_index_range(&base, &fragments, 0..total, None, visit);
        EnumerationOutcome {
            emitted,
            truncated: truncated || broke,
        }
    }

    /// Convenience: collects realized variant sources (within budget).
    pub fn collect_sources(&self, sk: &Skeleton) -> Vec<String> {
        let mut out = Vec::new();
        self.enumerate(sk, &mut |v| {
            out.push(v.source(sk));
            ControlFlow::Continue(())
        });
        out
    }
}

/// A per-group rename fragment: `(hole index, chosen name)` pairs covering
/// exactly that group's holes. Fragments of different groups touch
/// disjoint holes, so applying one per group yields a full variant.
type Fragment = Vec<(u32, NameId)>;

/// The identity filling: every hole keeps its original variable's name.
fn base_names(sk: &Skeleton) -> Vec<NameId> {
    sk.holes().iter().map(|h| sk.var_name(h.var)).collect()
}

/// Overwrites the fragment's holes in a full rename vector.
fn apply_fragment(names: &mut [NameId], fragment: &Fragment) {
    for &(h, n) in fragment {
        names[h as usize] = n;
    }
}

/// Materializes the per-group rename fragments for a skeleton, each capped
/// by the budget (if a single group exceeds it, the product does too).
/// Returns the identity name vector, the fragment lists (one per type
/// group, in unit order) and whether any group was truncated.
fn materialize_fragments(
    config: &EnumeratorConfig,
    sk: &Skeleton,
) -> (Vec<NameId>, Vec<Vec<Fragment>>, bool) {
    let units = sk.units(config.granularity);
    let groups: Vec<&TypeGroup> = units.iter().flat_map(|u| u.groups.iter()).collect();
    let mut truncated = false;
    let mut fragments: Vec<Vec<Fragment>> = Vec::with_capacity(groups.len());
    for g in &groups {
        let (frags, t) = group_fragments(config, sk, g);
        truncated |= t;
        fragments.push(frags);
    }
    (base_names(sk), fragments, truncated)
}

/// Number of variants to emit: the Cartesian product of fragment sizes,
/// capped by the budget (the cap sets `truncated`). A group with zero
/// solutions — which never happens for well-formed skeletons, since each
/// hole's original variable is allowed — collapses the product to zero.
fn emission_total(fragments: &[Vec<Fragment>], budget: usize, truncated: &mut bool) -> u64 {
    let product: u128 = fragments
        .iter()
        .map(|f| f.len() as u128)
        .fold(1u128, u128::saturating_mul);
    if product > budget as u128 {
        *truncated = true;
    }
    product.min(budget as u128) as u64
}

/// Streams the variants with emission indices in `range` through `visit`,
/// in index order. The mixed-radix decomposition of `range.start` is the
/// `skip_to(shard_start)` entry point: a worker resumes mid-product in
/// O(#groups) without touching earlier variants. Returns the number of
/// variants emitted and whether the visitor (or the shared `stop` flag)
/// broke the stream.
///
/// The hot loop is allocation-free: one `Variant` is set up from `base`
/// and mutated in place, and advancing the odometer re-applies only the
/// fragments whose digit changed.
fn stream_index_range<F>(
    base: &[NameId],
    fragments: &[Vec<Fragment>],
    range: Range<u64>,
    stop: Option<&AtomicBool>,
    visit: &mut F,
) -> (u64, bool)
where
    F: FnMut(&Variant) -> ControlFlow<()>,
{
    // skip_to: decompose the start index into an odometer cursor.
    let mut cursor = vec![0usize; fragments.len()];
    let mut rest = range.start;
    for i in (0..fragments.len()).rev() {
        let size = fragments[i].len() as u64;
        if size == 0 {
            return (0, false);
        }
        cursor[i] = (rest % size) as usize;
        rest /= size;
    }
    let mut variant = Variant {
        index: range.start,
        names: base.to_vec(),
    };
    for (frags, &c) in fragments.iter().zip(&cursor) {
        apply_fragment(&mut variant.names, &frags[c]);
    }
    let mut emitted = 0u64;
    for index in range {
        if let Some(stop) = stop {
            if stop.load(Ordering::Relaxed) {
                return (emitted, true);
            }
        }
        variant.index = index;
        emitted += 1;
        if visit(&variant).is_break() {
            if let Some(stop) = stop {
                stop.store(true, Ordering::Relaxed);
            }
            return (emitted, true);
        }
        // Advance the odometer, re-applying only the changed digits.
        let mut i = fragments.len();
        while i > 0 {
            i -= 1;
            cursor[i] += 1;
            if cursor[i] < fragments[i].len() {
                apply_fragment(&mut variant.names, &fragments[i][cursor[i]]);
                break;
            }
            cursor[i] = 0;
            apply_fragment(&mut variant.names, &fragments[i][0]);
        }
    }
    (emitted, false)
}

fn group_fragments(
    config: &EnumeratorConfig,
    sk: &Skeleton,
    g: &TypeGroup,
) -> (Vec<Fragment>, bool) {
    let budget = config.budget;
    match config.algorithm {
        Algorithm::Paper => {
            let (sols, truncated) = paper_solutions(&g.flat, budget);
            (
                sols.iter().map(|s| sk.rename_for_solution(g, s)).collect(),
                truncated,
            )
        }
        Algorithm::Orbit => {
            let (sols, truncated) = orbit_solutions(&g.flat, budget);
            (
                sols.iter().map(|s| sk.rename_for_solution(g, s)).collect(),
                truncated,
            )
        }
        Algorithm::Canonical => {
            let (rgss, truncated) = canonical_solutions(&g.general, budget);
            (
                rgss.iter()
                    .filter_map(|r| sk.rename_for_rgs(g, r))
                    .collect(),
                truncated,
            )
        }
        Algorithm::Naive => {
            let mut out = Vec::new();
            let mut truncated = false;
            for filling in Fillings::new(&g.general) {
                if out.len() >= budget {
                    truncated = true;
                    break;
                }
                let frag: Fragment = filling
                    .iter()
                    .enumerate()
                    .map(|(pos, &var_idx)| {
                        (g.holes[pos] as u32, sk.var_name(g.vars[var_idx]))
                    })
                    .collect();
                out.push(frag);
            }
            (out, truncated)
        }
    }
}

/// Sharded parallel enumeration over a skeleton's variant space.
///
/// The variant space is the lexicographic Cartesian product of per-group
/// solution lists, each of which is an RGS-ordered slice of constrained
/// set-partition space (§4.1.2 of the paper). [`ShardedEnumerator`] cuts
/// the product's emission-index space `[0, total)` into `K` contiguous,
/// disjoint, near-even shards — the product-space analogue of cutting the
/// RGS space by first-block prefix, with boundary weights exact by
/// construction (see [`spe_combinatorics::shards`] for the single-group
/// RGS view and its `stirling2`/`partitions_at_most`-based sizing) — and
/// streams each shard on its own thread via [`std::thread::scope`].
///
/// Workers resume mid-space through the mixed-radix `skip_to(shard_start)`
/// decomposition, so no shard ever touches another shard's variants.
/// Emission indices are globally stable: variant `i` of a sharded run is
/// byte-identical to variant `i` of a serial [`Enumerator`] run, which
/// makes the union of all shards exactly the serial sequence — no
/// duplicates, no gaps — for every [`Algorithm`] variant.
///
/// # Examples
///
/// ```
/// use spe_core::{Enumerator, EnumeratorConfig, ShardedEnumerator, Skeleton};
///
/// let sk = Skeleton::from_source(
///     "int main() { int a, b = 1; b = b - a; if (a) a = a - b; return 0; }",
/// )?;
/// let serial = Enumerator::new(EnumeratorConfig::default()).collect_sources(&sk);
/// let sharded = ShardedEnumerator::new(EnumeratorConfig::default(), 4).collect_sources(&sk);
/// assert_eq!(serial, sharded);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShardedEnumerator {
    config: EnumeratorConfig,
    shards: usize,
}

/// A skeleton's variant space, produced by [`ShardedEnumerator::prepare`].
/// Building it is the expensive part of enumeration setup; one
/// `VariantSpace` can feed any number of shard streams, from any thread,
/// without repeating that work.
///
/// Two representations exist behind one interface:
///
/// * **product** — every per-group solution list materialized (the
///   general case: the paper, orbit and naive algorithms, and canonical
///   groups beyond the 128-variable mask width);
/// * **canonical shard-native** — for [`Algorithm::Canonical`] whenever
///   every type group admits *cheap* exact prefix counts (`num_vars <=
///   128` and the counting DP within the crate-internal state limit),
///   *including constrained, multi-group skeletons*: no solution list is
///   materialized at all. Each group's space is sized exactly — in
///   closed form ([`spe_combinatorics::partitions_at_most`]) when the
///   group is unconstrained, through the prefix-count DP
///   ([`spe_combinatorics::ConstrainedRgs`], `DESIGN.md §8`) otherwise —
///   and shards jump to their emission boundary by per-group mixed-radix
///   unranking, then walk only their own subtrees through
///   [`spe_combinatorics::enumerate_canonical_shard`]. Per-shard cost is
///   proportional to the shard, not the whole space.
#[derive(Debug, Clone)]
pub struct VariantSpace {
    /// The identity filling, also the scratch-vector prototype.
    base: Vec<NameId>,
    kind: SpaceKind,
    truncated: bool,
}

#[derive(Debug, Clone)]
enum SpaceKind {
    Product(Vec<Vec<Fragment>>),
    CanonicalNative(CanonicalNativeSpace),
}

/// Shard-native canonical space: one entry per type group (in unit
/// order, matching the materialized fragment order), each holding the
/// exact size of the group's valid-partition space plus everything
/// needed to turn an RGS into a rename vector without consulting the
/// skeleton. The emission-index space is the mixed-radix product of the
/// per-group (budget-capped) sizes, last group least significant —
/// exactly the product the materialized path enumerates.
#[derive(Debug, Clone)]
struct CanonicalNativeSpace {
    groups: Vec<NativeGroup>,
}

/// One type group of a [`CanonicalNativeSpace`].
#[derive(Debug, Clone)]
struct NativeGroup {
    general: GeneralInstance,
    /// Exact (uncapped) size of the group's canonical space.
    count: BigUint,
    /// The solution-list length the materialized path would produce:
    /// `min(count, budget at prepare time)`. This group's radix in the
    /// mixed-radix emission-index space.
    size: u64,
    /// Every hole sees the whole variable set: group-local indices
    /// unrank in closed form ([`rgs_unrank`]) and the SDR assignment is
    /// the top-`m`-ascending rule; otherwise the prefix-count DP
    /// ([`ConstrainedRgs`]) unranks and [`assignment_for_rgs`] assigns.
    unconstrained: bool,
    /// Hole index (into [`Skeleton::holes`]) of each instance position.
    holes: Vec<u32>,
    /// Interned names of the group's variables, in variable order.
    var_names: Vec<NameId>,
}

impl NativeGroup {
    /// Unranks a group-local solution index into its RGS, lazily
    /// creating the DP unranker for constrained groups.
    fn unrank<'a>(&'a self, dp: &mut Option<ConstrainedRgs<'a>>, index: u64) -> Vec<usize> {
        if self.unconstrained {
            rgs_unrank(self.general.num_holes(), self.general.num_vars, index)
        } else {
            dp.get_or_insert_with(|| ConstrainedRgs::new(&self.general))
                .unrank_u64(index)
        }
    }

    /// Overwrites this group's holes of a full rename vector with the
    /// realization of `rgs`, replicating the materialized path's SDR
    /// choice so outputs stay byte-identical: an unconstrained `m`-block
    /// partition takes the top `m` variables in ascending block order
    /// (what [`assignment_for_rgs`]'s augmenting-path matching settles
    /// on when every mask is full), and constrained partitions run the
    /// matching itself.
    fn apply(&self, rgs: &[usize], names: &mut [NameId]) {
        if self.unconstrained {
            let blocks = rgs.iter().copied().max().map_or(0, |b| b + 1);
            let k = self.general.num_vars;
            for (pos, &b) in rgs.iter().enumerate() {
                names[self.holes[pos] as usize] = self.var_names[k - blocks + b];
            }
        } else {
            let assign = assignment_for_rgs(&self.general, rgs)
                .expect("canonical solutions always admit an SDR");
            for (pos, &b) in rgs.iter().enumerate() {
                names[self.holes[pos] as usize] = self.var_names[assign[b]];
            }
        }
    }
}

impl VariantSpace {
    /// Number of variants that enumeration will emit under `budget`.
    pub fn total(&self, budget: usize) -> u64 {
        let mut truncated = self.truncated;
        self.total_with(budget, &mut truncated)
    }

    fn total_with(&self, budget: usize, truncated: &mut bool) -> u64 {
        match &self.kind {
            SpaceKind::Product(fragments) => emission_total(fragments, budget, truncated),
            SpaceKind::CanonicalNative(native) => {
                // Same cap rule as `emission_total`: per-group sizes were
                // already clamped at prepare time, the product is clamped
                // here.
                let product: u128 = native
                    .groups
                    .iter()
                    .map(|g| g.size as u128)
                    .fold(1u128, u128::saturating_mul);
                if product > budget as u128 {
                    *truncated = true;
                }
                product.min(budget as u128) as u64
            }
        }
    }

    /// Whether any group's solution list was cut short by the budget.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Whether the space uses the shard-native canonical representation —
    /// i.e. no per-group solution list was (or will be) materialized and
    /// shards index the space by exact counting alone.
    pub fn is_shard_native(&self) -> bool {
        matches!(self.kind, SpaceKind::CanonicalNative(_))
    }

    /// Streams the variants with emission indices in `range`, dispatching
    /// to the representation's native walk. Semantics are those of
    /// [`stream_index_range`] for either kind.
    fn stream_range<F>(
        &self,
        range: Range<u64>,
        stop: Option<&AtomicBool>,
        visit: &mut F,
    ) -> (u64, bool)
    where
        F: FnMut(&Variant) -> ControlFlow<()>,
    {
        match &self.kind {
            SpaceKind::Product(fragments) => {
                stream_index_range(&self.base, fragments, range, stop, visit)
            }
            SpaceKind::CanonicalNative(native) => {
                stream_canonical_range(native, &self.base, range, stop, visit)
            }
        }
    }
}

/// Per-group ceiling on constrained-counting DP states before
/// [`canonical_native_space`] gives up and the enumerator falls back to
/// the materialized path. The DP's state count tracks the number of
/// distinct block-mask multisets the constraint structure can produce:
/// small for scope-shaped constraints (the corpus regime), but
/// exponential for adversarial shapes like dozens of interleaved
/// declaration-order prefixes — where budget-capped materialized
/// enumeration stays cheap and must remain the path taken. A successful
/// in-limit count also bounds every later boundary unrank (the count
/// visits every reachable DP state), so the gate decision covers stream
/// time too.
const NATIVE_COUNT_STATE_LIMIT: usize = 1 << 14;

/// Builds the shard-native canonical representation when every type
/// group admits *cheap* exact prefix counts: group variables fit the
/// 128-bit constraint masks and the counting DP stays within
/// [`NATIVE_COUNT_STATE_LIMIT`] states. Unconstrained groups (every
/// hole sees the whole variable set — the Bell-number regime) are sized
/// in closed form; constrained groups are sized by the prefix-count DP
/// ([`ConstrainedRgs`]). Returns `None` — materialize instead — when
/// any group fails either condition. See `DESIGN.md §8` for the gate
/// conditions and the DP itself.
fn canonical_native_space(
    config: &EnumeratorConfig,
    sk: &Skeleton,
) -> Option<CanonicalNativeSpace> {
    let units = sk.units(config.granularity);
    let budget = BigUint::from(config.budget as u64);
    let mut groups = Vec::new();
    for u in &units {
        for g in &u.groups {
            let k = g.general.num_vars;
            if k == 0 || k > 128 {
                return None;
            }
            let count = g.canonical_space_size(NATIVE_COUNT_STATE_LIMIT)?;
            let size = if count > budget {
                config.budget as u64
            } else {
                count.to_u64().expect("count <= budget fits u64")
            };
            groups.push(NativeGroup {
                general: g.general.clone(),
                count,
                size,
                unconstrained: g.is_unconstrained(),
                holes: g.holes.iter().map(|&h| h as u32).collect(),
                var_names: g.vars.iter().map(|&v| sk.var_name(v)).collect(),
            });
        }
    }
    Some(CanonicalNativeSpace { groups })
}

/// Shard-native streaming of an emission-index range of a canonical
/// product space. The range start is decomposed mixed-radix into
/// per-group solution indices; every group lands on its boundary
/// solution by exact unranking (closed form or DP — never by walking
/// earlier solutions), outer groups advance odometer-style, and the
/// innermost group's runs are walked natively by
/// [`enumerate_canonical_shard`] from the unranked lower boundary. Cost
/// is proportional to the shard size (plus O(n·k) boundary unranking per
/// group), never to the whole space, and no solution list is ever
/// materialized.
fn stream_canonical_range<F>(
    native: &CanonicalNativeSpace,
    base: &[NameId],
    range: Range<u64>,
    stop: Option<&AtomicBool>,
    visit: &mut F,
) -> (u64, bool)
where
    F: FnMut(&Variant) -> ControlFlow<()>,
{
    if range.start >= range.end {
        return (0, false);
    }
    let groups = &native.groups;
    let mut variant = Variant {
        index: range.start,
        names: base.to_vec(),
    };
    let total_needed = range.end - range.start;
    if groups.is_empty() {
        // No holes: the space is exactly the identity variant.
        if let Some(stop) = stop {
            if stop.load(Ordering::Relaxed) {
                return (0, true);
            }
        }
        let broke = visit(&variant).is_break();
        if broke {
            if let Some(stop) = stop {
                stop.store(true, Ordering::Relaxed);
            }
        }
        return (1, broke);
    }
    // Mixed-radix decomposition of the start index into group-local
    // solution indices (`skip_to`): last group least significant.
    let mut digits = vec![0u64; groups.len()];
    let mut rest = range.start;
    for (g, group) in groups.iter().enumerate().rev() {
        if group.size == 0 {
            return (0, false);
        }
        digits[g] = rest % group.size;
        rest /= group.size;
    }
    // Lazily-built DP unrankers, one per constrained group.
    let mut dps: Vec<Option<ConstrainedRgs<'_>>> = groups.iter().map(|_| None).collect();
    let last = groups.len() - 1;
    // Land every outer group on its boundary solution; the innermost
    // group's position is the lower bound of its first native walk.
    for g in 0..last {
        let rgs = groups[g].unrank(&mut dps[g], digits[g]);
        groups[g].apply(&rgs, &mut variant.names);
    }
    let mut emitted = 0u64;
    let mut broke = false;
    loop {
        // One run of the innermost group: from its current digit to the
        // end of its (budget-capped) solution list, bounded by the range.
        let inner = &groups[last];
        let start_digit = digits[last];
        let lower = if start_digit == 0 {
            Vec::new()
        } else {
            inner.unrank(&mut dps[last], start_digit)
        };
        let run = RgsShard {
            n: inner.general.num_holes(),
            k: inner.general.num_vars,
            start: lower,
            end: None,
            size: inner
                .count
                .checked_sub(&BigUint::from(start_digit))
                .expect("digit indexes into the group's space"),
        };
        let mut inner_pos = start_digit;
        let _ = enumerate_canonical_shard(&inner.general, &run, &mut |rgs| {
            if inner_pos >= inner.size {
                // The budget capped this group's list: skip the tail,
                // exactly as the materialized path would.
                return ControlFlow::Break(());
            }
            if let Some(stop) = stop {
                if stop.load(Ordering::Relaxed) {
                    broke = true;
                    return ControlFlow::Break(());
                }
            }
            inner.apply(rgs, &mut variant.names);
            variant.index = range.start + emitted;
            inner_pos += 1;
            emitted += 1;
            if visit(&variant).is_break() {
                broke = true;
                if let Some(stop) = stop {
                    stop.store(true, Ordering::Relaxed);
                }
                return ControlFlow::Break(());
            }
            if emitted == total_needed {
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
        if broke || emitted == total_needed {
            debug_assert!(
                broke || emitted == range.end - range.start,
                "shard emitted {emitted} of {range:?}"
            );
            return (emitted, broke);
        }
        // The innermost group wrapped: advance the outer odometer,
        // re-unranking only the groups whose digit changed.
        digits[last] = 0;
        let mut g = last;
        loop {
            if g == 0 {
                // The whole product is exhausted; only reachable when the
                // caller's range overshoots the space.
                return (emitted, broke);
            }
            g -= 1;
            digits[g] = (digits[g] + 1) % groups[g].size;
            let rgs = groups[g].unrank(&mut dps[g], digits[g]);
            groups[g].apply(&rgs, &mut variant.names);
            if digits[g] != 0 {
                break;
            }
        }
    }
}

impl ShardedEnumerator {
    /// Creates a sharded enumerator cutting the space into `shards` parts.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(config: EnumeratorConfig, shards: usize) -> ShardedEnumerator {
        assert!(shards > 0, "at least one shard is required");
        ShardedEnumerator { config, shards }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EnumeratorConfig {
        &self.config
    }

    /// Number of shards the space is cut into.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The emission-index ranges of each shard for this skeleton:
    /// `shards()` contiguous, disjoint ranges exactly covering
    /// `[0, total)`, sized within one variant of each other. Ranges can be
    /// empty when the space is smaller than the shard count.
    ///
    /// Materializes the variant space to size it; callers that also
    /// stream shards should [`prepare`](Self::prepare) once and use
    /// [`shard_ranges_prepared`](Self::shard_ranges_prepared) instead of
    /// paying materialization again here.
    pub fn shard_ranges(&self, sk: &Skeleton) -> Vec<Range<u64>> {
        self.shard_ranges_prepared(&self.prepare(sk))
    }

    /// [`shard_ranges`](Self::shard_ranges) for an already-prepared space
    /// (no re-materialization).
    pub fn shard_ranges_prepared(&self, space: &VariantSpace) -> Vec<Range<u64>> {
        self.ranges_for_total(space.total(self.config.budget))
    }

    /// Materializes the skeleton's variant space once, for repeated (or
    /// cross-thread) shard streaming without re-materializing per shard —
    /// the worker-pool entry point: prepare per file, then stream any
    /// shard from any thread via
    /// [`ShardedEnumerator::enumerate_shard_prepared`].
    ///
    /// For [`Algorithm::Canonical`] on qualifying skeletons (every type
    /// group within the 128-variable constraint-mask width and the
    /// counting-DP state limit — constrained and multi-group skeletons
    /// included) nothing is materialized: shards later enumerate their
    /// own slice natively, so preparation costs only the per-group
    /// exact counts, never the space size.
    pub fn prepare(&self, sk: &Skeleton) -> VariantSpace {
        if self.config.algorithm == Algorithm::Canonical {
            if let Some(native) = canonical_native_space(&self.config, sk) {
                // Same meaning as the materialized path's flag: the
                // budget cut some group's solution stream short.
                let truncated = native
                    .groups
                    .iter()
                    .any(|g| g.count > BigUint::from(g.size));
                return VariantSpace {
                    base: base_names(sk),
                    kind: SpaceKind::CanonicalNative(native),
                    truncated,
                };
            }
        }
        let (base, fragments, truncated) = materialize_fragments(&self.config, sk);
        VariantSpace {
            base,
            kind: SpaceKind::Product(fragments),
            truncated,
        }
    }

    /// Streams one shard of an already-[`prepare`](Self::prepare)d space,
    /// with the same contract as [`ShardedEnumerator::enumerate_shard`].
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shards()`.
    pub fn enumerate_shard_prepared<F>(
        &self,
        space: &VariantSpace,
        shard: usize,
        visit: &mut F,
    ) -> EnumerationOutcome
    where
        F: FnMut(&Variant) -> ControlFlow<()>,
    {
        assert!(shard < self.shards, "shard {shard} out of {}", self.shards);
        let mut truncated = space.truncated;
        let total = space.total_with(self.config.budget, &mut truncated);
        let range = self.ranges_for_total(total).swap_remove(shard);
        let (emitted, broke) = space.stream_range(range, None, visit);
        EnumerationOutcome {
            emitted,
            truncated: truncated || broke,
        }
    }

    /// Streams one shard of a prepared space **starting `skip` variants
    /// past the shard's lower boundary** — the checkpoint-resume entry
    /// point (`spe_harness::checkpoint`, `DESIGN.md` §9): a worker that
    /// recorded an emission-index high-water mark re-seeds the shard here
    /// via the same exact unranking `skip_to` machinery shard starts use
    /// (mixed-radix odometer decomposition, closed-form or DP RGS
    /// unranking), so nothing before the mark is re-enumerated.
    ///
    /// Variants and their global emission indices are byte-identical to
    /// the tail of [`enumerate_shard_prepared`](Self::enumerate_shard_prepared)
    /// after its first `skip` variants; `skip >=` the shard size streams
    /// nothing. `emitted` counts only the variants streamed by this call.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shards()`.
    pub fn enumerate_shard_resumed_prepared<F>(
        &self,
        space: &VariantSpace,
        shard: usize,
        skip: u64,
        visit: &mut F,
    ) -> EnumerationOutcome
    where
        F: FnMut(&Variant) -> ControlFlow<()>,
    {
        assert!(shard < self.shards, "shard {shard} out of {}", self.shards);
        let mut truncated = space.truncated;
        let total = space.total_with(self.config.budget, &mut truncated);
        let range = self.ranges_for_total(total).swap_remove(shard);
        let start = range.start.saturating_add(skip).min(range.end);
        let (emitted, broke) = space.stream_range(start..range.end, None, visit);
        EnumerationOutcome {
            emitted,
            truncated: truncated || broke,
        }
    }

    fn ranges_for_total(&self, total: u64) -> Vec<Range<u64>> {
        let k = self.shards as u128;
        let cut = |i: u128| (total as u128 * i / k) as u64;
        (0..self.shards as u128)
            .map(|i| cut(i)..cut(i + 1))
            .collect()
    }

    /// Streams one shard serially through `visit` — the resumption entry
    /// point for external worker pools (each worker picks a shard index
    /// and enumerates only that slice). `emitted` counts this shard's
    /// variants; `truncated` reports the global budget cut or an early
    /// break, exactly as for [`Enumerator::enumerate`].
    ///
    /// Convenience that materializes the space per call: a pool running
    /// several shards of one skeleton should [`prepare`](Self::prepare)
    /// once and call
    /// [`enumerate_shard_prepared`](Self::enumerate_shard_prepared) per
    /// shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shards()`.
    pub fn enumerate_shard<F>(
        &self,
        sk: &Skeleton,
        shard: usize,
        visit: &mut F,
    ) -> EnumerationOutcome
    where
        F: FnMut(&Variant) -> ControlFlow<()>,
    {
        self.enumerate_shard_prepared(&self.prepare(sk), shard, visit)
    }

    /// Enumerates the whole space with one thread per shard.
    ///
    /// `visit` observes every variant exactly once, with globally stable
    /// indices, but *interleaved across shards* — callers needing serial
    /// order should order by [`Variant::index`] (or use
    /// [`ShardedEnumerator::collect_sources`], which merges for free).
    /// `emitted` is the total across shards. A [`ControlFlow::Break`] from
    /// any shard raises a shared stop flag that halts the others at their
    /// next variant; unlike the serial enumerator, variants already in
    /// flight on sibling threads may still be visited.
    pub fn enumerate<F>(&self, sk: &Skeleton, visit: &F) -> EnumerationOutcome
    where
        F: Fn(&Variant) -> ControlFlow<()> + Sync,
    {
        let space = self.prepare(sk);
        let mut truncated = space.truncated;
        let total = space.total_with(self.config.budget, &mut truncated);
        if self.shards == 1 || total <= 1 {
            let (emitted, broke) = space.stream_range(0..total, None, &mut |v| visit(v));
            return EnumerationOutcome {
                emitted,
                truncated: truncated || broke,
            };
        }
        let stop = AtomicBool::new(false);
        let space = &space;
        let stop_ref = &stop;
        let mut emitted = 0u64;
        let mut broke = false;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .ranges_for_total(total)
                .into_iter()
                .map(|range| {
                    scope.spawn(move || {
                        space.stream_range(range, Some(stop_ref), &mut |v| visit(v))
                    })
                })
                .collect();
            for handle in handles {
                let (shard_emitted, shard_broke) = handle.join().expect("shard worker panicked");
                emitted += shard_emitted;
                broke |= shard_broke;
            }
        });
        EnumerationOutcome {
            emitted,
            truncated: truncated || broke,
        }
    }

    /// Collects realized variant sources using all shards in parallel and
    /// merges them in shard order — byte-identical to the serial
    /// [`Enumerator::collect_sources`]. Each worker renders through one
    /// reusable buffer.
    pub fn collect_sources(&self, sk: &Skeleton) -> Vec<String> {
        let space = self.prepare(sk);
        let mut truncated = space.truncated;
        let total = space.total_with(self.config.budget, &mut truncated);
        let space = &space;
        let ranges = self.ranges_for_total(total);
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| {
                    scope.spawn(move || {
                        let mut out = Vec::with_capacity((range.end - range.start) as usize);
                        space.stream_range(range, None, &mut |v| {
                            out.push(v.source(sk));
                            ControlFlow::Continue(())
                        });
                        out
                    })
                })
                .collect();
            let mut merged = Vec::with_capacity(total as usize);
            for handle in handles {
                merged.extend(handle.join().expect("shard worker panicked"));
            }
            merged
        })
    }
}

/// Closed-form count of the paper's enumeration for a whole skeleton: the
/// product of `paper_count` over all units and type groups.
///
/// ```
/// use spe_core::{spe_count, Granularity, Skeleton};
/// let sk = Skeleton::from_source("int a, b; void f() { a = b; b = a; a = a; }").unwrap();
/// // 6 holes over 2 global variables: {6 1} + {6 2} = 32.
/// assert_eq!(spe_count(&sk, Granularity::Intra).to_u64(), Some(32));
/// ```
pub fn spe_count(sk: &Skeleton, granularity: Granularity) -> BigUint {
    let mut acc = BigUint::one();
    for u in sk.units(granularity) {
        for g in &u.groups {
            acc *= &spe_combinatorics::paper_count(&g.flat);
        }
    }
    acc
}

/// Closed-form count of the naive enumeration (§3.1): `∏_i |v_i|` over all
/// holes.
///
/// ```
/// use spe_core::{naive_count, Granularity, Skeleton};
/// let sk = Skeleton::from_source("int a, b; void f() { a = b; }").unwrap();
/// assert_eq!(naive_count(&sk, Granularity::Intra).to_u64(), Some(4));
/// ```
pub fn naive_count(sk: &Skeleton, granularity: Granularity) -> BigUint {
    let mut acc = BigUint::one();
    for u in sk.units(granularity) {
        for g in &u.groups {
            acc *= &g.general.naive_count();
        }
    }
    acc
}

/// Count of canonical (valid-partition) variants, computed by capped
/// enumeration. Returns `(count, exceeded)` where `exceeded` means the
/// cap was hit and the count is a lower bound.
pub fn canonical_count_capped(
    sk: &Skeleton,
    granularity: Granularity,
    cap: usize,
) -> (BigUint, bool) {
    let mut acc = BigUint::one();
    let mut exceeded = false;
    for u in sk.units(granularity) {
        for g in &u.groups {
            let (sols, truncated) = canonical_solutions(&g.general, cap);
            exceeded |= truncated;
            acc *= &BigUint::from(sols.len());
        }
    }
    (acc, exceeded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> Skeleton {
        Skeleton::from_source("int main() { int a, b = 1; b = b - a; if (a) a = a - b; return 0; }")
            .expect("builds")
    }

    #[test]
    fn figure1_counts() {
        let sk = fig1();
        assert_eq!(naive_count(&sk, Granularity::Intra).to_u64(), Some(128));
        assert_eq!(spe_count(&sk, Granularity::Intra).to_u64(), Some(64));
    }

    #[test]
    fn enumeration_matches_closed_form() {
        let sk = fig1();
        let e = Enumerator::new(EnumeratorConfig::default());
        let outcome = e.enumerate(&sk, &mut |_| ControlFlow::Continue(()));
        assert_eq!(outcome.emitted, 64);
        assert!(!outcome.truncated);
    }

    #[test]
    fn naive_enumeration_matches_naive_count() {
        let sk = fig1();
        let e = Enumerator::new(EnumeratorConfig {
            algorithm: Algorithm::Naive,
            ..Default::default()
        });
        let outcome = e.enumerate(&sk, &mut |_| ControlFlow::Continue(()));
        assert_eq!(outcome.emitted, 128);
    }

    #[test]
    fn all_variants_parse_and_are_distinct() {
        let sk = fig1();
        for algorithm in [
            Algorithm::Paper,
            Algorithm::Canonical,
            Algorithm::Orbit,
            Algorithm::Naive,
        ] {
            let e = Enumerator::new(EnumeratorConfig {
                algorithm,
                ..Default::default()
            });
            let sources = e.collect_sources(&sk);
            let mut seen = std::collections::HashSet::new();
            for s in &sources {
                Skeleton::from_source(s)
                    .unwrap_or_else(|err| panic!("{algorithm:?} emitted invalid code: {err}\n{s}"));
                assert!(seen.insert(s.clone()), "{algorithm:?} duplicate:\n{s}");
            }
        }
    }

    #[test]
    fn algorithm_ordering_on_single_scope() {
        // With a single (global) scope all three reduced enumerators
        // agree.
        let sk = fig1();
        let count = |a: Algorithm| {
            Enumerator::new(EnumeratorConfig {
                algorithm: a,
                ..Default::default()
            })
            .enumerate(&sk, &mut |_| ControlFlow::Continue(()))
            .emitted
        };
        assert_eq!(count(Algorithm::Paper), 64);
        assert_eq!(count(Algorithm::Canonical), 64);
        assert_eq!(count(Algorithm::Orbit), 64);
        assert_eq!(count(Algorithm::Naive), 128);
    }

    #[test]
    fn scoped_program_algorithm_relations() {
        // Figure 6-like program: canonical <= paper <= orbit <= naive.
        let sk = Skeleton::from_source(
            r#"
            int main() {
                int a = 1, b = 0;
                if (a) {
                    int c = 3, d = 5;
                    b = c + d;
                }
                printf("%d", a);
                printf("%d", b);
                return 0;
            }
            "#,
        )
        .expect("builds");
        let count = |a: Algorithm| {
            Enumerator::new(EnumeratorConfig {
                algorithm: a,
                budget: 1_000_000,
                ..Default::default()
            })
            .enumerate(&sk, &mut |_| ControlFlow::Continue(()))
            .emitted
        };
        let (c, p, o, n) = (
            count(Algorithm::Canonical),
            count(Algorithm::Paper),
            count(Algorithm::Orbit),
            count(Algorithm::Naive),
        );
        assert!(c <= p, "canonical {c} <= paper {p}");
        assert!(p <= o, "paper {p} <= orbit {o}");
        assert!(o <= n, "orbit {o} <= naive {n}");
        // Holes: a(if), b(lhs), c, d, a(printf), b(printf) with allowed
        // sizes 2, 4, 4, 4, 2, 2 -> naive = 2^3 · 4^3 = 512.
        assert_eq!(n, 512);
    }

    #[test]
    fn budget_truncates_product() {
        let sk = fig1();
        let e = Enumerator::new(EnumeratorConfig {
            budget: 10,
            ..Default::default()
        });
        let outcome = e.enumerate(&sk, &mut |_| ControlFlow::Continue(()));
        assert_eq!(outcome.emitted, 10);
        assert!(outcome.truncated);
    }

    #[test]
    fn visitor_break_stops_early() {
        let sk = fig1();
        let e = Enumerator::new(EnumeratorConfig::default());
        let mut n = 0;
        let outcome = e.enumerate(&sk, &mut |_| {
            n += 1;
            if n == 3 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(outcome.emitted, 3);
        assert!(outcome.truncated);
    }

    #[test]
    fn multi_function_product() {
        let sk = Skeleton::from_source("int g, h; void f() { g = h; } void k() { h = g; }")
            .expect("builds");
        // Each function: 2 holes over 2 globals -> {2 1} + {2 2} = 2; the
        // intra product is 4.
        assert_eq!(spe_count(&sk, Granularity::Intra).to_u64(), Some(4));
        // Inter: all 4 holes in one unit -> {4 1} + {4 2} = 8.
        assert_eq!(spe_count(&sk, Granularity::Inter).to_u64(), Some(8));
        let e = Enumerator::new(EnumeratorConfig::default());
        assert_eq!(e.collect_sources(&sk).len(), 4);
    }

    #[test]
    fn multi_type_product() {
        let sk = Skeleton::from_source("int a, b; double x, y; void f() { a = b; x = y; }")
            .expect("builds");
        // Each type group: 2 holes over 2 vars -> 2; product 4.
        assert_eq!(spe_count(&sk, Granularity::Intra).to_u64(), Some(4));
    }

    #[test]
    fn canonical_capped_count() {
        let sk = fig1();
        let (count, exceeded) = canonical_count_capped(&sk, Granularity::Intra, 10_000);
        assert_eq!(count.to_u64(), Some(64));
        assert!(!exceeded);
        let (count, exceeded) = canonical_count_capped(&sk, Granularity::Intra, 10);
        assert_eq!(count.to_u64(), Some(10));
        assert!(exceeded);
    }

    #[test]
    fn original_program_is_among_naive_variants() {
        // The naive enumeration contains the identity filling verbatim.
        let sk = fig1();
        let original = sk.source();
        let e = Enumerator::new(EnumeratorConfig {
            algorithm: Algorithm::Naive,
            ..Default::default()
        });
        let sources = e.collect_sources(&sk);
        assert!(
            sources.contains(&original),
            "the identity filling must be enumerated"
        );
    }

    /// Serial reference: (index, source) pairs in emission order.
    fn serial_sequence(sk: &Skeleton, config: EnumeratorConfig) -> Vec<(u64, String)> {
        let mut out = Vec::new();
        Enumerator::new(config).enumerate(sk, &mut |v| {
            out.push((v.index, v.source(sk)));
            ControlFlow::Continue(())
        });
        out
    }

    fn fig6() -> Skeleton {
        Skeleton::from_source(
            r#"
            int main() {
                int a = 1, b = 0;
                if (a) {
                    int c = 3, d = 5;
                    b = c + d;
                }
                printf("%d", a);
                printf("%d", b);
                return 0;
            }
            "#,
        )
        .expect("builds")
    }

    #[test]
    fn shard_union_is_exactly_the_serial_sequence_for_every_algorithm() {
        // The union of all shards must enumerate exactly the serial
        // sequence — no duplicates, no gaps — for every Algorithm variant
        // and several shard counts, on both a flat and a scoped skeleton.
        for sk in [fig1(), fig6()] {
            for algorithm in [
                Algorithm::Paper,
                Algorithm::Canonical,
                Algorithm::Orbit,
                Algorithm::Naive,
            ] {
                let config = EnumeratorConfig {
                    algorithm,
                    budget: 1_000_000,
                    ..Default::default()
                };
                let serial = serial_sequence(&sk, config);
                for shards in [1usize, 2, 3, 4, 7, 8] {
                    let sharded = ShardedEnumerator::new(config, shards);
                    let space = sharded.prepare(&sk);
                    let mut union: Vec<(u64, String)> = Vec::new();
                    for shard in 0..shards {
                        sharded.enumerate_shard_prepared(&space, shard, &mut |v| {
                            union.push((v.index, v.source(&sk)));
                            ControlFlow::Continue(())
                        });
                    }
                    assert_eq!(
                        union, serial,
                        "{algorithm:?} with {shards} shards diverged from serial"
                    );
                }
            }
        }
    }

    #[test]
    fn shard_ranges_cover_the_space_without_overlap() {
        let sk = fig1();
        for shards in 1..=9usize {
            let e = ShardedEnumerator::new(EnumeratorConfig::default(), shards);
            let ranges = e.shard_ranges(&sk);
            assert_eq!(ranges.len(), shards);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges[ranges.len() - 1].end, 64);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "gap or overlap at {w:?}");
            }
            // Near-even: sizes differ by at most one variant.
            let sizes: Vec<u64> = ranges.iter().map(|r| r.end - r.start).collect();
            let min = sizes.iter().min().expect("non-empty");
            let max = sizes.iter().max().expect("non-empty");
            assert!(max - min <= 1, "uneven shard sizes {sizes:?}");
        }
    }

    #[test]
    fn parallel_enumerate_visits_every_variant_once() {
        use std::sync::Mutex;
        let sk = fig6();
        let config = EnumeratorConfig {
            budget: 1_000_000,
            ..Default::default()
        };
        let serial = serial_sequence(&sk, config);
        let seen = Mutex::new(Vec::new());
        let outcome = ShardedEnumerator::new(config, 4).enumerate(&sk, &|v| {
            seen.lock()
                .expect("poisoned")
                .push((v.index, v.source(&sk)));
            ControlFlow::Continue(())
        });
        let mut seen = seen.into_inner().expect("poisoned");
        seen.sort();
        assert_eq!(seen, serial);
        assert_eq!(outcome.emitted, serial.len() as u64);
        assert!(!outcome.truncated);
    }

    #[test]
    fn sharded_collect_sources_is_byte_identical_to_serial() {
        for sk in [fig1(), fig6()] {
            let serial = Enumerator::new(EnumeratorConfig::default()).collect_sources(&sk);
            for shards in [2usize, 4, 8] {
                let merged = ShardedEnumerator::new(EnumeratorConfig::default(), shards)
                    .collect_sources(&sk);
                assert_eq!(serial, merged, "{shards} shards");
            }
        }
    }

    #[test]
    fn sharded_budget_truncation_matches_serial() {
        let sk = fig1();
        let config = EnumeratorConfig {
            budget: 10,
            ..Default::default()
        };
        let serial = Enumerator::new(config).collect_sources(&sk);
        assert_eq!(serial.len(), 10);
        let sharded = ShardedEnumerator::new(config, 4);
        assert_eq!(sharded.collect_sources(&sk), serial);
        let outcome = sharded.enumerate(&sk, &|_| ControlFlow::Continue(()));
        assert_eq!(outcome.emitted, 10);
        assert!(outcome.truncated);
    }

    #[test]
    fn parallel_break_stops_all_shards() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sk = fig6();
        let config = EnumeratorConfig {
            budget: 1_000_000,
            ..Default::default()
        };
        let count = AtomicU64::new(0);
        let outcome = ShardedEnumerator::new(config, 4).enumerate(&sk, &|_| {
            if count.fetch_add(1, Ordering::Relaxed) >= 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert!(outcome.truncated);
        // Every shard halts promptly: nothing close to the full space runs.
        let total = Enumerator::new(config)
            .enumerate(&sk, &mut |_| ControlFlow::Continue(()))
            .emitted;
        assert!(
            outcome.emitted < total,
            "break did not stop shards ({} of {total})",
            outcome.emitted
        );
    }

    #[test]
    fn canonical_native_shards_match_serial_on_a_bell_space() {
        // Five same-type function-top locals, every hole seeing all five:
        // the shard-native canonical path applies (single unconstrained
        // group, Bell-number space) and must be byte-identical to the
        // serial (fully materialized) enumerator, per shard and merged.
        let sk = Skeleton::from_source(
            "int main() { int a, b, c, d, e; a = b + c; d = e + a; b = c + d; e = a; return 0; }",
        )
        .expect("builds");
        let config = EnumeratorConfig {
            algorithm: Algorithm::Canonical,
            budget: 1_000_000,
            ..Default::default()
        };
        let serial = serial_sequence(&sk, config);
        assert!(serial.len() > 100, "space large enough to matter");
        for shards in [2usize, 3, 5, 8] {
            let sharded = ShardedEnumerator::new(config, shards);
            let space = sharded.prepare(&sk);
            let mut union: Vec<(u64, String)> = Vec::new();
            for shard in 0..shards {
                sharded.enumerate_shard_prepared(&space, shard, &mut |v| {
                    union.push((v.index, v.source(&sk)));
                    ControlFlow::Continue(())
                });
            }
            assert_eq!(union, serial, "{shards} shards diverged");
        }
    }

    #[test]
    fn canonical_native_budget_truncation_matches_serial() {
        // The native path must clamp to the budget exactly where the
        // materialized serial path does.
        let sk = fig1();
        for budget in [1usize, 7, 10, 63, 64, 100] {
            let config = EnumeratorConfig {
                algorithm: Algorithm::Canonical,
                budget,
                ..Default::default()
            };
            let serial = Enumerator::new(config).collect_sources(&sk);
            let sharded = ShardedEnumerator::new(config, 4);
            assert_eq!(sharded.collect_sources(&sk), serial, "budget {budget}");
            assert_eq!(
                sharded.prepare(&sk).truncated(),
                budget < 64,
                "budget {budget}"
            );
            let outcome = sharded.enumerate(&sk, &|_| ControlFlow::Continue(()));
            assert_eq!(outcome.emitted, serial.len() as u64);
            assert_eq!(outcome.truncated, budget < 64, "budget {budget}");
        }
    }

    /// A constrained, multi-group skeleton: two functions, two types,
    /// nested scopes and declaration-order effects — three type groups,
    /// two of them constrained. This is the regime the materialized
    /// fallback used to own.
    fn constrained_multi_group() -> Skeleton {
        Skeleton::from_source(
            r#"
            int g;
            int main() {
                int a = 1, b = 0;
                double x, y;
                if (a) {
                    int c;
                    c = a + b;
                    x = y;
                }
                g = b;
                return 0;
            }
            void helper() {
                int u, v;
                u = v + g;
            }
            "#,
        )
        .expect("builds")
    }

    #[test]
    fn constrained_multi_group_takes_the_native_path() {
        let sk = constrained_multi_group();
        let config = EnumeratorConfig {
            algorithm: Algorithm::Canonical,
            budget: 1_000_000,
            ..Default::default()
        };
        let space = ShardedEnumerator::new(config, 4).prepare(&sk);
        assert!(
            space.is_shard_native(),
            "the constrained gate must engage — no solution list materialized"
        );
        // Sanity: the skeleton really is constrained and multi-group.
        let units = sk.units(Granularity::Intra);
        let groups: Vec<_> = units.iter().flat_map(|u| u.groups.iter()).collect();
        assert!(groups.len() >= 3, "got {} groups", groups.len());
        assert!(
            groups.iter().any(|g| !g.is_unconstrained()),
            "at least one group must be constrained"
        );
    }

    #[test]
    fn constrained_native_shards_are_byte_identical_to_serial() {
        // The serial Enumerator is the materialized path, so this pins
        // the native walk against both the materialized product and
        // serial enumeration at once.
        let sk = constrained_multi_group();
        let config = EnumeratorConfig {
            algorithm: Algorithm::Canonical,
            budget: 1_000_000,
            ..Default::default()
        };
        let serial = serial_sequence(&sk, config);
        assert!(serial.len() > 100, "space large enough to matter");
        for shards in [1usize, 2, 4, 8, 16] {
            let sharded = ShardedEnumerator::new(config, shards);
            let space = sharded.prepare(&sk);
            assert!(space.is_shard_native());
            let mut union: Vec<(u64, String)> = Vec::new();
            for shard in 0..shards {
                sharded.enumerate_shard_prepared(&space, shard, &mut |v| {
                    union.push((v.index, v.source(&sk)));
                    ControlFlow::Continue(())
                });
            }
            assert_eq!(union, serial, "{shards} shards diverged");
        }
    }

    #[test]
    fn constrained_native_budget_truncation_matches_serial() {
        // Budgets below a single group's count (per-group truncation),
        // between group counts and product, and above the product must
        // all clamp the native walk exactly where the materialized
        // serial path clamps.
        let sk = constrained_multi_group();
        let full = Enumerator::new(EnumeratorConfig {
            algorithm: Algorithm::Canonical,
            budget: 1_000_000,
            ..Default::default()
        })
        .collect_sources(&sk)
        .len();
        assert!(full > 100 && full < 10_000, "untruncated space, got {full}");
        for budget in [1usize, 2, 5, 10, 33, 100, full - 1, full, full + 7] {
            let config = EnumeratorConfig {
                algorithm: Algorithm::Canonical,
                budget,
                ..Default::default()
            };
            let serial = Enumerator::new(config).collect_sources(&sk);
            for shards in [2usize, 4, 8] {
                let sharded = ShardedEnumerator::new(config, shards);
                assert!(sharded.prepare(&sk).is_shard_native());
                assert_eq!(
                    sharded.collect_sources(&sk),
                    serial,
                    "budget {budget}, {shards} shards"
                );
                let outcome = sharded.enumerate(&sk, &|_| ControlFlow::Continue(()));
                assert_eq!(outcome.emitted, serial.len() as u64, "budget {budget}");
                assert_eq!(outcome.truncated, budget < full, "budget {budget}");
            }
        }
    }

    #[test]
    fn pathological_constraint_structures_fall_back_to_materialization() {
        // Dozens of interleaved declaration-order prefixes give every
        // hole a distinct allowed set; the exact-counting DP's state
        // space explodes while budget-capped materialized enumeration
        // stays cheap. The gate must detect this and fall back — and
        // the fallback must still be byte-identical across shards.
        let mut body = String::new();
        for i in 0..24 {
            body.push_str(&format!("int v{i}; v{i} = {i};\n"));
        }
        for i in 1..24 {
            body.push_str(&format!("v{i} = v{i} + v{};\n", i - 1));
        }
        let sk = Skeleton::from_source(&format!("void f() {{\n{body}}}\n")).expect("builds");
        let config = EnumeratorConfig {
            algorithm: Algorithm::Canonical,
            budget: 200,
            ..Default::default()
        };
        let start = std::time::Instant::now();
        let sharded = ShardedEnumerator::new(config, 4);
        let space = sharded.prepare(&sk);
        assert!(
            !space.is_shard_native(),
            "the gate must refuse DP-hostile instances"
        );
        let serial = Enumerator::new(config).collect_sources(&sk);
        assert_eq!(serial.len(), 200, "budget-capped");
        assert_eq!(sharded.collect_sources(&sk), serial);
        // Both prepare-and-refuse and the fallback must stay far from
        // the uncapped DP's runtime (tens of seconds).
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "fallback took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn resumed_shard_stream_is_the_tail_of_the_full_shard() {
        // The checkpoint-resume entry point must reproduce exactly the
        // suffix of each shard — same sources, same global emission
        // indices — for every skip offset, on materialized and
        // shard-native spaces alike.
        for (sk, algorithm) in [
            (fig1(), Algorithm::Paper),
            (fig6(), Algorithm::Naive),
            (constrained_multi_group(), Algorithm::Canonical),
        ] {
            let config = EnumeratorConfig {
                algorithm,
                budget: 1_000_000,
                ..Default::default()
            };
            let sharded = ShardedEnumerator::new(config, 4);
            let space = sharded.prepare(&sk);
            for shard in 0..4 {
                let mut full: Vec<(u64, String)> = Vec::new();
                sharded.enumerate_shard_prepared(&space, shard, &mut |v| {
                    full.push((v.index, v.source(&sk)));
                    ControlFlow::Continue(())
                });
                for skip in [0usize, 1, full.len() / 2, full.len().saturating_sub(1), full.len(), full.len() + 5] {
                    let mut resumed: Vec<(u64, String)> = Vec::new();
                    let outcome = sharded.enumerate_shard_resumed_prepared(
                        &space,
                        shard,
                        skip as u64,
                        &mut |v| {
                            resumed.push((v.index, v.source(&sk)));
                            ControlFlow::Continue(())
                        },
                    );
                    assert_eq!(
                        resumed,
                        full[skip.min(full.len())..],
                        "{algorithm:?} shard {shard} skip {skip}"
                    );
                    assert_eq!(outcome.emitted, resumed.len() as u64);
                }
            }
        }
    }

    #[test]
    fn more_shards_than_variants_still_covers_exactly() {
        let sk = Skeleton::from_source("int a, b; void f() { a = b; }").expect("builds");
        let serial = Enumerator::new(EnumeratorConfig::default()).collect_sources(&sk);
        let merged = ShardedEnumerator::new(EnumeratorConfig::default(), 16).collect_sources(&sk);
        assert_eq!(serial, merged);
    }

    #[test]
    fn original_alpha_class_is_among_paper_variants() {
        // The paper enumeration emits canonical representatives: the
        // original program appears up to α-renaming (same RGS over its
        // holes), not necessarily verbatim.
        let sk = fig1();
        let original_rgs = {
            let labels: Vec<usize> = sk.holes().iter().map(|h| h.var.0).collect();
            spe_combinatorics::labels_to_rgs(&labels)
        };
        let e = Enumerator::new(EnumeratorConfig::default());
        let mut found = false;
        e.enumerate(&sk, &mut |v| {
            let src = v.source(&sk);
            let re = Skeleton::from_source(&src).expect("variant parses");
            let labels: Vec<usize> = re.holes().iter().map(|h| h.var.0).collect();
            if spe_combinatorics::labels_to_rgs(&labels) == original_rgs {
                found = true;
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
        assert!(found, "no variant is α-equivalent to the original");
    }
}
