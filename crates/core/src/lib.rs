//! Skeletal program enumeration — the core public API.
//!
//! This crate is the paper's primary contribution as a library: given a
//! program, enumerate (or count) all non-α-equivalent variable-usage
//! variants of its skeleton.
//!
//! * [`Enumerator`] drives enumeration over a [`Skeleton`] with a chosen
//!   [`Algorithm`], [`Granularity`] and per-skeleton variant budget (the
//!   paper uses a 10,000-variant threshold in §5.2.1);
//! * [`spe_count`] / [`naive_count`] are the closed-form counting
//!   counterparts used for the search-space-reduction results (Table 1);
//! * [`Variant`]s carry the use-site rename map and realize to compilable
//!   source on demand.
//!
//! # Quick start
//!
//! ```
//! use spe_core::{Enumerator, EnumeratorConfig, Algorithm, Granularity, Skeleton};
//!
//! let sk = Skeleton::from_source(
//!     "int main() { int a, b = 1; b = b - a; if (a) a = a - b; return 0; }",
//! )?;
//! // Figure 1: 2^7 = 128 naive fillings, 64 non-α-equivalent.
//! assert_eq!(spe_core::naive_count(&sk, Granularity::Intra).to_u64(), Some(128));
//! assert_eq!(spe_core::spe_count(&sk, Granularity::Intra).to_u64(), Some(64));
//!
//! let e = Enumerator::new(EnumeratorConfig::default());
//! let variants = e.collect_sources(&sk);
//! assert_eq!(variants.len(), 64);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use spe_bignum::BigUint;
use spe_combinatorics::{
    canonical_solutions, orbit_solutions, paper_solutions, Fillings,
};
use spe_minic::ast::OccId;
pub use spe_skeleton::{Granularity, Skeleton, SkeletonError, TypeGroup, Unit};
use std::collections::HashMap;
use std::ops::ControlFlow;

/// Which enumeration semantics to use. See `DESIGN.md` §2 for the
/// relationship between the three non-naive variants (on the paper's
/// Example 6 they produce 36, 35 and 40 solutions respectively; they all
/// coincide with Bell-number enumeration when every variable is global).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// Algorithm 1 + `PartitionScope`, verbatim from the paper. Used for
    /// all experiment reproductions.
    #[default]
    Paper,
    /// One representative per *valid partition* — duplicate-free and
    /// exhaustive w.r.t. dependence structure.
    Canonical,
    /// One representative per strict compact-α-renaming class.
    Orbit,
    /// The full Cartesian product of fillings (§3.1) — the baseline.
    Naive,
}

/// Enumerator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumeratorConfig {
    /// Enumeration semantics.
    pub algorithm: Algorithm,
    /// Intra- or inter-procedural units (§4.3).
    pub granularity: Granularity,
    /// Maximum number of variants emitted per skeleton; the paper's
    /// threshold is 10,000.
    pub budget: usize,
}

impl Default for EnumeratorConfig {
    fn default() -> Self {
        EnumeratorConfig {
            algorithm: Algorithm::Paper,
            granularity: Granularity::Intra,
            budget: 10_000,
        }
    }
}

/// One enumerated variant: a use-site renaming of the skeleton.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Sequential index in emission order.
    pub index: u64,
    /// The use-site rename map (merged across all units and type groups).
    pub rename: HashMap<OccId, String>,
}

impl Variant {
    /// Realizes the variant as source text.
    pub fn source(&self, sk: &Skeleton) -> String {
        sk.realize(&self.rename)
    }
}

/// Outcome of an enumeration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerationOutcome {
    /// Variants emitted.
    pub emitted: u64,
    /// Whether the budget cut the enumeration short.
    pub truncated: bool,
}

/// The SPE enumerator.
#[derive(Debug, Clone, Default)]
pub struct Enumerator {
    config: EnumeratorConfig,
}

impl Enumerator {
    /// Creates an enumerator with the given configuration.
    pub fn new(config: EnumeratorConfig) -> Enumerator {
        Enumerator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EnumeratorConfig {
        &self.config
    }

    /// Enumerates variants of `sk`, calling `visit` for each until the
    /// budget is reached or the visitor breaks.
    pub fn enumerate<F>(&self, sk: &Skeleton, visit: &mut F) -> EnumerationOutcome
    where
        F: FnMut(&Variant) -> ControlFlow<()>,
    {
        let units = sk.units(self.config.granularity);
        let groups: Vec<&TypeGroup> = units.iter().flat_map(|u| u.groups.iter()).collect();
        // Materialize per-group rename fragments, each capped by the
        // budget (if a single group exceeds it, the product does too).
        let mut truncated = false;
        let mut fragments: Vec<Vec<HashMap<OccId, String>>> = Vec::with_capacity(groups.len());
        for g in &groups {
            let (frags, t) = self.group_fragments(sk, g);
            truncated |= t;
            if frags.is_empty() {
                // A group with zero solutions never happens for
                // well-formed skeletons (each hole's original variable is
                // allowed), but guard anyway.
                return EnumerationOutcome {
                    emitted: 0,
                    truncated,
                };
            }
            fragments.push(frags);
        }
        // Odometer over the Cartesian product.
        let mut emitted = 0u64;
        let mut cursor = vec![0usize; fragments.len()];
        loop {
            if emitted as usize >= self.config.budget {
                truncated = true;
                break;
            }
            let mut rename = HashMap::new();
            for (g, &c) in fragments.iter().zip(&cursor) {
                for (k, v) in &g[c] {
                    rename.insert(*k, v.clone());
                }
            }
            let variant = Variant {
                index: emitted,
                rename,
            };
            emitted += 1;
            if visit(&variant).is_break() {
                return EnumerationOutcome {
                    emitted,
                    truncated: true,
                };
            }
            // Advance the odometer.
            let mut i = fragments.len();
            loop {
                if i == 0 {
                    return EnumerationOutcome { emitted, truncated };
                }
                i -= 1;
                cursor[i] += 1;
                if cursor[i] < fragments[i].len() {
                    break;
                }
                cursor[i] = 0;
            }
        }
        EnumerationOutcome { emitted, truncated }
    }

    fn group_fragments(
        &self,
        sk: &Skeleton,
        g: &TypeGroup,
    ) -> (Vec<HashMap<OccId, String>>, bool) {
        let budget = self.config.budget;
        match self.config.algorithm {
            Algorithm::Paper => {
                let (sols, truncated) = paper_solutions(&g.flat, budget);
                (
                    sols.iter().map(|s| sk.rename_for_solution(g, s)).collect(),
                    truncated,
                )
            }
            Algorithm::Orbit => {
                let (sols, truncated) = orbit_solutions(&g.flat, budget);
                (
                    sols.iter().map(|s| sk.rename_for_solution(g, s)).collect(),
                    truncated,
                )
            }
            Algorithm::Canonical => {
                let (rgss, truncated) = canonical_solutions(&g.general, budget);
                (
                    rgss.iter()
                        .filter_map(|r| sk.rename_for_rgs(g, r))
                        .collect(),
                    truncated,
                )
            }
            Algorithm::Naive => {
                let mut out = Vec::new();
                let mut truncated = false;
                for filling in Fillings::new(&g.general) {
                    if out.len() >= budget {
                        truncated = true;
                        break;
                    }
                    let mut rename = HashMap::new();
                    for (pos, &var_idx) in filling.iter().enumerate() {
                        let var = g.vars[var_idx];
                        let hole = &sk.holes()[g.holes[pos]];
                        rename.insert(hole.occ, sk.table().var(var).name.clone());
                    }
                    out.push(rename);
                }
                (out, truncated)
            }
        }
    }

    /// Convenience: collects realized variant sources (within budget).
    pub fn collect_sources(&self, sk: &Skeleton) -> Vec<String> {
        let mut out = Vec::new();
        self.enumerate(sk, &mut |v| {
            out.push(v.source(sk));
            ControlFlow::Continue(())
        });
        out
    }
}

/// Closed-form count of the paper's enumeration for a whole skeleton: the
/// product of `paper_count` over all units and type groups.
///
/// ```
/// use spe_core::{spe_count, Granularity, Skeleton};
/// let sk = Skeleton::from_source("int a, b; void f() { a = b; b = a; a = a; }").unwrap();
/// // 6 holes over 2 global variables: {6 1} + {6 2} = 32.
/// assert_eq!(spe_count(&sk, Granularity::Intra).to_u64(), Some(32));
/// ```
pub fn spe_count(sk: &Skeleton, granularity: Granularity) -> BigUint {
    let mut acc = BigUint::one();
    for u in sk.units(granularity) {
        for g in &u.groups {
            acc *= &spe_combinatorics::paper_count(&g.flat);
        }
    }
    acc
}

/// Closed-form count of the naive enumeration (§3.1): `∏_i |v_i|` over all
/// holes.
///
/// ```
/// use spe_core::{naive_count, Granularity, Skeleton};
/// let sk = Skeleton::from_source("int a, b; void f() { a = b; }").unwrap();
/// assert_eq!(naive_count(&sk, Granularity::Intra).to_u64(), Some(4));
/// ```
pub fn naive_count(sk: &Skeleton, granularity: Granularity) -> BigUint {
    let mut acc = BigUint::one();
    for u in sk.units(granularity) {
        for g in &u.groups {
            acc *= &g.general.naive_count();
        }
    }
    acc
}

/// Count of canonical (valid-partition) variants, computed by capped
/// enumeration. Returns `(count, exceeded)` where `exceeded` means the
/// cap was hit and the count is a lower bound.
pub fn canonical_count_capped(
    sk: &Skeleton,
    granularity: Granularity,
    cap: usize,
) -> (BigUint, bool) {
    let mut acc = BigUint::one();
    let mut exceeded = false;
    for u in sk.units(granularity) {
        for g in &u.groups {
            let (sols, truncated) = canonical_solutions(&g.general, cap);
            exceeded |= truncated;
            acc *= &BigUint::from(sols.len());
        }
    }
    (acc, exceeded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> Skeleton {
        Skeleton::from_source(
            "int main() { int a, b = 1; b = b - a; if (a) a = a - b; return 0; }",
        )
        .expect("builds")
    }

    #[test]
    fn figure1_counts() {
        let sk = fig1();
        assert_eq!(naive_count(&sk, Granularity::Intra).to_u64(), Some(128));
        assert_eq!(spe_count(&sk, Granularity::Intra).to_u64(), Some(64));
    }

    #[test]
    fn enumeration_matches_closed_form() {
        let sk = fig1();
        let e = Enumerator::new(EnumeratorConfig::default());
        let outcome = e.enumerate(&sk, &mut |_| ControlFlow::Continue(()));
        assert_eq!(outcome.emitted, 64);
        assert!(!outcome.truncated);
    }

    #[test]
    fn naive_enumeration_matches_naive_count() {
        let sk = fig1();
        let e = Enumerator::new(EnumeratorConfig {
            algorithm: Algorithm::Naive,
            ..Default::default()
        });
        let outcome = e.enumerate(&sk, &mut |_| ControlFlow::Continue(()));
        assert_eq!(outcome.emitted, 128);
    }

    #[test]
    fn all_variants_parse_and_are_distinct() {
        let sk = fig1();
        for algorithm in [
            Algorithm::Paper,
            Algorithm::Canonical,
            Algorithm::Orbit,
            Algorithm::Naive,
        ] {
            let e = Enumerator::new(EnumeratorConfig {
                algorithm,
                ..Default::default()
            });
            let sources = e.collect_sources(&sk);
            let mut seen = std::collections::HashSet::new();
            for s in &sources {
                Skeleton::from_source(s)
                    .unwrap_or_else(|err| panic!("{algorithm:?} emitted invalid code: {err}\n{s}"));
                assert!(seen.insert(s.clone()), "{algorithm:?} duplicate:\n{s}");
            }
        }
    }

    #[test]
    fn algorithm_ordering_on_single_scope() {
        // With a single (global) scope all three reduced enumerators
        // agree.
        let sk = fig1();
        let count = |a: Algorithm| {
            Enumerator::new(EnumeratorConfig {
                algorithm: a,
                ..Default::default()
            })
            .enumerate(&sk, &mut |_| ControlFlow::Continue(()))
            .emitted
        };
        assert_eq!(count(Algorithm::Paper), 64);
        assert_eq!(count(Algorithm::Canonical), 64);
        assert_eq!(count(Algorithm::Orbit), 64);
        assert_eq!(count(Algorithm::Naive), 128);
    }

    #[test]
    fn scoped_program_algorithm_relations() {
        // Figure 6-like program: canonical <= paper <= orbit <= naive.
        let sk = Skeleton::from_source(
            r#"
            int main() {
                int a = 1, b = 0;
                if (a) {
                    int c = 3, d = 5;
                    b = c + d;
                }
                printf("%d", a);
                printf("%d", b);
                return 0;
            }
            "#,
        )
        .expect("builds");
        let count = |a: Algorithm| {
            Enumerator::new(EnumeratorConfig {
                algorithm: a,
                budget: 1_000_000,
                ..Default::default()
            })
            .enumerate(&sk, &mut |_| ControlFlow::Continue(()))
            .emitted
        };
        let (c, p, o, n) = (
            count(Algorithm::Canonical),
            count(Algorithm::Paper),
            count(Algorithm::Orbit),
            count(Algorithm::Naive),
        );
        assert!(c <= p, "canonical {c} <= paper {p}");
        assert!(p <= o, "paper {p} <= orbit {o}");
        assert!(o <= n, "orbit {o} <= naive {n}");
        // Holes: a(if), b(lhs), c, d, a(printf), b(printf) with allowed
        // sizes 2, 4, 4, 4, 2, 2 -> naive = 2^3 · 4^3 = 512.
        assert_eq!(n, 512);
    }

    #[test]
    fn budget_truncates_product() {
        let sk = fig1();
        let e = Enumerator::new(EnumeratorConfig {
            budget: 10,
            ..Default::default()
        });
        let outcome = e.enumerate(&sk, &mut |_| ControlFlow::Continue(()));
        assert_eq!(outcome.emitted, 10);
        assert!(outcome.truncated);
    }

    #[test]
    fn visitor_break_stops_early() {
        let sk = fig1();
        let e = Enumerator::new(EnumeratorConfig::default());
        let mut n = 0;
        let outcome = e.enumerate(&sk, &mut |_| {
            n += 1;
            if n == 3 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(outcome.emitted, 3);
        assert!(outcome.truncated);
    }

    #[test]
    fn multi_function_product() {
        let sk = Skeleton::from_source(
            "int g, h; void f() { g = h; } void k() { h = g; }",
        )
        .expect("builds");
        // Each function: 2 holes over 2 globals -> {2 1} + {2 2} = 2; the
        // intra product is 4.
        assert_eq!(spe_count(&sk, Granularity::Intra).to_u64(), Some(4));
        // Inter: all 4 holes in one unit -> {4 1} + {4 2} = 8.
        assert_eq!(spe_count(&sk, Granularity::Inter).to_u64(), Some(8));
        let e = Enumerator::new(EnumeratorConfig::default());
        assert_eq!(e.collect_sources(&sk).len(), 4);
    }

    #[test]
    fn multi_type_product() {
        let sk = Skeleton::from_source(
            "int a, b; double x, y; void f() { a = b; x = y; }",
        )
        .expect("builds");
        // Each type group: 2 holes over 2 vars -> 2; product 4.
        assert_eq!(spe_count(&sk, Granularity::Intra).to_u64(), Some(4));
    }

    #[test]
    fn canonical_capped_count() {
        let sk = fig1();
        let (count, exceeded) = canonical_count_capped(&sk, Granularity::Intra, 10_000);
        assert_eq!(count.to_u64(), Some(64));
        assert!(!exceeded);
        let (count, exceeded) = canonical_count_capped(&sk, Granularity::Intra, 10);
        assert_eq!(count.to_u64(), Some(10));
        assert!(exceeded);
    }

    #[test]
    fn original_program_is_among_naive_variants() {
        // The naive enumeration contains the identity filling verbatim.
        let sk = fig1();
        let original = sk.source();
        let e = Enumerator::new(EnumeratorConfig {
            algorithm: Algorithm::Naive,
            ..Default::default()
        });
        let sources = e.collect_sources(&sk);
        assert!(
            sources.contains(&original),
            "the identity filling must be enumerated"
        );
    }

    #[test]
    fn original_alpha_class_is_among_paper_variants() {
        // The paper enumeration emits canonical representatives: the
        // original program appears up to α-renaming (same RGS over its
        // holes), not necessarily verbatim.
        let sk = fig1();
        let original_rgs = {
            let labels: Vec<usize> = sk
                .holes()
                .iter()
                .map(|h| h.var.0)
                .collect();
            spe_combinatorics::labels_to_rgs(&labels)
        };
        let e = Enumerator::new(EnumeratorConfig::default());
        let mut found = false;
        e.enumerate(&sk, &mut |v| {
            let src = v.source(&sk);
            let re = Skeleton::from_source(&src).expect("variant parses");
            let labels: Vec<usize> = re.holes().iter().map(|h| h.var.0).collect();
            if spe_combinatorics::labels_to_rgs(&labels) == original_rgs {
                found = true;
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
        assert!(found, "no variant is α-equivalent to the original");
    }
}
