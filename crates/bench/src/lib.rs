//! Criterion benchmark crate for SPE (bench targets live in benches/).
