//! Variant rendering: legacy AST re-walk vs template-compiled splice.
//!
//! Workloads over the paper's Figure 6 skeleton (Naive enumeration — the
//! largest space, 512 variants):
//!
//! * `legacy_realize` — the pre-template path per variant: build an
//!   occurrence-keyed map of owned name strings, then re-walk the whole
//!   AST through the printer;
//! * `template_render` — compile the render template once, then realize
//!   each variant as a segment/slot splice into one reused buffer (zero
//!   per-variant heap allocation);
//! * `template_render_sharded/shardsN` — the same splice fanned over
//!   1/2/4/8 shards with a per-shard buffer, the campaign hot path.
//!
//! The acceptance bar for this pipeline is ≥ 3× variants/sec over the
//! legacy path single-threaded; shards then multiply on top.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spe_core::{Algorithm, Enumerator, EnumeratorConfig, ShardedEnumerator, Skeleton};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};

const FIGURE_6: &str = r#"
    int main() {
        int a = 1, b = 0;
        if (a) {
            int c = 3, d = 5;
            b = c + d;
        }
        printf("%d", a);
        printf("%d", b);
        return 0;
    }
"#;

const VARIANTS: u64 = 512;

fn config() -> EnumeratorConfig {
    EnumeratorConfig {
        algorithm: Algorithm::Naive,
        budget: 1_000_000,
        ..Default::default()
    }
}

fn bench_rendering(c: &mut Criterion) {
    let sk = Skeleton::from_source(FIGURE_6).expect("builds");
    sk.template(); // compile outside the timed region, as campaigns do
    let mut group = c.benchmark_group("rendering");
    group.sample_size(20);

    group.bench_function("legacy_realize", |b| {
        let e = Enumerator::new(config());
        b.iter(|| {
            let mut n = 0u64;
            e.enumerate(&sk, &mut |v| {
                let src = sk.realize(&sk.rename_map(&v.names));
                criterion::black_box(&src);
                n += 1;
                ControlFlow::Continue(())
            });
            assert_eq!(n, VARIANTS);
        })
    });

    group.bench_function("template_render", |b| {
        let e = Enumerator::new(config());
        b.iter(|| {
            let mut buf = String::new();
            let mut n = 0u64;
            e.enumerate(&sk, &mut |v| {
                v.render_into(&sk, &mut buf);
                criterion::black_box(buf.len());
                n += 1;
                ControlFlow::Continue(())
            });
            assert_eq!(n, VARIANTS);
        })
    });

    for shards in [1usize, 2, 4, 8] {
        let enumerator = ShardedEnumerator::new(config(), shards);
        group.bench_with_input(
            BenchmarkId::new("template_render_sharded", format!("shards{shards}")),
            &enumerator,
            |b, e| {
                let space = e.prepare(&sk);
                b.iter(|| {
                    let n = AtomicU64::new(0);
                    std::thread::scope(|scope| {
                        for shard in 0..e.shards() {
                            let (space, sk, n) = (&space, &sk, &n);
                            scope.spawn(move || {
                                let mut buf = String::new();
                                let mut local = 0u64;
                                e.enumerate_shard_prepared(space, shard, &mut |v| {
                                    v.render_into(sk, &mut buf);
                                    criterion::black_box(buf.len());
                                    local += 1;
                                    ControlFlow::Continue(())
                                });
                                n.fetch_add(local, Ordering::Relaxed);
                            });
                        }
                    });
                    assert_eq!(n.into_inner(), VARIANTS);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rendering);
criterion_main!(benches);
