//! Benchmarks for the compiler-under-test pipeline and the differential
//! harness hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use spe_simcc::{interp, Compiler, CompilerId};

const PROGRAM: &str = r#"
    int g = 3;
    int square(int x) { return x * x; }
    int main() {
        int s = 0;
        for (int i = 0; i < 20; i++) {
            if (i % 2) s += square(i) - g;
            else s += i;
        }
        return s;
    }
"#;

fn bench_compile(c: &mut Criterion) {
    let p = spe_minic::parse(PROGRAM).expect("parses");
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(50);
    for opt in [0u8, 3] {
        let cc = Compiler::new(CompilerId::gcc(440), opt);
        group.bench_function(format!("compile_O{opt}"), |b| {
            b.iter(|| cc.compile(&p).expect("compiles"))
        });
    }
    let cc = Compiler::new(CompilerId::gcc(440), 3);
    let compiled = cc.compile(&p).expect("compiles");
    group.bench_function("vm_execute", |b| {
        b.iter(|| compiled.execute(1_000_000).expect("runs"))
    });
    group.bench_function("reference_interpret", |b| {
        b.iter(|| interp::run(&p, interp::Limits::default()).expect("runs"))
    });
    group.bench_function("parse", |b| {
        b.iter(|| spe_minic::parse(PROGRAM).expect("parses"))
    });
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
