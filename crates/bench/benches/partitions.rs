//! Benchmarks for the combinatorial substrate: RGS generation, Stirling
//! counting and the scoped partition algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spe_combinatorics::{
    paper_count, paper_solutions, partitions_at_most, FlatInstance, FlatScope, Rgs,
};

fn bench_rgs(c: &mut Criterion) {
    let mut group = c.benchmark_group("rgs");
    group.sample_size(30);
    for (n, k) in [(10usize, 3usize), (12, 4), (14, 2)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| b.iter(|| Rgs::new(n, k).count()),
        );
    }
    group.finish();
}

fn bench_stirling(c: &mut Criterion) {
    let mut group = c.benchmark_group("stirling");
    group.sample_size(50);
    group.bench_function("partitions_at_most_200_10", |b| {
        b.iter(|| partitions_at_most(200, 10))
    });
    group.bench_function("paper_count_large_flat", |b| {
        let inst = FlatInstance::new(
            (0..40).collect(),
            5,
            vec![
                FlatScope {
                    holes: (40..50).collect(),
                    vars: 3,
                },
                FlatScope {
                    holes: (50..60).collect(),
                    vars: 2,
                },
            ],
        );
        b.iter(|| paper_count(&inst))
    });
    group.finish();
}

fn bench_scoped_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("scoped_enumeration");
    group.sample_size(20);
    let inst = FlatInstance::new(
        vec![0, 1, 2, 3],
        3,
        vec![
            FlatScope {
                holes: vec![4, 5, 6],
                vars: 2,
            },
            FlatScope {
                holes: vec![7, 8],
                vars: 2,
            },
        ],
    );
    group.bench_function("paper_solutions", |b| {
        b.iter(|| paper_solutions(&inst, usize::MAX).0.len())
    });
    group.finish();
}

criterion_group!(benches, bench_rgs, bench_stirling, bench_scoped_enumeration);
criterion_main!(benches);
