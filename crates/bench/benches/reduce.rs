//! Reduction-stage benchmarks: reducer throughput and shrink ratio on
//! the seeded-bug corpus (`BENCH_reduce.json` records the baseline).
//!
//! Workload: a trunk campaign over the paper seeds plus a 160-file
//! synthetic corpus slice (the `reduction_pipeline` integration-test
//! configuration at 4× its corpus size), whose findings are then
//! reduced:
//!
//! * `reduce_findings/workersN` — the whole post-campaign stage (every
//!   finding reduced + fingerprint dedup) at 1/2/4/8 workers over the
//!   work-stealing queue;
//! * `reduce_one_crash` / `reduce_one_wrong_code` — single-finding
//!   reduction cost for the two oracle classes (compile-only vs full
//!   differential re-execution).
//!
//! The group also prints the shrink/dedup statistics the acceptance bar
//! is measured against (mean shrink ≥ 3×, at least one fingerprint
//! merge).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spe_corpus::{generate, seeds, CorpusConfig};
use spe_harness::reduction::{reduce_findings, ReductionOptions};
use spe_harness::{run_campaign_parallel, CampaignConfig, CampaignReport, FindingKind};
use spe_simcc::{Compiler, CompilerId};

fn campaign() -> (CampaignReport, ReductionOptions) {
    let mut files = seeds::all();
    files.extend(generate(&CorpusConfig {
        files: 160,
        seed: 44,
    }));
    let config = CampaignConfig {
        compilers: vec![
            Compiler::new(CompilerId::gcc(700), 0),
            Compiler::new(CompilerId::gcc(700), 2),
            Compiler::new(CompilerId::gcc(700), 3),
            Compiler::new(CompilerId::clang(390), 3),
        ],
        budget: 60,
        algorithm: spe_core::Algorithm::Paper,
        check_wrong_code: true,
        fuel: 20_000,
    };
    let report = run_campaign_parallel(&files, &config, 8);
    let options = ReductionOptions {
        fuel: config.fuel,
        ..ReductionOptions::default()
    };
    (report, options)
}

fn bench_reduction(c: &mut Criterion) {
    let (report, options) = campaign();
    assert!(
        report.findings.len() >= 10,
        "workload produces a real finding set"
    );

    // Shrink/dedup statistics for the recorded baseline.
    let mut reduced = report.clone();
    reduce_findings(&mut reduced, &options, 8);
    eprintln!(
        "reduction workload: {} findings, mean shrink {:.2}x, {} fingerprint merges",
        reduced.findings.len(),
        reduced.mean_shrink_ratio().unwrap_or(1.0),
        reduced.fingerprint_duplicates(),
    );

    let mut group = c.benchmark_group("reduction");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("reduce_findings", format!("workers{workers}")),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut r = report.clone();
                    reduce_findings(&mut r, &options, workers);
                    criterion::black_box(r.fingerprint_duplicates())
                })
            },
        );
    }

    let one_of = |kind: FindingKind| {
        report
            .findings
            .iter()
            .find(|f| f.kind == kind)
            .cloned()
            .expect("workload contains the kind")
    };
    let crash = one_of(FindingKind::Crash);
    let wrong = one_of(FindingKind::WrongCode);
    group.bench_function("reduce_one_crash", |b| {
        b.iter(|| {
            let mut oracle =
                |p: &spe_minic::Program| spe_harness::reduction::reproduces(&crash, p, options.fuel);
            criterion::black_box(
                spe_reduce::reduce(&crash.reproducer, &options.reduce, &mut oracle)
                    .expect("reduces")
                    .reduced_bytes,
            )
        })
    });
    group.bench_function("reduce_one_wrong_code", |b| {
        b.iter(|| {
            let mut oracle =
                |p: &spe_minic::Program| spe_harness::reduction::reproduces(&wrong, p, options.fuel);
            criterion::black_box(
                spe_reduce::reduce(&wrong.reproducer, &options.reduce, &mut oracle)
                    .expect("reduces")
                    .reduced_bytes,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
