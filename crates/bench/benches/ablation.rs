//! Ablation benches for the design choices called out in DESIGN.md §6:
//! paper vs canonical vs orbit enumerators, and intra- vs
//! inter-procedural granularity.

use criterion::{criterion_group, criterion_main, Criterion};
use spe_combinatorics::{
    canonical_solutions, orbit_solutions, paper_solutions, FlatInstance, FlatScope,
};
use spe_core::{spe_count, Granularity, Skeleton};

fn scoped_instance() -> FlatInstance {
    FlatInstance::new(
        vec![0, 1, 2, 3],
        3,
        vec![
            FlatScope {
                holes: vec![4, 5, 6],
                vars: 2,
            },
            FlatScope {
                holes: vec![7, 8],
                vars: 1,
            },
        ],
    )
}

fn bench_enumerator_variants(c: &mut Criterion) {
    let inst = scoped_instance();
    let general = inst.to_general();
    let mut group = c.benchmark_group("scoped_enumerators");
    group.sample_size(20);
    group.bench_function("paper", |b| {
        b.iter(|| paper_solutions(&inst, usize::MAX).0.len())
    });
    group.bench_function("canonical", |b| {
        b.iter(|| canonical_solutions(&general, usize::MAX).0.len())
    });
    group.bench_function("orbit", |b| {
        b.iter(|| orbit_solutions(&inst, usize::MAX).0.len())
    });
    group.finish();
}

fn bench_granularity(c: &mut Criterion) {
    let src = r#"
        int g1, g2;
        void f1() { int x = 0; g1 = x + g2; }
        void f2() { int y = 0; g2 = y - g1; }
        void f3() { g1 = g2; g2 = g1; }
    "#;
    let sk = Skeleton::from_source(src).expect("builds");
    let mut group = c.benchmark_group("granularity");
    group.sample_size(30);
    group.bench_function("intra_count", |b| {
        b.iter(|| spe_count(&sk, Granularity::Intra))
    });
    group.bench_function("inter_count", |b| {
        b.iter(|| spe_count(&sk, Granularity::Inter))
    });
    group.finish();
}

criterion_group!(benches, bench_enumerator_variants, bench_granularity);
criterion_main!(benches);
