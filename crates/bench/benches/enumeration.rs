//! Benchmarks for Table 1's core comparison: combinatorial SPE vs naive
//! enumeration of skeleton variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spe_core::{Algorithm, Enumerator, EnumeratorConfig, Granularity, Skeleton};
use std::ops::ControlFlow;

const FIGURE_1: &str = "int main() { int a, b = 1; b = b - a; if (a) a = a - b; return 0; }";
const FIGURE_6: &str = r#"
    int main() {
        int a = 1, b = 0;
        if (a) {
            int c = 3, d = 5;
            b = c + d;
        }
        printf("%d", a);
        printf("%d", b);
        return 0;
    }
"#;

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration");
    group.sample_size(20);
    for (name, src) in [("figure1", FIGURE_1), ("figure6", FIGURE_6)] {
        let sk = Skeleton::from_source(src).expect("builds");
        for algorithm in [Algorithm::Paper, Algorithm::Naive] {
            group.bench_with_input(
                BenchmarkId::new(format!("{algorithm:?}"), name),
                &sk,
                |b, sk| {
                    let e = Enumerator::new(EnumeratorConfig {
                        algorithm,
                        granularity: Granularity::Intra,
                        budget: 10_000,
                    });
                    b.iter(|| {
                        let mut n = 0u64;
                        e.enumerate(sk, &mut |_| {
                            n += 1;
                            ControlFlow::Continue(())
                        });
                        n
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("counting");
    group.sample_size(30);
    let files = spe_corpus::generate(&spe_corpus::CorpusConfig {
        files: 50,
        seed: 42,
    });
    group.bench_function("spe_count_corpus_50", |b| {
        b.iter(|| {
            let mut total = spe_bignum::BigUint::zero();
            for f in &files {
                if let Ok(sk) = Skeleton::from_source(&f.source) {
                    total += &spe_core::spe_count(&sk, Granularity::Intra);
                }
            }
            total
        });
    });
    group.bench_function("naive_count_corpus_50", |b| {
        b.iter(|| {
            let mut total = spe_bignum::BigUint::zero();
            for f in &files {
                if let Ok(sk) = Skeleton::from_source(&f.source) {
                    total += &spe_core::naive_count(&sk, Granularity::Intra);
                }
            }
            total
        });
    });
    group.finish();
}

criterion_group!(benches, bench_enumeration, bench_counting);
criterion_main!(benches);
