//! End-to-end campaign benchmark: the Table-3 stable-release workload
//! driven through `run_campaign_parallel`, measured two ways
//! (`BENCH_campaign.json` records the baseline):
//!
//! * `campaign/workersN` — wall clock of the whole campaign at 1/2/4/8
//!   workers under the default `NullSink` (the production hot path);
//! * `campaign/workers1_recorded` — the same serial campaign with a
//!   live `spe_telemetry::Recorder` installed, pinning the
//!   instrumentation overhead next to the uninstrumented number.
//!
//! After timing, one instrumented pass prints the throughput summary
//! the incremental-oracle ROADMAP item is measured against: end-to-end
//! variants/sec plus p50/p99 per-verdict oracle latency, read from the
//! `oracle_ns.*` histograms the campaign itself recorded.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spe_corpus::{generate, seeds, CorpusConfig, TestFile};
use spe_harness::{
    run_campaign_parallel, run_campaign_parallel_with_path, CampaignConfig, OraclePath,
};
use spe_simcc::{Compiler, CompilerId};
use spe_telemetry::{names, Recorder};

/// The Table-3 workload at the experiments' quick scale: paper seeds +
/// a 50-file synthetic corpus slice against the stable releases.
fn workload() -> (Vec<TestFile>, CampaignConfig) {
    let mut files = seeds::all();
    files.extend(generate(&CorpusConfig {
        files: 50,
        seed: 43,
    }));
    let config = CampaignConfig {
        compilers: vec![
            Compiler::new(CompilerId::gcc(485), 0),
            Compiler::new(CompilerId::gcc(485), 3),
            Compiler::new(CompilerId::clang(360), 0),
            Compiler::new(CompilerId::clang(360), 3),
        ],
        budget: 50,
        algorithm: spe_core::Algorithm::Paper,
        check_wrong_code: false,
        fuel: 20_000,
    };
    (files, config)
}

fn bench_campaign(c: &mut Criterion) {
    let (files, config) = workload();

    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("campaign", format!("workers{workers}")),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    criterion::black_box(
                        run_campaign_parallel(&files, &config, workers).variants_tested,
                    )
                })
            },
        );
    }
    // The same serial campaign with a live Recorder: the gap to
    // `workers1` is the whole instrumentation overhead.
    group.bench_function("workers1_recorded", |b| {
        let recorder = Arc::new(Recorder::new());
        let prev = spe_telemetry::install_recorder(recorder, Vec::new());
        b.iter(|| {
            criterion::black_box(run_campaign_parallel(&files, &config, 1).variants_tested)
        });
        spe_telemetry::uninstall_recorder(prev);
    });
    // The historical render→parse→compile round trip, kept as a live
    // baseline so the incremental speedup is measured on the same host
    // in the same run.
    group.bench_function("workers1_roundtrip", |b| {
        b.iter(|| {
            criterion::black_box(
                run_campaign_parallel_with_path(&files, &config, 1, OraclePath::RoundTrip)
                    .variants_tested,
            )
        })
    });
    group.finish();

    // One instrumented pass for the recorded throughput summary.
    let recorder = Arc::new(Recorder::new());
    let prev = spe_telemetry::install_recorder(recorder.clone(), Vec::new());
    let start = Instant::now();
    let report = run_campaign_parallel(&files, &config, 1);
    let elapsed = start.elapsed();
    spe_telemetry::uninstall_recorder(prev);
    let snap = recorder.snapshot();
    let variants_per_sec = report.variants_tested as f64 / elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "campaign workload: {} variants, {} findings, {:.0} variants/sec serial",
        report.variants_tested,
        report.findings.len(),
        variants_per_sec,
    );
    for (name, h) in &snap.histograms {
        let Some(label) = name.strip_prefix(names::ORACLE_NS_PREFIX) else {
            continue;
        };
        eprintln!(
            "oracle latency [{label}]: n={} p50={:.1}us p99={:.1}us mean={:.1}us",
            h.count,
            h.quantile(0.5) / 1e3,
            h.quantile(0.99) / 1e3,
            h.mean() / 1e3,
        );
    }
    // Smoke check: the default entry point must be running on the
    // splice cache — a silent fallback to the round trip would make the
    // timing rows above meaningless.
    let splice_hits = recorder.counter_value(names::ORACLE_SPLICE_HITS);
    let splice_misses = recorder.counter_value(names::ORACLE_SPLICE_MISSES);
    assert!(
        splice_hits > 0,
        "default campaign path did not engage the incremental oracle"
    );
    let memo_hits = recorder.counter_value(names::ORACLE_PIPELINE_MEMO_HITS);
    let memo_misses = recorder.counter_value(names::ORACLE_PIPELINE_MEMO_MISSES);
    eprintln!(
        "oracle cache: splice {splice_hits} delta / {splice_misses} full ({:.1}% hit), \
         pipeline memo {memo_hits} hit / {memo_misses} miss",
        100.0 * splice_hits as f64 / (splice_hits + splice_misses).max(1) as f64,
    );
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
