//! Sharded vs serial enumeration: wall-clock scaling at 1/2/4/8 shards.
//!
//! Two workloads over the paper's Figure 6 skeleton:
//!
//! * `enumerate_only` — realize every variant source (cheap per-variant
//!   work; measures sharding overhead);
//! * `enumerate_compile` — realize, parse and compile every variant at
//!   -O3 (the campaign hot path; the per-variant work that parallelism is
//!   for).
//!
//! With one shard the engine takes the thread-free serial path, so the
//! `shards1` rows are the baseline. On a multi-core host the 4-shard
//! `enumerate_compile` row lands at a fraction of the 1-shard time
//! (≥1.5× speedup); on a single hardware thread the rows should stay
//! within noise of each other, demonstrating that sharding costs nothing.
//!
//! A third group, `canonical_constrained`, pins the shard-native walk of
//! a *constrained multi-group* canonical space (DESIGN §8): a
//! two-function skeleton with three type groups, two of them constrained
//! by declaration order and nested scopes. `materialized_serial` is the
//! serial `Enumerator` (which deliberately materializes every per-group
//! solution list); the `shardsN` rows run the `ShardedEnumerator` native
//! path — per-group sizes from the prefix-count DP, mixed-radix boundary
//! unranking, nothing materialized. Baseline recorded in
//! `BENCH_canonical_constrained.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spe_core::{Algorithm, EnumeratorConfig, ShardedEnumerator, Skeleton};
use spe_simcc::{Compiler, CompilerId};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};

const FIGURE_6: &str = r#"
    int main() {
        int a = 1, b = 0;
        if (a) {
            int c = 3, d = 5;
            b = c + d;
        }
        printf("%d", a);
        printf("%d", b);
        return 0;
    }
"#;

fn config() -> EnumeratorConfig {
    EnumeratorConfig {
        algorithm: Algorithm::Naive, // the largest space: 512 variants
        budget: 1_000_000,
        ..Default::default()
    }
}

fn bench_sharded_enumeration(c: &mut Criterion) {
    let sk = Skeleton::from_source(FIGURE_6).expect("builds");
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        let enumerator = ShardedEnumerator::new(config(), shards);
        group.bench_with_input(
            BenchmarkId::new("enumerate_only", format!("shards{shards}")),
            &enumerator,
            |b, e| {
                b.iter(|| {
                    let n = AtomicU64::new(0);
                    e.enumerate(&sk, &|v| {
                        criterion::black_box(v.source(&sk));
                        n.fetch_add(1, Ordering::Relaxed);
                        ControlFlow::Continue(())
                    });
                    assert_eq!(n.into_inner(), 512);
                })
            },
        );
    }
    let cc = Compiler::new(CompilerId::gcc(700), 3);
    for shards in [1usize, 2, 4, 8] {
        let enumerator = ShardedEnumerator::new(config(), shards);
        group.bench_with_input(
            BenchmarkId::new("enumerate_compile", format!("shards{shards}")),
            &enumerator,
            |b, e| {
                b.iter(|| {
                    let compiled = AtomicU64::new(0);
                    e.enumerate(&sk, &|v| {
                        let src = v.source(&sk);
                        if let Ok(prog) = spe_minic::parse(&src) {
                            if cc.compile(&prog).is_ok() {
                                compiled.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        ControlFlow::Continue(())
                    });
                    criterion::black_box(compiled.into_inner())
                })
            },
        );
    }
    group.finish();
}

/// A constrained, multi-group skeleton (three type groups; the int
/// groups are constrained by declaration order and nested scopes). Its
/// canonical product exceeds the paper's 10,000-variant budget, so every
/// row streams exactly the 10K-variant truncated prefix — the same
/// stream a campaign would consume.
const CONSTRAINED_MULTI_GROUP: &str = r#"
    int g, h;
    int main() {
        int a = 1, b = 0;
        double x, y;
        if (a) {
            int c = 3, d = 5;
            b = c + d;
            g = a + c;
            x = y;
        }
        h = a + b;
        return 0;
    }
    void helper() {
        int u, v;
        u = v + g;
        if (u) { int w; w = u + v + h; }
    }
"#;

fn bench_constrained_canonical(c: &mut Criterion) {
    let sk = Skeleton::from_source(CONSTRAINED_MULTI_GROUP).expect("builds");
    let config = EnumeratorConfig {
        algorithm: Algorithm::Canonical,
        budget: 10_000,
        ..Default::default()
    };
    // The workload only measures what it claims if the gate engages and
    // the space is non-trivial.
    let space = ShardedEnumerator::new(config, 2).prepare(&sk);
    assert!(space.is_shard_native(), "constrained native gate must engage");
    let total = space.total(config.budget);
    assert!(total > 500, "space too small to measure: {total}");
    let mut group = c.benchmark_group("canonical_constrained");
    group.sample_size(10);
    group.bench_function("materialized_serial", |b| {
        b.iter(|| {
            let mut n = 0u64;
            spe_core::Enumerator::new(config).enumerate(&sk, &mut |v| {
                criterion::black_box(v.source(&sk));
                n += 1;
                ControlFlow::Continue(())
            });
            assert_eq!(n, total);
        })
    });
    for shards in [1usize, 2, 4, 8] {
        let enumerator = ShardedEnumerator::new(config, shards);
        group.bench_with_input(
            BenchmarkId::new("native", format!("shards{shards}")),
            &enumerator,
            |b, e| {
                b.iter(|| {
                    let n = AtomicU64::new(0);
                    e.enumerate(&sk, &|v| {
                        criterion::black_box(v.source(&sk));
                        n.fetch_add(1, Ordering::Relaxed);
                        ControlFlow::Continue(())
                    });
                    assert_eq!(n.into_inner(), total);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_enumeration, bench_constrained_canonical);
criterion_main!(benches);
