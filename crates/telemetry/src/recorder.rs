//! The in-memory aggregating sink.
//!
//! Layout is chosen for the campaign hot path (workers recording a
//! handful of metrics per variant from many threads):
//!
//! * the name → metric registry is **lock-striped**: names hash to
//!   one of [`MAP_SHARDS`] independent `RwLock<HashMap>` shards, and
//!   the steady state takes only a shared read lock on one shard;
//! * counters are **stripe-padded atomics**: each counter owns
//!   [`STRIPES`] cache-line-aligned `AtomicU64` cells and a thread
//!   increments the cell picked by its thread-local stripe id, so
//!   concurrent workers do not ping-pong one cache line;
//! * histograms use **pinned power-of-two buckets** (see
//!   [`bucket_index`]) with relaxed atomic bucket counts plus
//!   `sum`/`count`/`min`/`max`, so recording is wait-free and a
//!   snapshot needs no stop-the-world.
//!
//! All atomics use `Relaxed` ordering: values are advisory aggregates
//! read after the recording threads are joined (or approximately, by
//! the live progress line), never synchronization.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::RwLock;

use crate::Sink;

/// Registry lock stripes (names hash to a shard).
pub const MAP_SHARDS: usize = 16;
/// Atomic cells per counter (threads hash to a stripe).
pub const STRIPES: usize = 16;
/// Histogram bucket count: bucket 0 holds zeros, bucket `i ≥ 1` holds
/// values with bit length `i` (i.e. `2^(i-1) ≤ v < 2^i`), bucket 64
/// holds `v ≥ 2^63`.
pub const BUCKETS: usize = 65;

/// The bucket a value lands in: its bit length (0 for 0).
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i`, or `None` for the
/// unbounded last bucket (rendered as `+Inf` by the exporter).
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    match i {
        0 => Some(0),
        1..=63 => Some((1u64 << i) - 1),
        _ => None,
    }
}

#[repr(align(64))]
struct PaddedCell(AtomicU64);

struct HistCells {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

enum Slot {
    Counter(Box<[PaddedCell]>),
    Gauge { last: AtomicI64, max: AtomicI64 },
    Histogram(Box<HistCells>),
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn thread_stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

/// The aggregating [`Sink`]: see the [module docs](self) for layout.
///
/// Spans fold into duration histograms keyed by the span name (their
/// `detail` is dropped — use a [`crate::JsonlSink`] fanned out beside
/// a recorder to keep per-span detail); events fold into counters.
#[derive(Default)]
pub struct Recorder {
    shards: [RwLock<HashMap<String, Slot>>; MAP_SHARDS],
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    fn with_slot(&self, name: &str, make: impl FnOnce() -> Slot, apply: impl Fn(&Slot)) {
        let shard = &self.shards[(fnv1a(name) % MAP_SHARDS as u64) as usize];
        if let Some(slot) = shard
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            apply(slot);
            return;
        }
        let mut map = shard.write().unwrap_or_else(|e| e.into_inner());
        apply(map.entry(name.to_owned()).or_insert_with(make));
    }

    fn add_counter(&self, name: &str, delta: u64) {
        self.with_slot(
            name,
            || {
                Slot::Counter(
                    (0..STRIPES)
                        .map(|_| PaddedCell(AtomicU64::new(0)))
                        .collect(),
                )
            },
            |slot| {
                if let Slot::Counter(cells) = slot {
                    cells[thread_stripe()].0.fetch_add(delta, Relaxed);
                }
            },
        );
    }

    fn set_gauge(&self, name: &str, value: i64) {
        self.with_slot(
            name,
            || Slot::Gauge {
                last: AtomicI64::new(i64::MIN),
                max: AtomicI64::new(i64::MIN),
            },
            |slot| {
                if let Slot::Gauge { last, max } = slot {
                    last.store(value, Relaxed);
                    max.fetch_max(value, Relaxed);
                }
            },
        );
    }

    fn record_histogram(&self, name: &str, value: u64) {
        self.with_slot(
            name,
            || {
                Slot::Histogram(Box::new(HistCells {
                    buckets: [const { AtomicU64::new(0) }; BUCKETS],
                    sum: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                    min: AtomicU64::new(u64::MAX),
                    max: AtomicU64::new(0),
                }))
            },
            |slot| {
                if let Slot::Histogram(h) = slot {
                    h.buckets[bucket_index(value)].fetch_add(1, Relaxed);
                    h.sum.fetch_add(value, Relaxed);
                    h.count.fetch_add(1, Relaxed);
                    h.min.fetch_min(value, Relaxed);
                    h.max.fetch_max(value, Relaxed);
                }
            },
        );
    }

    /// A point-in-time copy of every metric, with deterministically
    /// ordered (`BTreeMap`) names.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for shard in &self.shards {
            let map = shard.read().unwrap_or_else(|e| e.into_inner());
            for (name, slot) in map.iter() {
                match slot {
                    Slot::Counter(cells) => {
                        let total = cells.iter().map(|c| c.0.load(Relaxed)).sum();
                        snap.counters.insert(name.clone(), total);
                    }
                    Slot::Gauge { last, max } => {
                        snap.gauges.insert(
                            name.clone(),
                            GaugeSnapshot {
                                last: last.load(Relaxed),
                                max: max.load(Relaxed),
                            },
                        );
                    }
                    Slot::Histogram(h) => {
                        let count = h.count.load(Relaxed);
                        snap.histograms.insert(
                            name.clone(),
                            HistogramSnapshot {
                                buckets: h.buckets.iter().map(|b| b.load(Relaxed)).collect(),
                                sum: h.sum.load(Relaxed),
                                count,
                                min: if count == 0 { 0 } else { h.min.load(Relaxed) },
                                max: h.max.load(Relaxed),
                            },
                        );
                    }
                }
            }
        }
        snap
    }

    /// Convenience: the current total of counter `name` (0 if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.snapshot().counters.get(name).copied().unwrap_or(0)
    }
}

impl Sink for Recorder {
    fn event(&self, name: &str, _detail: &str) {
        self.add_counter(name, 1);
    }

    fn span(&self, name: &str, _detail: &str, nanos: u64) {
        self.record_histogram(name, nanos);
    }

    fn counter(&self, name: &str, delta: u64) {
        self.add_counter(name, delta);
    }

    fn gauge(&self, name: &str, value: i64) {
        self.set_gauge(name, value);
    }

    fn histogram(&self, name: &str, value: u64) {
        self.record_histogram(name, value);
    }
}

/// A gauge's last-set and maximum-ever values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// The most recently set value.
    pub last: i64,
    /// The maximum value ever set.
    pub max: i64,
}

/// A histogram's bucket counts and summary statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; `buckets[i]` counts values in
    /// the range described by [`bucket_index`]/[`bucket_upper_bound`].
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) by linear
    /// interpolation inside the bucket holding the target rank,
    /// clamped to the observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = seen + n;
            if (next as f64) >= rank {
                let lo = if i <= 1 { 0 } else { 1u64 << (i - 1) };
                let hi = bucket_upper_bound(i).unwrap_or(self.max).max(lo);
                let frac = (rank - seen as f64) / n as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return est.clamp(self.min as f64, self.max as f64);
            }
            seen = next;
        }
        self.max as f64
    }
}

/// A deterministic (name-ordered) copy of a [`Recorder`]'s state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter totals (events fold in here too).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histograms (spans fold in here too, keyed by span name).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == ':' { c } else { '_' })
        .collect()
}

impl Snapshot {
    /// Renders the snapshot in the Prometheus text exposition format,
    /// each metric name prefixed with `prefix` and sanitized to
    /// `[a-zA-Z0-9_:]`. Histogram buckets render cumulatively with
    /// the pinned power-of-two `le` bounds.
    pub fn to_prometheus(&self, prefix: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = format!("{prefix}_{}", sanitize(name));
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
        }
        for (name, g) in &self.gauges {
            let n = format!("{prefix}_{}", sanitize(name));
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {}\n{n}_max {}", g.last, g.max);
        }
        for (name, h) in &self.histograms {
            let n = format!("{prefix}_{}", sanitize(name));
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cum = 0u64;
            for (i, &b) in h.buckets.iter().enumerate() {
                if b == 0 && i != h.buckets.len() - 1 {
                    continue;
                }
                cum += b;
                match bucket_upper_bound(i) {
                    Some(le) => {
                        let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cum}");
                    }
                    None => {
                        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cum}");
                    }
                }
            }
            let _ = writeln!(out, "{n}_sum {}\n{n}_count {}", h.sum, h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The bucket boundaries are part of the exported format: pin
    /// them exactly.
    #[test]
    fn bucket_boundaries_are_pinned_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), Some(0));
        assert_eq!(bucket_upper_bound(1), Some(1));
        assert_eq!(bucket_upper_bound(10), Some(1023));
        assert_eq!(bucket_upper_bound(63), Some(u64::MAX / 2));
        assert_eq!(bucket_upper_bound(64), None);
        // Every value lands in a bucket whose bounds contain it.
        for v in [0u64, 1, 2, 5, 100, 4096, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < BUCKETS);
            if let Some(hi) = bucket_upper_bound(i) {
                assert!(v <= hi, "{v} above bucket {i} bound {hi}");
            }
            if i > 0 {
                let lo = if i == 1 { 1 } else { 1u64 << (i - 1) };
                assert!(v >= lo, "{v} below bucket {i} floor {lo}");
            }
        }
    }

    #[test]
    fn counters_sum_across_stripes_and_threads() {
        let r = Recorder::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        r.counter("hits", 1);
                    }
                });
            }
        });
        assert_eq!(r.counter_value("hits"), 8000);
    }

    #[test]
    fn gauges_keep_last_and_max() {
        let r = Recorder::new();
        r.gauge("depth", 3);
        r.gauge("depth", 9);
        r.gauge("depth", 2);
        let g = r.snapshot().gauges["depth"];
        assert_eq!(g.last, 2);
        assert_eq!(g.max, 9);
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let r = Recorder::new();
        for v in 1..=100u64 {
            r.histogram("lat", v);
        }
        let snap = r.snapshot();
        let h = &snap.histograms["lat"];
        assert_eq!(h.count, 100);
        assert_eq!(h.sum, 5050);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        assert_eq!(h.mean(), 50.5);
        let p50 = h.quantile(0.5);
        assert!((32.0..=96.0).contains(&p50), "p50 estimate {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 >= p50 && p99 <= 100.0, "p99 estimate {p99}");
        assert_eq!(h.quantile(1.0), 100.0);
    }

    /// The exporter's exact rendering is a stable interface: pin it.
    #[test]
    fn prometheus_rendering_is_pinned() {
        let r = Recorder::new();
        r.counter("campaign.variants_tested", 7);
        r.gauge("orchestrate.queue_depth", 4);
        r.histogram("oracle_ns.clean", 3);
        r.histogram("oracle_ns.clean", 1000);
        let text = r.snapshot().to_prometheus("spe");
        let expected = "\
# TYPE spe_campaign_variants_tested counter
spe_campaign_variants_tested 7
# TYPE spe_orchestrate_queue_depth gauge
spe_orchestrate_queue_depth 4
spe_orchestrate_queue_depth_max 4
# TYPE spe_oracle_ns_clean histogram
spe_oracle_ns_clean_bucket{le=\"3\"} 1
spe_oracle_ns_clean_bucket{le=\"1023\"} 2
spe_oracle_ns_clean_bucket{le=\"+Inf\"} 2
spe_oracle_ns_clean_sum 1003
spe_oracle_ns_clean_count 2
";
        assert_eq!(text, expected);
    }

    #[test]
    fn events_and_spans_fold_into_counters_and_histograms() {
        let r = Recorder::new();
        r.event("orchestrate.killed", "stop_after=5");
        r.event("orchestrate.killed", "stop_after=9");
        r.span("orchestrate.job", "file=0 shard=1", 500);
        let snap = r.snapshot();
        assert_eq!(snap.counters["orchestrate.killed"], 2);
        assert_eq!(snap.histograms["orchestrate.job"].sum, 500);
    }
}
