//! The deterministic end-of-run telemetry summary.
//!
//! [`TelemetryReport`] is deliberately a **separate artifact** from
//! the campaign's `CampaignReport`: the latter derives `PartialEq`
//! and is compared byte-for-byte across worker counts and kill/resume
//! histories, and wall-clock latencies can never be part of that
//! contract. The report's *schema and ordering* are deterministic
//! (names sort, quantiles always render); its duration values are
//! not, and that is the point of keeping it out of report equality.

use std::fmt;

use crate::recorder::{Recorder, Snapshot};

/// Summary statistics for one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Metric name.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Mean observation.
    pub mean: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// A name-ordered, render-stable summary of everything a
/// [`Recorder`] aggregated over a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    /// Counter totals, name-ordered.
    pub counters: Vec<(String, u64)>,
    /// Gauges as `(name, last, max)`, name-ordered.
    pub gauges: Vec<(String, i64, i64)>,
    /// Histogram summaries, name-ordered.
    pub histograms: Vec<HistogramSummary>,
}

impl TelemetryReport {
    /// Builds the report from a snapshot.
    pub fn from_snapshot(snap: &Snapshot) -> TelemetryReport {
        TelemetryReport {
            counters: snap.counters.iter().map(|(n, v)| (n.clone(), *v)).collect(),
            gauges: snap
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.last, g.max))
                .collect(),
            histograms: snap
                .histograms
                .iter()
                .map(|(n, h)| HistogramSummary {
                    name: n.clone(),
                    count: h.count,
                    sum: h.sum,
                    min: h.min,
                    max: h.max,
                    mean: h.mean(),
                    p50: h.quantile(0.50),
                    p90: h.quantile(0.90),
                    p99: h.quantile(0.99),
                })
                .collect(),
        }
    }

    /// Snapshots `recorder` and builds the report.
    pub fn from_recorder(recorder: &Recorder) -> TelemetryReport {
        TelemetryReport::from_snapshot(&recorder.snapshot())
    }

    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

fn fmt_scaled(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

impl fmt::Display for TelemetryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "telemetry: nothing recorded");
        }
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (name, v) in &self.counters {
                writeln!(f, "  {name:<32} {v}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges (last / max):")?;
            for (name, last, max) in &self.gauges {
                writeln!(f, "  {name:<32} {last} / {max}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(
                f,
                "histograms:\n  {:<32} {:>9} {:>10} {:>10} {:>10} {:>10}",
                "name", "count", "mean", "p50", "p99", "max"
            )?;
            for h in &self.histograms {
                writeln!(
                    f,
                    "  {:<32} {:>9} {:>10} {:>10} {:>10} {:>10}",
                    h.name,
                    h.count,
                    fmt_scaled(h.mean),
                    fmt_scaled(h.p50),
                    fmt_scaled(h.p99),
                    fmt_scaled(h.max as f64),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sink;

    #[test]
    fn report_is_name_ordered_and_renders() {
        let r = Recorder::new();
        r.counter("z.last", 1);
        r.counter("a.first", 2);
        r.gauge("depth", 5);
        r.histogram("lat", 10);
        let rep = TelemetryReport::from_recorder(&r);
        assert_eq!(rep.counters[0].0, "a.first");
        assert_eq!(rep.counters[1].0, "z.last");
        assert_eq!(rep.gauges, vec![("depth".into(), 5, 5)]);
        assert_eq!(rep.histograms[0].count, 1);
        let text = rep.to_string();
        assert!(text.contains("a.first"), "{text}");
        assert!(text.contains("histograms:"), "{text}");
        assert!(!rep.is_empty());
        assert!(TelemetryReport::default().is_empty());
    }
}
