//! Canonical metric names.
//!
//! Every instrumented crate records under a constant defined here, so
//! the names rendered by the Prometheus exporter, consumed by the
//! live progress line, and asserted by tests cannot drift apart.

/// Span: one whole `orchestrate::run` invocation.
pub const ORCH_RUN: &str = "orchestrate.run";
/// Span: dealing the `files × shards` job space into the steal queue.
pub const ORCH_DEAL: &str = "orchestrate.deal";
/// Span: the deterministic merge of per-job outputs into the report.
pub const ORCH_MERGE: &str = "orchestrate.merge";
/// Span: one (file, shard) job, from claim to completion.
pub const ORCH_JOB: &str = "orchestrate.job";
/// Span: replaying a journal into per-job state on resume.
pub const ORCH_REPLAY: &str = "orchestrate.replay";
/// Span: one durable checkpoint commit (progress frames + fsync).
pub const ORCH_CHECKPOINT: &str = "orchestrate.checkpoint";
/// Counter: jobs claimed from another worker's deque.
pub const ORCH_STEALS: &str = "orchestrate.steals";
/// Counter: jobs run to completion (including quarantined ones).
pub const ORCH_JOBS_DONE: &str = "orchestrate.jobs_done";
/// Counter: jobs quarantined by panic isolation.
pub const ORCH_PANICS: &str = "orchestrate.job_panics";
/// Gauge: total jobs in the campaign's job space.
pub const ORCH_JOBS: &str = "orchestrate.jobs";
/// Gauge: undealt jobs left in the steal queue, sampled at each pop.
pub const ORCH_QUEUE_DEPTH: &str = "orchestrate.queue_depth";
/// Event: the orchestrator honored a `stop_after` kill.
pub const ORCH_KILLED: &str = "orchestrate.killed";

/// Counter: variants actually tested by the oracle.
pub const VARIANTS: &str = "campaign.variants_tested";
/// Counter: candidate findings emitted (pre-dedup).
pub const CANDIDATES: &str = "campaign.candidates";
/// Counter: variants skipped because the reference execution hit UB.
pub const UB_SKIPS: &str = "campaign.ub_skipped";
/// Counter: jobs quarantined by a backend machinery failure.
pub const DEGRADED: &str = "campaign.backend_degraded";

/// Histogram-name prefix for per-verdict oracle latency; the suffix
/// is one of [`ORACLE_VERDICTS`].
pub const ORACLE_NS_PREFIX: &str = "oracle_ns.";
/// The per-verdict oracle latency label set.
pub const ORACLE_VERDICTS: [&str; 6] = [
    "clean",
    "crash",
    "wrong_code",
    "performance",
    "ub_skip",
    "unsupported",
];
/// Histogram: oracle latency of variants with no finding.
pub const ORACLE_NS_CLEAN: &str = "oracle_ns.clean";
/// Histogram: oracle latency of variants producing a crash finding.
pub const ORACLE_NS_CRASH: &str = "oracle_ns.crash";
/// Histogram: oracle latency of variants producing a wrong-code
/// finding.
pub const ORACLE_NS_WRONG_CODE: &str = "oracle_ns.wrong_code";
/// Histogram: oracle latency of variants producing a performance
/// finding.
pub const ORACLE_NS_PERFORMANCE: &str = "oracle_ns.performance";
/// Histogram: oracle latency of variants skipped for reference UB.
pub const ORACLE_NS_UB_SKIP: &str = "oracle_ns.ub_skip";
/// Histogram: oracle latency of variants the backend rejected as
/// untestable (e.g. they do not parse).
pub const ORACLE_NS_UNSUPPORTED: &str = "oracle_ns.unsupported";

/// Histogram: `Journal::append` frame-write latency (ns).
pub const JOURNAL_APPEND_NS: &str = "journal.append_ns";
/// Histogram: `Journal::append` fsync latency (ns).
pub const JOURNAL_FSYNC_NS: &str = "journal.fsync_ns";
/// Counter: frames appended.
pub const JOURNAL_APPENDS: &str = "journal.appends";
/// Counter: payload + frame-header bytes appended.
pub const JOURNAL_APPENDED_BYTES: &str = "journal.appended_bytes";
/// Gauge: journal file length in bytes after the latest append.
pub const JOURNAL_LEN_BYTES: &str = "journal.len_bytes";
/// Counter: journal append retries under the fault policy.
pub const JOURNAL_RETRIES: &str = "journal.retries";
/// Event: the checkpoint sink degraded to in-memory completion.
pub const JOURNAL_DEGRADED: &str = "journal.degraded";
/// Span: one journal compaction (scan → rewrite → rename).
pub const JOURNAL_COMPACT: &str = "journal.compact";

/// Histogram: oracle invocations per reduced finding (ddmin cost).
pub const REDUCE_ORACLE_CALLS: &str = "reduce.oracle_calls";
/// Histogram: fixed-point rounds per reduced finding.
pub const REDUCE_ROUNDS: &str = "reduce.rounds";
/// Histogram: shrink ratio per reduced finding, ×100 (so `354` means
/// the witness is 3.54× smaller than the reproducer).
pub const REDUCE_SHRINK_X100: &str = "reduce.shrink_x100";
/// Counter: findings that produced a reduced witness.
pub const REDUCE_REDUCED: &str = "reduce.reduced";
/// Span: one whole reduction pass over a report.
pub const REDUCE_PASS: &str = "reduce.pass";

/// Counter: subprocess compiler launches.
pub const SUBPROC_LAUNCHES: &str = "subproc.launches";
/// Counter: transient-failure retries.
pub const SUBPROC_RETRIES: &str = "subproc.retries";
/// Counter: jobs killed on timeout.
pub const SUBPROC_TIMEOUTS: &str = "subproc.timeouts";
/// Counter: configs quarantined after retry exhaustion.
pub const SUBPROC_QUARANTINES: &str = "subproc.quarantines";
/// Histogram: wall-clock of one subprocess run (ns), including
/// spawn, drain, and reap.
pub const SUBPROC_RUN_NS: &str = "subproc.run_ns";

/// Counter: variants whose name bindings were delta-spliced into the
/// incremental oracle's cached AST (one odometer digit changed — the
/// fast path that skips print/lex/parse/sema entirely).
pub const ORACLE_SPLICE_HITS: &str = "oracle_cache.splice_hits";
/// Counter: variants that paid a full cache build or full resplice —
/// the first variant of each (file, shard) job, skeleton boundaries,
/// and post-panic self-heals.
pub const ORACLE_SPLICE_MISSES: &str = "oracle_cache.splice_misses";
/// Counter: per-configuration pass-pipeline results served from the
/// incremental oracle's within-variant memo (configurations sharing an
/// optimization level and triggered-rewrite set).
pub const ORACLE_PIPELINE_MEMO_HITS: &str = "oracle_cache.pipeline_memo_hits";
/// Counter: pass-pipeline executions the memo could not serve.
pub const ORACLE_PIPELINE_MEMO_MISSES: &str = "oracle_cache.pipeline_memo_misses";

/// Span: one host's slice of a multi-host fleet campaign
/// (`spe_harness::fleet::run_host`), detail `fleet=<id> host=<h>/<n>`.
pub const FLEET_HOST_RUN: &str = "fleet.host_run";
/// Span: one deterministic merge of host journals into a campaign
/// report (`spe_harness::fleet::merge_journals`).
pub const FLEET_MERGE: &str = "fleet.merge";
/// Gauge: jobs of the (file × shard) space owned by the running host.
pub const FLEET_JOBS_OWNED: &str = "fleet.jobs_owned";
/// Counter: host journals folded by completed merges.
pub const FLEET_HOSTS_MERGED: &str = "fleet.hosts_merged";
/// Counter: record frames streamed by completed merges.
pub const FLEET_FRAMES_MERGED: &str = "fleet.frames_merged";

/// Counter: per-configuration observations by the in-process backend.
pub const SIMCC_OBSERVATIONS: &str = "simcc.observations";
/// Counter: variants rejected by the in-process backend's parser.
pub const SIMCC_PARSE_REJECTS: &str = "simcc.parse_rejects";

/// Span-name prefix for demo-binary phases (`phase.<name>`); the
/// binaries read these back from the global [`crate::Recorder`] to
/// print per-phase wall clock.
pub const PHASE_PREFIX: &str = "phase.";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_histogram_names_are_prefix_plus_label() {
        let consts = [
            ORACLE_NS_CLEAN,
            ORACLE_NS_CRASH,
            ORACLE_NS_WRONG_CODE,
            ORACLE_NS_PERFORMANCE,
            ORACLE_NS_UB_SKIP,
            ORACLE_NS_UNSUPPORTED,
        ];
        for (full, label) in consts.iter().zip(ORACLE_VERDICTS) {
            assert_eq!(*full, format!("{ORACLE_NS_PREFIX}{label}"));
        }
    }
}
