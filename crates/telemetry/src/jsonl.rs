//! The JSONL trace-writer sink and its (validating) line parser.
//!
//! One JSON object per record, timestamped with monotonic nanoseconds
//! since the sink was created:
//!
//! ```json
//! {"t_ns":12345,"kind":"span","name":"orchestrate.job","detail":"file=0 shard=1","value":873211}
//! ```
//!
//! `kind` is one of `event`/`span`/`counter`/`gauge`/`histogram`;
//! `value` is the span's nanoseconds, the counter's delta, the
//! gauge's value, or the histogram's observation (absent for events).
//! The writer buffers behind a mutex and swallows I/O errors after
//! the first (telemetry must never take a campaign down); call
//! [`JsonlSink::flush`] (or drop the sink) to push the tail out.
//!
//! [`parse_line`] is the inverse used by the CI smoke check: it
//! accepts exactly the subset of JSON this writer emits.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use crate::Sink;

struct Out {
    w: BufWriter<File>,
    failed: bool,
}

/// A buffered JSONL trace writer; see the [module docs](self).
pub struct JsonlSink {
    start: Instant,
    out: Mutex<Out>,
}

fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink> {
        let w = BufWriter::new(File::create(path)?);
        Ok(JsonlSink {
            start: Instant::now(),
            out: Mutex::new(Out { w, failed: false }),
        })
    }

    fn write_record(&self, kind: &str, name: &str, detail: Option<&str>, value: Option<i128>) {
        let t_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut line = String::with_capacity(96);
        line.push_str("{\"t_ns\":");
        line.push_str(&t_ns.to_string());
        line.push_str(",\"kind\":\"");
        line.push_str(kind);
        line.push_str("\",\"name\":\"");
        escape_into(&mut line, name);
        line.push('"');
        if let Some(d) = detail {
            line.push_str(",\"detail\":\"");
            escape_into(&mut line, d);
            line.push('"');
        }
        if let Some(v) = value {
            line.push_str(",\"value\":");
            line.push_str(&v.to_string());
        }
        line.push_str("}\n");
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        if !out.failed && out.w.write_all(line.as_bytes()).is_err() {
            out.failed = true;
        }
    }

    /// Flushes buffered records to the file.
    pub fn flush(&self) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        if !out.failed && out.w.flush().is_err() {
            out.failed = true;
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

impl Sink for JsonlSink {
    fn event(&self, name: &str, detail: &str) {
        self.write_record("event", name, Some(detail), None);
    }

    fn span(&self, name: &str, detail: &str, nanos: u64) {
        let detail = (!detail.is_empty()).then_some(detail);
        self.write_record("span", name, detail, Some(i128::from(nanos)));
    }

    fn counter(&self, name: &str, delta: u64) {
        self.write_record("counter", name, None, Some(i128::from(delta)));
    }

    fn gauge(&self, name: &str, value: i64) {
        self.write_record("gauge", name, None, Some(i128::from(value)));
    }

    fn histogram(&self, name: &str, value: u64) {
        self.write_record("histogram", name, None, Some(i128::from(value)));
    }
}

/// One parsed trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotonic nanoseconds since the sink was created.
    pub t_ns: u64,
    /// `event`/`span`/`counter`/`gauge`/`histogram`.
    pub kind: String,
    /// Metric name.
    pub name: String,
    /// Span/event detail, when present.
    pub detail: Option<String>,
    /// Numeric payload, when present.
    pub value: Option<i128>,
}

struct Cursor<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.s.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek().ok_or("dangling escape")? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                            self.i += 4;
                        }
                        c => return Err(format!("unknown escape \\{}", c as char)),
                    }
                    self.i += 1;
                }
                _ => {
                    // Multi-byte UTF-8 passes through untouched.
                    let rest = std::str::from_utf8(&self.s[self.i..]).map_err(|_| "bad utf-8")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<i128, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// Parses one line written by [`JsonlSink`], validating the record
/// shape (known `kind`, mandatory `t_ns`/`name`, no unknown keys).
pub fn parse_line(line: &str) -> Result<TraceRecord, String> {
    let mut c = Cursor {
        s: line.trim_end().as_bytes(),
        i: 0,
    };
    c.eat(b'{')?;
    let mut rec = TraceRecord {
        t_ns: 0,
        kind: String::new(),
        name: String::new(),
        detail: None,
        value: None,
    };
    let (mut saw_t, mut saw_kind, mut saw_name) = (false, false, false);
    loop {
        let key = c.string()?;
        c.eat(b':')?;
        match key.as_str() {
            "t_ns" => {
                rec.t_ns = u64::try_from(c.number()?).map_err(|_| "negative t_ns")?;
                saw_t = true;
            }
            "kind" => {
                rec.kind = c.string()?;
                saw_kind = true;
            }
            "name" => {
                rec.name = c.string()?;
                saw_name = true;
            }
            "detail" => rec.detail = Some(c.string()?),
            "value" => rec.value = Some(c.number()?),
            other => return Err(format!("unknown key {other:?}")),
        }
        match c.peek() {
            Some(b',') => c.i += 1,
            Some(b'}') => break,
            _ => return Err(format!("expected ',' or '}}' at byte {}", c.i)),
        }
    }
    c.eat(b'}')?;
    if c.i != c.s.len() {
        return Err("trailing bytes after record".into());
    }
    if !(saw_t && saw_kind && saw_name) {
        return Err("missing t_ns/kind/name".into());
    }
    if !matches!(
        rec.kind.as_str(),
        "event" | "span" | "counter" | "gauge" | "histogram"
    ) {
        return Err(format!("unknown kind {:?}", rec.kind));
    }
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_roundtrip() {
        let dir = std::env::temp_dir().join(format!("spe-telemetry-jsonl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.event("orchestrate.killed", "stop_after=5");
            sink.span("orchestrate.job", "file=0 shard=1", 873_211);
            sink.span("no.detail", "", 1);
            sink.counter("campaign.variants_tested", 3);
            sink.gauge("orchestrate.queue_depth", -1);
            sink.histogram("oracle_ns.clean", 42);
            sink.event("weird \"name\"\n", "tab\there");
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let recs: Vec<TraceRecord> = text
            .lines()
            .map(|l| parse_line(l).unwrap_or_else(|e| panic!("{e}: {l}")))
            .collect();
        assert_eq!(recs.len(), 7);
        assert_eq!(recs[0].kind, "event");
        assert_eq!(recs[0].detail.as_deref(), Some("stop_after=5"));
        assert_eq!(recs[1].name, "orchestrate.job");
        assert_eq!(recs[1].value, Some(873_211));
        assert_eq!(recs[2].detail, None);
        assert_eq!(recs[4].value, Some(-1));
        assert_eq!(recs[6].name, "weird \"name\"\n");
        assert_eq!(recs[6].detail.as_deref(), Some("tab\there"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_line("").is_err());
        assert!(parse_line("{}").is_err());
        assert!(parse_line("{\"t_ns\":1,\"kind\":\"span\"}").is_err());
        assert!(parse_line("{\"t_ns\":1,\"kind\":\"nope\",\"name\":\"x\"}").is_err());
        assert!(parse_line("{\"t_ns\":1,\"kind\":\"event\",\"name\":\"x\"} junk").is_err());
        assert!(parse_line("{\"t_ns\":1,\"kind\":\"event\",\"name\":\"x\",\"zzz\":2}").is_err());
    }
}
