//! Environment-driven setup for binaries: one call installs a global
//! [`Recorder`] plus whatever the environment opts into.
//!
//! | variable | effect |
//! |---|---|
//! | `SPE_TRACE=<path>` | fan out a [`crate::JsonlSink`] writing the trace there |
//! | `SPE_METRICS=<path>` | on drop, write a Prometheus-text snapshot there |
//! | `SPE_PROGRESS=1` | live single-line campaign progress on stderr |
//! | `SPE_TELEMETRY=summary` | on drop, print the [`TelemetryReport`] to stderr |
//!
//! The returned [`Telemetry`] guard restores the previously installed
//! sink when dropped, flushing the trace and writing the snapshot
//! first.

use std::io::{IsTerminal, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::recorder::Recorder;
use crate::report::TelemetryReport;
use crate::{names, JsonlSink, Sink};

/// Scoped telemetry installation for a binary; see the
/// [module docs](self).
pub struct Telemetry {
    recorder: Arc<Recorder>,
    trace: Option<Arc<JsonlSink>>,
    metrics_path: Option<PathBuf>,
    summary: bool,
    progress: Option<Progress>,
    prev: Option<Arc<dyn Sink>>,
}

struct Progress {
    stop: Arc<AtomicBool>,
    join: JoinHandle<()>,
}

fn progress_line(recorder: &Recorder) -> String {
    let snap = recorder.snapshot();
    let count = |n: &str| snap.counters.get(n).copied().unwrap_or(0);
    let mut line = String::from("spe:");
    let jobs = snap.gauges.get(names::ORCH_JOBS).map(|g| g.max).unwrap_or(0);
    line.push_str(&format!(" jobs {}/{}", count(names::ORCH_JOBS_DONE), jobs.max(0)));
    line.push_str(&format!(" | variants {}", count(names::VARIANTS)));
    line.push_str(&format!(" | candidates {}", count(names::CANDIDATES)));
    if let Some(depth) = snap.gauges.get(names::ORCH_QUEUE_DEPTH) {
        line.push_str(&format!(" | queue {}", depth.last.max(0)));
    }
    // Merge the per-verdict oracle histograms for a single p50.
    let oracle: Vec<_> = snap
        .histograms
        .iter()
        .filter(|(n, _)| n.starts_with(names::ORACLE_NS_PREFIX))
        .map(|(_, h)| h)
        .collect();
    let total: u64 = oracle.iter().map(|h| h.count).sum();
    if total > 0 {
        let sum: u64 = oracle.iter().map(|h| h.sum).sum();
        line.push_str(&format!(" | oracle mean {:.1}µs", sum as f64 / total as f64 / 1e3));
    }
    line
}

fn spawn_progress(recorder: Arc<Recorder>, interval: Duration) -> Progress {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = stop.clone();
    let join = std::thread::spawn(move || {
        let mut widest = 0usize;
        while !flag.load(Relaxed) {
            let line = progress_line(&recorder);
            widest = widest.max(line.len());
            // Pad to the widest line yet so a shrinking line leaves
            // no stale tail characters.
            eprint!("\r{line:<widest$}");
            std::io::stderr().flush().ok();
            std::thread::sleep(interval);
        }
        if widest > 0 {
            eprint!("\r{:<widest$}\r", "");
            std::io::stderr().flush().ok();
        }
    });
    Progress { stop, join }
}

impl Telemetry {
    /// Installs a global [`Recorder`] (always) plus the sinks and
    /// outputs the environment opts into. Never fails: an unwritable
    /// trace path is reported on stderr and skipped.
    pub fn install_from_env() -> Telemetry {
        let recorder = Arc::new(Recorder::new());
        let mut extra: Vec<Arc<dyn Sink>> = Vec::new();
        let trace = std::env::var_os("SPE_TRACE").and_then(|p| {
            match JsonlSink::create(&p) {
                Ok(sink) => Some(Arc::new(sink)),
                Err(e) => {
                    eprintln!("spe-telemetry: cannot open trace {}: {e}", PathBuf::from(p).display());
                    None
                }
            }
        });
        if let Some(t) = &trace {
            extra.push(t.clone());
        }
        let prev = crate::install_recorder(recorder.clone(), extra);
        let progress = std::env::var("SPE_PROGRESS")
            .map(|v| v == "1" && std::io::stderr().is_terminal() || v == "force")
            .unwrap_or(false)
            .then(|| spawn_progress(recorder.clone(), Duration::from_millis(200)));
        Telemetry {
            recorder,
            trace,
            metrics_path: std::env::var_os("SPE_METRICS").map(PathBuf::from),
            summary: std::env::var("SPE_TELEMETRY").is_ok_and(|v| v == "summary"),
            progress,
            prev: Some(prev),
        }
    }

    /// The recorder this guard installed.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// The end-of-run summary so far.
    pub fn report(&self) -> TelemetryReport {
        TelemetryReport::from_recorder(&self.recorder)
    }

    /// Wall-clock milliseconds accumulated under the phase span
    /// `phase.<name>` (see [`names::PHASE_PREFIX`]), if any was
    /// recorded.
    pub fn phase_ms(&self, name: &str) -> Option<f64> {
        let key = format!("{}{name}", names::PHASE_PREFIX);
        let snap = self.recorder.snapshot();
        snap.histograms.get(&key).map(|h| h.sum as f64 / 1e6)
    }

    /// All recorded phases as `(name, total milliseconds)`, in
    /// name order.
    pub fn phases(&self) -> Vec<(String, f64)> {
        self.recorder
            .snapshot()
            .histograms
            .iter()
            .filter_map(|(n, h)| {
                n.strip_prefix(names::PHASE_PREFIX)
                    .map(|p| (p.to_owned(), h.sum as f64 / 1e6))
            })
            .collect()
    }
}

impl Drop for Telemetry {
    fn drop(&mut self) {
        if let Some(p) = self.progress.take() {
            p.stop.store(true, Relaxed);
            p.join.join().ok();
        }
        if let Some(t) = &self.trace {
            t.flush();
        }
        if let Some(path) = &self.metrics_path {
            let text = self.recorder.snapshot().to_prometheus("spe");
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("spe-telemetry: cannot write metrics {}: {e}", path.display());
            }
        }
        if self.summary {
            eprint!("{}", self.report());
        }
        if let Some(prev) = self.prev.take() {
            crate::uninstall_recorder(prev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_spans_are_readable_back_in_milliseconds() {
        let recorder = Arc::new(Recorder::new());
        recorder.span("phase.run", "", 2_000_000);
        recorder.span("phase.run", "", 3_000_000);
        recorder.span("phase.merge", "", 500_000);
        let t = Telemetry {
            recorder,
            trace: None,
            metrics_path: None,
            summary: false,
            progress: None,
            prev: None,
        };
        assert_eq!(t.phase_ms("run"), Some(5.0));
        assert_eq!(t.phase_ms("absent"), None);
        assert_eq!(
            t.phases(),
            vec![("merge".to_owned(), 0.5), ("run".to_owned(), 5.0)]
        );
    }

    #[test]
    fn progress_line_renders_from_counters() {
        let r = Recorder::new();
        r.counter(names::VARIANTS, 42);
        r.gauge(names::ORCH_JOBS, 8);
        r.counter(names::ORCH_JOBS_DONE, 3);
        r.histogram(format!("{}clean", names::ORACLE_NS_PREFIX).as_str(), 1500);
        let line = progress_line(&r);
        assert!(line.contains("jobs 3/8"), "{line}");
        assert!(line.contains("variants 42"), "{line}");
        assert!(line.contains("oracle mean"), "{line}");
    }
}
