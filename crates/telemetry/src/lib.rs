//! Campaign-wide tracing, metrics, and profiling sinks.
//!
//! This crate is the observability seam of the SPE workspace: a single
//! [`Sink`] trait with five write-only primitives (spans, events,
//! counters, gauges, histograms), three implementations —
//!
//! * [`NullSink`] — the default; every call is an empty inlineable
//!   virtual method and [`Sink::enabled`] is `false`, so instrumented
//!   code skips even its `Instant::now` reads,
//! * [`Recorder`] — an in-memory aggregator with a lock-striped
//!   metric registry and stripe-padded atomic counters, snapshotable
//!   at any time into a [`recorder::Snapshot`], a deterministic
//!   [`report::TelemetryReport`], or Prometheus text,
//! * [`JsonlSink`] — a buffered JSONL trace writer (one record per
//!   call) for offline analysis,
//!
//! — plus [`Fanout`] to combine them. Instrumented crates read the
//! process-global sink via [`global`] (the `log`-crate idiom: the
//! handle is installed once by the binary, library code never threads
//! it through signatures), so **every** campaign entry point is
//! instrumented and a process that never calls [`install`] pays only
//! a relaxed atomic load plus a no-op virtual call per record.
//!
//! Sinks are strictly write-only: nothing recorded here can feed back
//! into campaign control flow, which is what keeps instrumented
//! campaign reports byte-identical to uninstrumented ones (pinned by
//! `tests/telemetry_identity.rs` at 1/2/4/16 workers across a
//! kill/resume cycle).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

pub mod jsonl;
pub mod names;
pub mod recorder;
pub mod report;
pub mod setup;

pub use jsonl::JsonlSink;
pub use recorder::Recorder;
pub use report::TelemetryReport;
pub use setup::Telemetry;

/// A write-only telemetry sink.
///
/// All methods have empty default bodies so an implementation only
/// overrides what it aggregates; [`NullSink`] overrides nothing but
/// [`Sink::enabled`]. Implementations must be thread-safe — campaign
/// workers record concurrently — and must never panic: telemetry is
/// advisory and a sink failure must not take a campaign down.
pub trait Sink: Send + Sync {
    /// Whether this sink records anything at all.
    ///
    /// Hot paths gate *measurement* (clock reads, queue-depth scans,
    /// label formatting) on this, not just recording, so a disabled
    /// sink costs one virtual call per site.
    fn enabled(&self) -> bool {
        true
    }

    /// Records a point-in-time occurrence (a kill, a degradation).
    fn event(&self, name: &str, detail: &str) {
        let _ = (name, detail);
    }

    /// Records a completed span of `nanos` wall-clock nanoseconds.
    ///
    /// Aggregating sinks fold spans into a histogram keyed by `name`;
    /// trace sinks additionally keep `detail` (e.g. `file=3 shard=1`).
    fn span(&self, name: &str, detail: &str, nanos: u64) {
        let _ = (name, detail, nanos);
    }

    /// Adds `delta` to the monotonic counter `name`.
    fn counter(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the gauge `name` to `value` (last-write-wins; aggregating
    /// sinks also track the maximum ever set).
    fn gauge(&self, name: &str, value: i64) {
        let _ = (name, value);
    }

    /// Records one observation of `value` into the histogram `name`.
    fn histogram(&self, name: &str, value: u64) {
        let _ = (name, value);
    }
}

/// The no-op sink: [`Sink::enabled`] is `false` and every record is a
/// default empty method.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn enabled(&self) -> bool {
        false
    }
}

/// Broadcasts every record to each inner sink.
///
/// [`Sink::enabled`] is true iff any inner sink is enabled, so a
/// fanout of disabled sinks still short-circuits hot-path measurement.
pub struct Fanout(pub Vec<Arc<dyn Sink>>);

impl Sink for Fanout {
    fn enabled(&self) -> bool {
        self.0.iter().any(|s| s.enabled())
    }

    fn event(&self, name: &str, detail: &str) {
        for s in &self.0 {
            s.event(name, detail);
        }
    }

    fn span(&self, name: &str, detail: &str, nanos: u64) {
        for s in &self.0 {
            s.span(name, detail, nanos);
        }
    }

    fn counter(&self, name: &str, delta: u64) {
        for s in &self.0 {
            s.counter(name, delta);
        }
    }

    fn gauge(&self, name: &str, value: i64) {
        for s in &self.0 {
            s.gauge(name, value);
        }
    }

    fn histogram(&self, name: &str, value: u64) {
        for s in &self.0 {
            s.histogram(name, value);
        }
    }
}

/// A clock read gated on [`Sink::enabled`]: against a disabled sink
/// the timer never touches the monotonic clock and
/// [`Timer::stop_nanos`] reports zero.
#[derive(Debug)]
pub struct Timer(Option<Instant>);

impl Timer {
    /// Starts timing iff `sink` is enabled.
    pub fn start(sink: &dyn Sink) -> Timer {
        Timer(sink.enabled().then(Instant::now))
    }

    /// Starts timing unconditionally (for cold paths whose duration
    /// the caller also wants, e.g. per-phase wall clock in the demo
    /// binaries).
    pub fn always() -> Timer {
        Timer(Some(Instant::now()))
    }

    /// Elapsed nanoseconds since [`Timer::start`], saturated to
    /// `u64::MAX`; zero for a timer started against a disabled sink.
    pub fn stop_nanos(&self) -> u64 {
        self.0
            .map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    }
}

/// Runs `f` under a span named `name`, recording it to `sink` as both
/// a span and (via aggregating sinks) a duration histogram. Returns
/// `f`'s result.
pub fn time_span<T>(sink: &dyn Sink, name: &str, detail: &str, f: impl FnOnce() -> T) -> T {
    let t = Timer::start(sink);
    let out = f();
    if sink.enabled() {
        sink.span(name, detail, t.stop_nanos());
    }
    out
}

fn global_cell() -> &'static RwLock<Arc<dyn Sink>> {
    static CELL: OnceLock<RwLock<Arc<dyn Sink>>> = OnceLock::new();
    CELL.get_or_init(|| RwLock::new(Arc::new(NullSink)))
}

fn recorder_cell() -> &'static RwLock<Option<Arc<Recorder>>> {
    static CELL: OnceLock<RwLock<Option<Arc<Recorder>>>> = OnceLock::new();
    CELL.get_or_init(|| RwLock::new(None))
}

/// Replaces the process-global sink, returning the previous one.
///
/// Instrumented code captures [`global`] once per scope, so a swap
/// takes effect for scopes entered after it returns.
pub fn install(sink: Arc<dyn Sink>) -> Arc<dyn Sink> {
    std::mem::replace(&mut *global_cell().write().unwrap_or_else(|e| e.into_inner()), sink)
}

/// The process-global sink — [`NullSink`] until [`install`] is called.
pub fn global() -> Arc<dyn Sink> {
    global_cell().read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Installs `recorder` as both the process-global sink and the
/// process-global recorder handle (see [`recorder()`]), optionally
/// fanned out with `extra` sinks. Returns the previously installed
/// sink.
pub fn install_recorder(recorder: Arc<Recorder>, extra: Vec<Arc<dyn Sink>>) -> Arc<dyn Sink> {
    *recorder_cell().write().unwrap_or_else(|e| e.into_inner()) = Some(recorder.clone());
    if extra.is_empty() {
        install(recorder)
    } else {
        let mut sinks: Vec<Arc<dyn Sink>> = vec![recorder];
        sinks.extend(extra);
        install(Arc::new(Fanout(sinks)))
    }
}

/// The process-global [`Recorder`] installed by [`install_recorder`]
/// (or [`Telemetry::install_from_env`]), if any — how binaries read
/// back phase spans and end-of-run summaries without threading a
/// handle through library code.
pub fn recorder() -> Option<Arc<Recorder>> {
    recorder_cell().read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Clears the process-global recorder handle and restores `prev` as
/// the global sink (used by [`Telemetry`] on drop so scoped
/// instrumentation composes with tests).
pub fn uninstall_recorder(prev: Arc<dyn Sink>) {
    *recorder_cell().write().unwrap_or_else(|e| e.into_inner()) = None;
    install(prev);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_timer_skips_the_clock() {
        let null = NullSink;
        assert!(!null.enabled());
        let t = Timer::start(&null);
        assert_eq!(t.stop_nanos(), 0);
        assert!(Timer::always().stop_nanos() < u64::MAX);
    }

    #[test]
    fn fanout_enabled_iff_any_member_enabled() {
        let all_null = Fanout(vec![Arc::new(NullSink), Arc::new(NullSink)]);
        assert!(!all_null.enabled());
        let mixed = Fanout(vec![Arc::new(NullSink), Arc::new(Recorder::new())]);
        assert!(mixed.enabled());
    }

    #[test]
    fn fanout_broadcasts_to_all_members() {
        let a = Arc::new(Recorder::new());
        let b = Arc::new(Recorder::new());
        let fan = Fanout(vec![a.clone(), b.clone()]);
        fan.counter("c", 2);
        fan.histogram("h", 7);
        fan.gauge("g", -3);
        fan.span("s", "", 100);
        for r in [&a, &b] {
            let snap = r.snapshot();
            assert_eq!(snap.counters["c"], 2);
            assert_eq!(snap.gauges["g"].last, -3);
            assert_eq!(snap.histograms["h"].count, 1);
            assert_eq!(snap.histograms["s"].sum, 100);
        }
    }
}
