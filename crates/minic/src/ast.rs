//! Abstract syntax tree for the mini-C language.
//!
//! The subset covers everything appearing in the SPE paper's figures:
//! global/local declarations with initializers, pointers, arrays, structs,
//! functions, `if`/`while`/`for`/`do`/`goto`/labels, the conditional
//! operator, calls, and compound assignment. Every *use* of a variable is
//! an [`ExprKind::Ident`] carrying a unique [`OccId`] — the raw material
//! for skeleton extraction.

use std::fmt;

/// Unique id of a variable occurrence (use site), assigned by the parser
/// in source order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OccId(pub u32);

/// Unique id of an expression node, assigned by the parser in source
/// order. Used by the compiler under test for coverage accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

/// Base (non-derived) types of mini-C.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BaseType {
    /// `void` (function returns only).
    Void,
    /// `char`.
    Char,
    /// `int`.
    Int,
    /// `unsigned` / `unsigned int`.
    UInt,
    /// `long` / `long int` / `long long`.
    Long,
    /// `float`.
    Float,
    /// `double`.
    Double,
    /// `struct <name>`.
    Struct(String),
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseType::Void => f.write_str("void"),
            BaseType::Char => f.write_str("char"),
            BaseType::Int => f.write_str("int"),
            BaseType::UInt => f.write_str("unsigned"),
            BaseType::Long => f.write_str("long"),
            BaseType::Float => f.write_str("float"),
            BaseType::Double => f.write_str("double"),
            BaseType::Struct(n) => write!(f, "struct {n}"),
        }
    }
}

/// A (possibly derived) mini-C type: base type, pointer depth and an
/// optional outermost array dimension.
///
/// ```
/// use spe_minic::ast::{BaseType, Type};
/// let t = Type { base: BaseType::Int, pointers: 1, array: Some(4) };
/// assert_eq!(t.to_string(), "int *[4]");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Type {
    /// The base type.
    pub base: BaseType,
    /// Number of `*`s.
    pub pointers: u8,
    /// Array length for `T x[N]`.
    pub array: Option<u64>,
}

impl Type {
    /// A plain scalar of the given base type.
    pub fn scalar(base: BaseType) -> Type {
        Type {
            base,
            pointers: 0,
            array: None,
        }
    }

    /// Plain `int`.
    pub fn int() -> Type {
        Type::scalar(BaseType::Int)
    }

    /// Whether two types are interchangeable for compact α-renaming
    /// (§3.2.2): identical base, pointer depth and array-ness. Array
    /// lengths must match as well — swapping differently-sized arrays
    /// changes semantics.
    pub fn renaming_compatible(&self, other: &Type) -> bool {
        self == other
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        if self.pointers > 0 {
            write!(f, " {}", "*".repeat(self.pointers as usize))?;
        }
        if let Some(n) = self.array {
            write!(f, "[{n}]")?;
        }
        Ok(())
    }
}

/// Unary prefix operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-x`
    Neg,
    /// `!x`
    Not,
    /// `~x`
    BitNot,
    /// `*p`
    Deref,
    /// `&x`
    Addr,
    /// `++x`
    PreInc,
    /// `--x`
    PreDec,
}

impl UnaryOp {
    /// Source form of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            UnaryOp::Neg => "-",
            UnaryOp::Not => "!",
            UnaryOp::BitNot => "~",
            UnaryOp::Deref => "*",
            UnaryOp::Addr => "&",
            UnaryOp::PreInc => "++",
            UnaryOp::PreDec => "--",
        }
    }
}

/// Postfix `++`/`--`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PostOp {
    /// `x++`
    Inc,
    /// `x--`
    Dec,
}

impl PostOp {
    /// Source form of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            PostOp::Inc => "++",
            PostOp::Dec => "--",
        }
    }
}

/// Binary operators in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `||`
    LogOr,
    /// `&&`
    LogAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&`
    BitAnd,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
}

impl BinaryOp {
    /// Source form of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            BinaryOp::LogOr => "||",
            BinaryOp::LogAnd => "&&",
            BinaryOp::BitOr => "|",
            BinaryOp::BitXor => "^",
            BinaryOp::BitAnd => "&",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Gt => ">",
            BinaryOp::Le => "<=",
            BinaryOp::Ge => ">=",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
        }
    }

    /// Precedence level; higher binds tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinaryOp::LogOr => 1,
            BinaryOp::LogAnd => 2,
            BinaryOp::BitOr => 3,
            BinaryOp::BitXor => 4,
            BinaryOp::BitAnd => 5,
            BinaryOp::Eq | BinaryOp::Ne => 6,
            BinaryOp::Lt | BinaryOp::Gt | BinaryOp::Le | BinaryOp::Ge => 7,
            BinaryOp::Shl | BinaryOp::Shr => 8,
            BinaryOp::Add | BinaryOp::Sub => 9,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Rem => 10,
        }
    }
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
    /// `%=`
    Rem,
}

impl AssignOp {
    /// Source form of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::Add => "+=",
            AssignOp::Sub => "-=",
            AssignOp::Mul => "*=",
            AssignOp::Div => "/=",
            AssignOp::Rem => "%=",
        }
    }

    /// The compound operator's underlying binary operation, if any.
    pub fn binary(self) -> Option<BinaryOp> {
        match self {
            AssignOp::Assign => None,
            AssignOp::Add => Some(BinaryOp::Add),
            AssignOp::Sub => Some(BinaryOp::Sub),
            AssignOp::Mul => Some(BinaryOp::Mul),
            AssignOp::Div => Some(BinaryOp::Div),
            AssignOp::Rem => Some(BinaryOp::Rem),
        }
    }
}

/// A variable use site: the name as written plus its occurrence id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ident {
    /// Source name.
    pub name: String,
    /// Unique occurrence id (a hole candidate).
    pub occ: OccId,
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Unique node id.
    pub id: ExprId,
    /// The expression's form.
    pub kind: ExprKind,
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Character literal (stored as its code point).
    CharLit(u8),
    /// String literal (escaped form without quotes).
    StrLit(String),
    /// Variable use.
    Ident(Ident),
    /// Prefix unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Postfix `++`/`--`.
    Post(PostOp, Box<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Assignment (left-hand side must be an lvalue).
    Assign(AssignOp, Box<Expr>, Box<Expr>),
    /// `c ? t : e`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Direct function call.
    Call(String, Vec<Expr>),
    /// `a[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// `s.f` (`arrow = false`) or `p->f` (`arrow = true`).
    Member(Box<Expr>, String, bool),
    /// `(T) e`.
    Cast(Type, Box<Expr>),
    /// Comma expression `a, b`.
    Comma(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Visits every variable use site in evaluation order.
    pub fn for_each_ident<'a, F: FnMut(&'a Ident)>(&'a self, f: &mut F) {
        match &self.kind {
            ExprKind::IntLit(_) | ExprKind::CharLit(_) | ExprKind::StrLit(_) => {}
            ExprKind::Ident(id) => f(id),
            ExprKind::Unary(_, e) | ExprKind::Post(_, e) | ExprKind::Cast(_, e) => {
                e.for_each_ident(f)
            }
            ExprKind::Binary(_, a, b)
            | ExprKind::Assign(_, a, b)
            | ExprKind::Index(a, b)
            | ExprKind::Comma(a, b) => {
                a.for_each_ident(f);
                b.for_each_ident(f);
            }
            ExprKind::Ternary(c, t, e) => {
                c.for_each_ident(f);
                t.for_each_ident(f);
                e.for_each_ident(f);
            }
            ExprKind::Call(_, args) => {
                for a in args {
                    a.for_each_ident(f);
                }
            }
            ExprKind::Member(e, _, _) => e.for_each_ident(f),
        }
    }

    /// Mutable counterpart of [`Expr::for_each_ident`]: visits every
    /// variable use site in evaluation order with mutable access, so a
    /// caller can rewrite the spelled name in place (the splice seam of
    /// the incremental oracle).
    pub fn for_each_ident_mut<F: FnMut(&mut Ident)>(&mut self, f: &mut F) {
        match &mut self.kind {
            ExprKind::IntLit(_) | ExprKind::CharLit(_) | ExprKind::StrLit(_) => {}
            ExprKind::Ident(id) => f(id),
            ExprKind::Unary(_, e) | ExprKind::Post(_, e) | ExprKind::Cast(_, e) => {
                e.for_each_ident_mut(f)
            }
            ExprKind::Binary(_, a, b)
            | ExprKind::Assign(_, a, b)
            | ExprKind::Index(a, b)
            | ExprKind::Comma(a, b) => {
                a.for_each_ident_mut(f);
                b.for_each_ident_mut(f);
            }
            ExprKind::Ternary(c, t, e) => {
                c.for_each_ident_mut(f);
                t.for_each_ident_mut(f);
                e.for_each_ident_mut(f);
            }
            ExprKind::Call(_, args) => {
                for a in args {
                    a.for_each_ident_mut(f);
                }
            }
            ExprKind::Member(e, _, _) => e.for_each_ident_mut(f),
        }
    }
}

/// One declarator in a declaration: `int a = 1, *p;` has two.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDeclarator {
    /// Declared name.
    pub name: String,
    /// Full type (base type of the declaration plus per-declarator
    /// pointers/array).
    pub ty: Type,
    /// Optional initializer.
    pub init: Option<Expr>,
}

/// Loop initialization clause of a `for` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ForInit {
    /// `for (int i = 0; …)`.
    Decl(Vec<VarDeclarator>),
    /// `for (i = 0; …)`.
    Expr(Expr),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Local declaration.
    Decl(Vec<VarDeclarator>),
    /// `{ … }` — introduces a scope.
    Block(Vec<Stmt>),
    /// `if (c) t [else e]`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while (c) body`.
    While(Expr, Box<Stmt>),
    /// `do body while (c);`.
    DoWhile(Box<Stmt>, Expr),
    /// `for (init; cond; step) body` — introduces a scope for `init`.
    For(Option<ForInit>, Option<Expr>, Option<Expr>, Box<Stmt>),
    /// `return [e];`.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `goto label;`
    Goto(String),
    /// `label: stmt`.
    Label(String, Box<Stmt>),
    /// `;`
    Empty,
}

impl Stmt {
    /// Visits every variable use site under this statement in source
    /// order with mutable access (see [`Program::for_each_ident_mut`]).
    pub fn for_each_ident_mut<F: FnMut(&mut Ident)>(&mut self, f: &mut F) {
        match self {
            Stmt::Expr(e) => e.for_each_ident_mut(f),
            Stmt::Decl(decls) => {
                for d in decls {
                    if let Some(init) = &mut d.init {
                        init.for_each_ident_mut(f);
                    }
                }
            }
            Stmt::Block(b) => {
                for s in b {
                    s.for_each_ident_mut(f);
                }
            }
            Stmt::If(c, t, e) => {
                c.for_each_ident_mut(f);
                t.for_each_ident_mut(f);
                if let Some(e) = e {
                    e.for_each_ident_mut(f);
                }
            }
            Stmt::While(c, b) => {
                c.for_each_ident_mut(f);
                b.for_each_ident_mut(f);
            }
            Stmt::DoWhile(b, c) => {
                b.for_each_ident_mut(f);
                c.for_each_ident_mut(f);
            }
            Stmt::For(init, cond, step, b) => {
                match init {
                    Some(ForInit::Decl(ds)) => {
                        for d in ds {
                            if let Some(i) = &mut d.init {
                                i.for_each_ident_mut(f);
                            }
                        }
                    }
                    Some(ForInit::Expr(e)) => e.for_each_ident_mut(f),
                    None => {}
                }
                if let Some(c) = cond {
                    c.for_each_ident_mut(f);
                }
                if let Some(st) = step {
                    st.for_each_ident_mut(f);
                }
                b.for_each_ident_mut(f);
            }
            Stmt::Return(Some(e)) => e.for_each_ident_mut(f),
            Stmt::Label(_, inner) => inner.for_each_ident_mut(f),
            Stmt::Return(None)
            | Stmt::Break
            | Stmt::Continue
            | Stmt::Goto(_)
            | Stmt::Empty => {}
        }
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements (the body's braces introduce the function scope).
    pub body: Vec<Stmt>,
    /// Whether declared `static`.
    pub is_static: bool,
}

/// A struct definition `struct S { … };`.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Struct tag.
    pub name: String,
    /// Field declarations.
    pub fields: Vec<VarDeclarator>,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Global variable declaration.
    Global(Vec<VarDeclarator>),
    /// Function definition.
    Func(Function),
    /// Struct definition.
    Struct(StructDef),
}

/// A complete translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Number of occurrence ids handed out (all `OccId`s are `< max_occ`).
    pub max_occ: u32,
    /// Number of expression ids handed out.
    pub max_expr: u32,
}

impl Program {
    /// Iterates over the function definitions.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|i| match i {
            Item::Func(f) => Some(f),
            _ => None,
        })
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions().find(|f| f.name == name)
    }

    /// Looks up a struct definition by tag.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.items.iter().find_map(|i| match i {
            Item::Struct(s) if s.name == name => Some(s),
            _ => None,
        })
    }

    /// Visits every variable use site in the whole program — global
    /// initializers then function bodies, in source order — with
    /// mutable access. Declaration/parameter names are not use sites
    /// and are not visited.
    pub fn for_each_ident_mut<F: FnMut(&mut Ident)>(&mut self, f: &mut F) {
        for item in &mut self.items {
            match item {
                Item::Global(decls) => {
                    for d in decls {
                        if let Some(init) = &mut d.init {
                            init.for_each_ident_mut(f);
                        }
                    }
                }
                Item::Func(func) => {
                    for s in &mut func.body {
                        s.for_each_ident_mut(f);
                    }
                }
                Item::Struct(_) => {}
            }
        }
    }
}
