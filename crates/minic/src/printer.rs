//! Pretty-printer for mini-C, with optional occurrence renaming.
//!
//! Printing with a rename map is how skeleton variants are *realized*:
//! every variable use site ([`crate::ast::OccId`]) can be redirected to a
//! different (visible, type-compatible) variable name while declarations
//! stay fixed.

use crate::ast::*;
use std::collections::HashMap;

/// Prints a program back to compilable mini-C source.
///
/// # Examples
///
/// ```
/// let src = "int a, b = 1;\nint main() {\n    b = b - a;\n    return 0;\n}\n";
/// let prog = spe_minic::parse(src).unwrap();
/// let printed = spe_minic::print_program(&prog);
/// let reparsed = spe_minic::parse(&printed).unwrap();
/// assert_eq!(spe_minic::print_program(&reparsed), printed); // fixpoint
/// ```
pub fn print_program(p: &Program) -> String {
    print_renamed(p, &HashMap::new())
}

/// Prints a program, substituting the name of every occurrence present in
/// `rename`. Occurrences not in the map keep their original names.
///
/// ```
/// use std::collections::HashMap;
/// use spe_minic::ast::OccId;
///
/// let prog = spe_minic::parse("int a, b; void f() { a = b; }").unwrap();
/// let mut rename = HashMap::new();
/// rename.insert(OccId(0), "b".to_string()); // first use site: a -> b
/// let out = spe_minic::print_renamed(&prog, &rename);
/// assert!(out.contains("b = b;"));
/// ```
pub fn print_renamed(p: &Program, rename: &HashMap<OccId, String>) -> String {
    let mut pr = Printer {
        out: String::new(),
        indent: 0,
        rename,
        template: None,
    };
    for item in &p.items {
        pr.item(item);
    }
    pr.out
}

/// One piece of a print *template*: either literal source text or the site
/// of a renameable variable occurrence (with its original name).
///
/// Concatenating every piece — substituting each [`TemplatePiece::Occ`]
/// with its original name — reproduces [`print_program`] byte for byte,
/// because the template printer shares the exact same traversal and only
/// diverts occurrence names into their own pieces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplatePiece {
    /// Literal text between occurrences (possibly empty).
    Text(String),
    /// A variable use site: downstream renderers splice the variant's
    /// chosen name here.
    Occ {
        /// The occurrence id of the use site.
        occ: OccId,
        /// The variable name the original program uses here.
        name: String,
    },
}

/// Prints a program into template pieces: the static text of the program
/// with every variable use site split out as a [`TemplatePiece::Occ`].
///
/// This is the compile-once half of fast variant rendering: walk the AST
/// once here, then realize any number of renamings by splicing names
/// between the static pieces, with no further AST traversal.
///
/// ```
/// use spe_minic::{parse, print_program, print_template, TemplatePiece};
///
/// let prog = parse("int a, b; void f() { a = b; }").unwrap();
/// let pieces = print_template(&prog);
/// let rebuilt: String = pieces
///     .iter()
///     .map(|p| match p {
///         TemplatePiece::Text(t) => t.as_str(),
///         TemplatePiece::Occ { name, .. } => name.as_str(),
///     })
///     .collect();
/// assert_eq!(rebuilt, print_program(&prog));
/// ```
pub fn print_template(p: &Program) -> Vec<TemplatePiece> {
    let empty = HashMap::new();
    let mut pr = Printer {
        out: String::new(),
        indent: 0,
        rename: &empty,
        template: Some(Vec::new()),
    };
    for item in &p.items {
        pr.item(item);
    }
    let mut pieces = pr.template.expect("template mode");
    pieces.push(TemplatePiece::Text(pr.out));
    pieces
}

struct Printer<'a> {
    out: String,
    indent: usize,
    rename: &'a HashMap<OccId, String>,
    /// When set, occurrence names are diverted into pieces instead of
    /// `out` (which then only accumulates the text since the last piece).
    template: Option<Vec<TemplatePiece>>,
}

impl Printer<'_> {
    fn pad(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn item(&mut self, item: &Item) {
        match item {
            Item::Global(decls) => {
                self.decl_line(decls);
                self.out.push('\n');
            }
            Item::Struct(s) => {
                self.out.push_str(&format!("struct {} {{\n", s.name));
                self.indent += 1;
                for f in &s.fields {
                    self.pad();
                    self.declarator_full(f);
                    self.out.push_str(";\n");
                }
                self.indent -= 1;
                self.out.push_str("};\n");
            }
            Item::Func(f) => {
                if f.is_static {
                    self.out.push_str("static ");
                }
                self.out.push_str(&base_of(&f.ret));
                self.out.push(' ');
                self.out.push_str(&"*".repeat(f.ret.pointers as usize));
                self.out.push_str(&f.name);
                self.out.push('(');
                if f.params.is_empty() {
                    self.out.push_str("void");
                } else {
                    for (i, p) in f.params.iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        self.out.push_str(&base_of(&p.ty));
                        self.out.push(' ');
                        self.out.push_str(&"*".repeat(p.ty.pointers as usize));
                        self.out.push_str(&p.name);
                        if let Some(n) = p.ty.array {
                            self.out.push_str(&format!("[{n}]"));
                        }
                    }
                }
                self.out.push_str(") {\n");
                self.indent += 1;
                for s in &f.body {
                    self.stmt(s);
                }
                self.indent -= 1;
                self.out.push_str("}\n");
            }
        }
    }

    fn decl_line(&mut self, decls: &[VarDeclarator]) {
        debug_assert!(!decls.is_empty(), "empty declaration");
        self.out.push_str(&base_of(&decls[0].ty));
        self.out.push(' ');
        for (i, d) in decls.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.out.push_str(&"*".repeat(d.ty.pointers as usize));
            self.out.push_str(&d.name);
            if let Some(n) = d.ty.array {
                self.out.push_str(&format!("[{n}]"));
            }
            if let Some(init) = &d.init {
                self.out.push_str(" = ");
                self.expr(init, 1);
            }
        }
        self.out.push(';');
    }

    fn declarator_full(&mut self, d: &VarDeclarator) {
        self.out.push_str(&base_of(&d.ty));
        self.out.push(' ');
        self.out.push_str(&"*".repeat(d.ty.pointers as usize));
        self.out.push_str(&d.name);
        if let Some(n) = d.ty.array {
            self.out.push_str(&format!("[{n}]"));
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Expr(e) => {
                self.pad();
                self.expr(e, 0);
                self.out.push_str(";\n");
            }
            Stmt::Decl(decls) => {
                self.pad();
                self.decl_line(decls);
                self.out.push('\n');
            }
            Stmt::Block(body) => {
                self.pad();
                self.out.push_str("{\n");
                self.indent += 1;
                for s in body {
                    self.stmt(s);
                }
                self.indent -= 1;
                self.pad();
                self.out.push_str("}\n");
            }
            Stmt::If(c, t, e) => {
                self.pad();
                self.out.push_str("if (");
                self.expr(c, 0);
                self.out.push_str(")\n");
                self.nested(t);
                if let Some(e) = e {
                    self.pad();
                    self.out.push_str("else\n");
                    self.nested(e);
                }
            }
            Stmt::While(c, b) => {
                self.pad();
                self.out.push_str("while (");
                self.expr(c, 0);
                self.out.push_str(")\n");
                self.nested(b);
            }
            Stmt::DoWhile(b, c) => {
                self.pad();
                self.out.push_str("do\n");
                self.nested(b);
                self.pad();
                self.out.push_str("while (");
                self.expr(c, 0);
                self.out.push_str(");\n");
            }
            Stmt::For(init, cond, step, b) => {
                self.pad();
                self.out.push_str("for (");
                match init {
                    Some(ForInit::Decl(d)) => self.decl_line(d),
                    Some(ForInit::Expr(e)) => {
                        self.expr(e, 0);
                        self.out.push(';');
                    }
                    None => self.out.push(';'),
                }
                if let Some(c) = cond {
                    self.out.push(' ');
                    self.expr(c, 0);
                }
                self.out.push(';');
                if let Some(st) = step {
                    self.out.push(' ');
                    self.expr(st, 0);
                }
                self.out.push_str(")\n");
                self.nested(b);
            }
            Stmt::Return(e) => {
                self.pad();
                match e {
                    Some(e) => {
                        self.out.push_str("return ");
                        self.expr(e, 0);
                        self.out.push_str(";\n");
                    }
                    None => self.out.push_str("return;\n"),
                }
            }
            Stmt::Break => {
                self.pad();
                self.out.push_str("break;\n");
            }
            Stmt::Continue => {
                self.pad();
                self.out.push_str("continue;\n");
            }
            Stmt::Goto(l) => {
                self.pad();
                self.out.push_str(&format!("goto {l};\n"));
            }
            Stmt::Label(l, inner) => {
                self.pad();
                self.out.push_str(&format!("{l}:\n"));
                self.stmt(inner);
            }
            Stmt::Empty => {
                self.pad();
                self.out.push_str(";\n");
            }
        }
    }

    /// Prints a nested statement, indenting single statements and keeping
    /// blocks at the same level.
    fn nested(&mut self, s: &Stmt) {
        if matches!(s, Stmt::Block(_)) {
            self.stmt(s);
        } else {
            self.indent += 1;
            self.stmt(s);
            self.indent -= 1;
        }
    }

    /// Precedence levels: 0 comma, 1 assignment, 2 ternary, 3..=12 binary
    /// (BinaryOp precedence + 2), 13 unary/cast, 14 postfix, 15 primary.
    fn expr(&mut self, e: &Expr, min_prec: u8) {
        let prec = expr_prec(e);
        let parens = prec < min_prec;
        if parens {
            self.out.push('(');
        }
        match &e.kind {
            ExprKind::IntLit(v) => self.out.push_str(&v.to_string()),
            ExprKind::CharLit(c) => self.out.push_str(&format!("'{}'", escape_char(*c))),
            ExprKind::StrLit(s) => self.out.push_str(&format!("\"{s}\"")),
            ExprKind::Ident(id) => {
                if let Some(pieces) = &mut self.template {
                    pieces.push(TemplatePiece::Text(std::mem::take(&mut self.out)));
                    pieces.push(TemplatePiece::Occ {
                        occ: id.occ,
                        name: id.name.clone(),
                    });
                } else {
                    let name = self.rename.get(&id.occ).unwrap_or(&id.name);
                    self.out.push_str(name);
                }
            }
            ExprKind::Unary(op, inner) => {
                self.out.push_str(op.as_str());
                // Avoid `- -x` printing as `--x` and `& &x` as `&&x`.
                if merges(op.as_str(), inner) {
                    self.out.push(' ');
                }
                self.expr(inner, 13);
            }
            ExprKind::Post(op, inner) => {
                self.expr(inner, 14);
                self.out.push_str(op.as_str());
            }
            ExprKind::Binary(op, a, b) => {
                let p = op.precedence() + 2;
                self.expr(a, p);
                self.out.push_str(&format!(" {} ", op.as_str()));
                self.expr(b, p + 1);
            }
            ExprKind::Assign(op, a, b) => {
                self.expr(a, 13);
                self.out.push_str(&format!(" {} ", op.as_str()));
                self.expr(b, 1);
            }
            ExprKind::Ternary(c, t, els) => {
                self.expr(c, 3);
                self.out.push_str(" ? ");
                self.expr(t, 0);
                self.out.push_str(" : ");
                self.expr(els, 2);
            }
            ExprKind::Call(name, args) => {
                if name == "__init_list" {
                    self.out.push('{');
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        self.expr(a, 1);
                    }
                    self.out.push('}');
                } else {
                    self.out.push_str(name);
                    self.out.push('(');
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        self.expr(a, 1);
                    }
                    self.out.push(')');
                }
            }
            ExprKind::Index(a, i) => {
                self.expr(a, 14);
                self.out.push('[');
                self.expr(i, 0);
                self.out.push(']');
            }
            ExprKind::Member(a, field, arrow) => {
                self.expr(a, 14);
                self.out.push_str(if *arrow { "->" } else { "." });
                self.out.push_str(field);
            }
            ExprKind::Cast(ty, inner) => {
                self.out.push('(');
                self.out.push_str(&base_of(ty));
                if ty.pointers > 0 {
                    self.out.push(' ');
                    self.out.push_str(&"*".repeat(ty.pointers as usize));
                }
                self.out.push(')');
                self.expr(inner, 13);
            }
            ExprKind::Comma(a, b) => {
                self.expr(a, 1);
                self.out.push_str(", ");
                self.expr(b, 1);
            }
        }
        if parens {
            self.out.push(')');
        }
    }
}

fn expr_prec(e: &Expr) -> u8 {
    match &e.kind {
        ExprKind::Comma(_, _) => 0,
        ExprKind::Assign(_, _, _) => 1,
        ExprKind::Ternary(_, _, _) => 2,
        ExprKind::Binary(op, _, _) => op.precedence() + 2,
        ExprKind::Unary(_, _) | ExprKind::Cast(_, _) => 13,
        ExprKind::Post(_, _)
        | ExprKind::Call(_, _)
        | ExprKind::Index(_, _)
        | ExprKind::Member(_, _, _) => 14,
        ExprKind::IntLit(_) | ExprKind::CharLit(_) | ExprKind::StrLit(_) | ExprKind::Ident(_) => 15,
    }
}

fn merges(op: &str, inner: &Expr) -> bool {
    match &inner.kind {
        ExprKind::Unary(i, _) => {
            let i = i.as_str();
            (op == "-" && (i == "-" || i == "--"))
                || (op == "&" && i == "&")
                || (op == "*" && i == "*")
                || (op == "+" && i == "+")
        }
        ExprKind::IntLit(v) => op == "-" && *v < 0,
        _ => false,
    }
}

fn escape_char(c: u8) -> String {
    match c {
        b'\n' => "\\n".into(),
        b'\t' => "\\t".into(),
        b'\r' => "\\r".into(),
        0 => "\\0".into(),
        b'\\' => "\\\\".into(),
        b'\'' => "\\'".into(),
        c if c.is_ascii_graphic() || c == b' ' => (c as char).to_string(),
        c => format!("\\x{c:02x}"),
    }
}

fn base_of(ty: &Type) -> String {
    ty.base.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn roundtrip(src: &str) {
        let p1 = parse(src).expect("first parse");
        let s1 = print_program(&p1);
        let p2 = parse(&s1).unwrap_or_else(|e| panic!("reparse failed: {e}\n{s1}"));
        let s2 = print_program(&p2);
        assert_eq!(s1, s2, "printer not a fixpoint for:\n{src}");
    }

    #[test]
    fn roundtrips_paper_programs() {
        roundtrip("int a, b = 1; int main() { b = b - a; if (a) a = a - b; return 0; }");
        roundtrip("int a = 0; int main() { int *p = &a, *q = &a; *p = 1; *q = 2; return a; }");
        roundtrip(
            "struct s { char c[1]; }; struct s a, b, c; int d; int e; \
             void bar(void) { e ? (d==0 ? b : c).c : (d==0 ? b : c).c; }",
        );
        roundtrip(
            "int main() { int *p = 0; trick: if (p) return *p; int x = 0; p = &x; goto trick; return 0; }",
        );
        roundtrip(
            "double u[1782225]; int a, b, d, e; static void foo(int *p1) { double c = 0.0; \
             for (; a < 1335; a++) { b = 0; for (; b < 1335; b++) c = c + u[a + 1335 * a]; \
             u[1336 * a] *= 2; } *p1 = c; } int main() { return 0; }"
                .replace("0.0", "0")
                .as_str(),
        );
    }

    #[test]
    fn roundtrips_control_flow() {
        roundtrip(
            "int i; void f() { do { i++; } while (i < 3); for (int j = 0; j < 4; j++) i += j; }",
        );
        roundtrip("int x; void f() { while (x) if (x > 2) break; else continue; }");
    }

    #[test]
    fn roundtrips_expressions() {
        roundtrip("int a, b, c; void f() { a = b + c * a - (b - c); }");
        roundtrip("int a, b; void f() { a = b << 2 | a >> 1 & 3; }");
        roundtrip("int a, b; void f() { a = a && b || !a; }");
        roundtrip("int a; int *p; void f() { *p = -a; p = &a; a = *p + ~a; }");
        roundtrip("int a, b; void f() { a = b ? a : b; a = (a, b); }");
        roundtrip("int a; void f() { a = (int) 'x'; a++; --a; }");
        roundtrip("int u[3]; int a; void f() { u[a + 1] = u[0]; }");
    }

    #[test]
    fn negative_literals_do_not_merge() {
        let p = parse("int a; void f() { a = -1; a = - -a; }").expect("parses");
        let s = print_program(&p);
        assert!(!s.contains("--"), "merged unary minuses: {s}");
        roundtrip(&s);
    }

    #[test]
    fn rename_map_changes_use_sites_only() {
        let p = parse("int a, b; void f() { a = b + a; }").expect("parses");
        // Occurrences in order: a(0), b(1), a(2).
        let mut map = HashMap::new();
        map.insert(OccId(1), "a".to_string());
        map.insert(OccId(2), "b".to_string());
        let s = print_renamed(&p, &map);
        assert!(s.contains("a = a + b;"), "got: {s}");
        assert!(s.contains("int a, b;"), "declarations must not change: {s}");
    }

    #[test]
    fn template_pieces_reassemble_to_print_program() {
        let sources = [
            "int a, b = 1; int main() { b = b - a; if (a) a = a - b; return 0; }",
            "int a = 0; int main() { int *p = &a, *q = &a; *p = 1; *q = 2; return a; }",
            "int u[3]; int a; void f() { u[a + 1] = u[0]; a = a ? -a : (a, a); }",
            "int g; void f() { for (int j = 0; j < 4; j++) g += j; }",
        ];
        for src in sources {
            let p = parse(src).expect("parses");
            let pieces = print_template(&p);
            let rebuilt: String = pieces
                .iter()
                .map(|piece| match piece {
                    TemplatePiece::Text(t) => t.as_str(),
                    TemplatePiece::Occ { name, .. } => name.as_str(),
                })
                .collect();
            assert_eq!(rebuilt, print_program(&p), "template drifted for {src}");
        }
    }

    #[test]
    fn template_substitution_matches_print_renamed() {
        let p = parse("int a, b; void f() { a = b + a; }").expect("parses");
        let mut map = HashMap::new();
        map.insert(OccId(1), "a".to_string());
        map.insert(OccId(2), "b".to_string());
        let spliced: String = print_template(&p)
            .iter()
            .map(|piece| match piece {
                TemplatePiece::Text(t) => t.clone(),
                TemplatePiece::Occ { occ, name } => map.get(occ).unwrap_or(name).clone(),
            })
            .collect();
        assert_eq!(spliced, print_renamed(&p, &map));
    }

    #[test]
    fn prints_brace_initializers() {
        roundtrip("int c[2] = {0, 1}; int d = 0;");
    }

    #[test]
    fn printed_ternary_member_is_parenthesized() {
        roundtrip(
            "struct s { char c[1]; }; struct s b, c; int d; void f() { (d == 0 ? b : c).c; }",
        );
    }
}
