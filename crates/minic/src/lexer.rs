//! Lexer for mini-C.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds produced by the lexer.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Character literal.
    Char(u8),
    /// String literal (body, escapes kept verbatim).
    Str(String),
    /// Any punctuation / operator, e.g. `"+="`, `"{"`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::Char(c) => write!(f, "char literal `{}`", *c as char),
            Tok::Str(s) => write!(f, "string literal \"{s}\""),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's kind and payload.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Error produced for unlexable input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Explanation.
    pub message: String,
    /// Where the problem is.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

const PUNCTS3: &[&str] = &["<<=", ">>="];
const PUNCTS2: &[&str] = &[
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "->", "++", "--",
];
const PUNCTS1: &[&str] = &[
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^", "(", ")", "{", "}", "[", "]",
    ";", ",", "?", ":", ".",
];

/// Lexes mini-C source into tokens.
///
/// Line (`//`) and block (`/* */`) comments are skipped; preprocessor
/// lines (starting with `#`) are skipped wholesale, matching how the
/// paper's pipeline treats already-preprocessed test files.
///
/// # Errors
///
/// Returns [`LexError`] on unterminated literals/comments or stray bytes.
///
/// # Examples
///
/// ```
/// use spe_minic::lexer::{lex, Tok};
/// let toks = lex("int a = 1; // x").unwrap();
/// assert_eq!(toks.len(), 6); // int a = 1 ; EOF
/// assert_eq!(toks[0].tok, Tok::Ident("int".into()));
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    let mut out = Vec::new();

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { line, col };
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                bump!();
            }
            b'#' => {
                // Skip the rest of the preprocessor line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                bump!();
                bump!();
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated block comment".into(),
                            pos,
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
            }
            b'0'..=b'9' => {
                let start = i;
                if c == b'0' && i + 1 < bytes.len() && (bytes[i + 1] | 32) == b'x' {
                    bump!();
                    bump!();
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        bump!();
                    }
                    let text = &src[start + 2..i];
                    let v = i64::from_str_radix(text, 16).map_err(|e| LexError {
                        message: format!("bad hex literal: {e}"),
                        pos,
                    })?;
                    skip_int_suffix(bytes, &mut i, &mut line, &mut col);
                    out.push(Token {
                        tok: Tok::Int(v),
                        pos,
                    });
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        bump!();
                    }
                    let text = &src[start..i];
                    let v: i64 = text.parse().map_err(|e| LexError {
                        message: format!("bad integer literal: {e}"),
                        pos,
                    })?;
                    skip_int_suffix(bytes, &mut i, &mut line, &mut col);
                    out.push(Token {
                        tok: Tok::Int(v),
                        pos,
                    });
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                out.push(Token {
                    tok: Tok::Ident(src[start..i].to_string()),
                    pos,
                });
            }
            b'\'' => {
                bump!();
                if i >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated char literal".into(),
                        pos,
                    });
                }
                let v = if bytes[i] == b'\\' {
                    bump!();
                    let esc = bytes.get(i).copied().ok_or_else(|| LexError {
                        message: "unterminated escape".into(),
                        pos,
                    })?;
                    bump!();
                    unescape(esc)
                } else {
                    let v = bytes[i];
                    bump!();
                    v
                };
                if i >= bytes.len() || bytes[i] != b'\'' {
                    return Err(LexError {
                        message: "unterminated char literal".into(),
                        pos,
                    });
                }
                bump!();
                out.push(Token {
                    tok: Tok::Char(v),
                    pos,
                });
            }
            b'"' => {
                bump!();
                let start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' {
                        bump!();
                        if i >= bytes.len() {
                            break;
                        }
                    }
                    bump!();
                }
                if i >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        pos,
                    });
                }
                let body = src[start..i].to_string();
                bump!();
                out.push(Token {
                    tok: Tok::Str(body),
                    pos,
                });
            }
            _ => {
                let rest = &src[i..];
                let mut matched = None;
                for p in PUNCTS3.iter().chain(PUNCTS2).chain(PUNCTS1) {
                    if rest.starts_with(p) {
                        matched = Some(*p);
                        break;
                    }
                }
                match matched {
                    Some(p) => {
                        for _ in 0..p.len() {
                            bump!();
                        }
                        out.push(Token {
                            tok: Tok::Punct(p),
                            pos,
                        });
                    }
                    None => {
                        return Err(LexError {
                            message: format!("unexpected byte {:?}", c as char),
                            pos,
                        })
                    }
                }
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

fn skip_int_suffix(bytes: &[u8], i: &mut usize, line: &mut u32, col: &mut u32) {
    while *i < bytes.len() && matches!(bytes[*i] | 32, b'u' | b'l') {
        if bytes[*i] == b'\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
        *i += 1;
    }
}

fn unescape(esc: u8) -> u8 {
    match esc {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        b'\\' => b'\\',
        b'\'' => b'\'',
        b'"' => b'"',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("int a=1;"),
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("a".into()),
                Tok::Punct("="),
                Tok::Int(1),
                Tok::Punct(";"),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_compound_operators() {
        assert_eq!(
            kinds("a<<=b >>= c << >> <= >= == != && || ++ -- ->"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<<="),
                Tok::Ident("b".into()),
                Tok::Punct(">>="),
                Tok::Ident("c".into()),
                Tok::Punct("<<"),
                Tok::Punct(">>"),
                Tok::Punct("<="),
                Tok::Punct(">="),
                Tok::Punct("=="),
                Tok::Punct("!="),
                Tok::Punct("&&"),
                Tok::Punct("||"),
                Tok::Punct("++"),
                Tok::Punct("--"),
                Tok::Punct("->"),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments_and_preprocessor() {
        assert_eq!(
            kinds("#include <stdio.h>\nint /* hi */ x; // done"),
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Punct(";"),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn hex_and_suffixed_literals() {
        assert_eq!(
            kinds("0x10 42u 7L"),
            vec![Tok::Int(16), Tok::Int(42), Tok::Int(7), Tok::Eof]
        );
    }

    #[test]
    fn char_and_string_literals() {
        assert_eq!(
            kinds(r#"'a' '\n' "hi\n""#),
            vec![
                Tok::Char(b'a'),
                Tok::Char(b'\n'),
                Tok::Str("hi\\n".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("int\n  x;").expect("lexes");
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn rejects_stray_bytes() {
        assert!(lex("int a @ b;").is_err());
    }
}
