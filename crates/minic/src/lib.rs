//! Mini-C frontend for skeletal program enumeration.
//!
//! A from-scratch C-subset frontend standing in for the Clang-based
//! skeleton extractor of the SPE paper (PLDI 2017). It provides everything
//! SPE needs from a frontend:
//!
//! * [`lexer`] / [`parser`] — source to AST, with every variable use site
//!   tagged with a unique [`ast::OccId`];
//! * [`sema`] — scope tree, declaration resolution, and per-use-site
//!   visible/type-compatible variable sets (the hole variable sets `v_i`);
//! * [`printer`] — source emission with an occurrence rename map, which is
//!   how enumerated skeleton variants are realized as compilable programs.
//!
//! The subset covers the constructs in all of the paper's figures:
//! globals, pointers, arrays, structs, `if`/`while`/`for`/`do`, `goto` and
//! labels, the conditional operator, calls, compound assignment and
//! brace initializers.
//!
//! # Quick start
//!
//! ```
//! let src = "int a, b = 1; int main() { b = b - a; if (a) a = a - b; return 0; }";
//! let prog = spe_minic::parse(src)?;
//! let table = spe_minic::analyze(&prog)?;
//! // Figure 1 of the paper: 7 variable use sites (holes).
//! assert_eq!(table.occurrences().len(), 7);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod sema;

pub use ast::Program;
pub use parser::{parse, ParseError};
pub use printer::{print_program, print_renamed, print_template, TemplatePiece};
pub use sema::{analyze, SemaError, SymbolTable};
