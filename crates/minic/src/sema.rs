//! Scope and symbol analysis for mini-C.
//!
//! The analysis builds a scope tree, registers every declared variable,
//! resolves every use site ([`crate::ast::OccId`]) to its declaration, and
//! answers the question skeleton extraction needs: *which variables are
//! visible (and type-compatible) at each hole?* Visibility follows C
//! rules: a variable is usable only after its declaration point, and inner
//! declarations shadow outer ones of the same name.

use crate::ast::*;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a scope in the [`SymbolTable`]'s scope tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScopeId(pub usize);

/// Identifier of a declared variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// What kind of scope a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// The file-level scope.
    Global,
    /// A function's top-level scope (parameters + body); payload is the
    /// index into [`SymbolTable::functions`].
    Function(usize),
    /// A block or `for`-init scope.
    Block,
}

/// A scope tree node.
#[derive(Debug, Clone)]
pub struct Scope {
    /// This scope's id.
    pub id: ScopeId,
    /// Parent scope (`None` for the global scope).
    pub parent: Option<ScopeId>,
    /// The scope's kind.
    pub kind: ScopeKind,
    /// Variables declared directly in this scope, in declaration order.
    pub vars: Vec<VarId>,
}

/// Storage class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// File-scope variable.
    Global,
    /// Function parameter.
    Param,
    /// Block-scope variable.
    Local,
}

/// A declared variable.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// This variable's id.
    pub id: VarId,
    /// Declared name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Scope the declaration lives in.
    pub scope: ScopeId,
    /// Storage class.
    pub kind: VarKind,
    /// Enclosing function index, if any.
    pub func: Option<usize>,
    /// Declaration sequence number (visibility starts here).
    pub seq: u32,
}

/// A resolved variable use site.
#[derive(Debug, Clone)]
pub struct OccInfo {
    /// The occurrence id from the AST.
    pub occ: OccId,
    /// The variable it resolves to.
    pub var: VarId,
    /// The innermost scope containing the occurrence.
    pub scope: ScopeId,
    /// Enclosing function index, if any (global initializers have none).
    pub func: Option<usize>,
    /// Sequence number of the occurrence (for visibility comparisons).
    pub seq: u32,
}

/// Error produced when resolution fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemaError {
    /// Explanation, including the offending name.
    pub message: String,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "semantic error: {}", self.message)
    }
}

impl std::error::Error for SemaError {}

/// The result of scope analysis.
#[derive(Debug, Clone)]
pub struct SymbolTable {
    scopes: Vec<Scope>,
    vars: Vec<VarInfo>,
    occs: Vec<OccInfo>,
    occ_index: HashMap<OccId, usize>,
    functions: Vec<String>,
}

impl SymbolTable {
    /// All scopes; index 0 is the global scope.
    pub fn scopes(&self) -> &[Scope] {
        &self.scopes
    }

    /// All declared variables.
    pub fn vars(&self) -> &[VarInfo] {
        &self.vars
    }

    /// All resolved use sites, in source order.
    pub fn occurrences(&self) -> &[OccInfo] {
        &self.occs
    }

    /// Function names, indexed by the `func` fields.
    pub fn functions(&self) -> &[String] {
        &self.functions
    }

    /// Looks up a use site by its AST occurrence id.
    pub fn occurrence(&self, occ: OccId) -> Option<&OccInfo> {
        self.occ_index.get(&occ).map(|&i| &self.occs[i])
    }

    /// A variable's info.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.0]
    }

    /// A scope's info.
    pub fn scope(&self, id: ScopeId) -> &Scope {
        &self.scopes[id.0]
    }

    /// Whether `anc` is `s` or one of its ancestors.
    pub fn is_ancestor_or_self(&self, anc: ScopeId, s: ScopeId) -> bool {
        let mut cur = Some(s);
        while let Some(c) = cur {
            if c == anc {
                return true;
            }
            cur = self.scopes[c.0].parent;
        }
        false
    }

    /// The variables *usable* at a given occurrence: declared before it in
    /// an enclosing scope and not shadowed by a nearer declaration of the
    /// same name at that point. This is the hole variable set `v_i` of the
    /// paper, before type filtering.
    pub fn visible_vars(&self, occ: &OccInfo) -> Vec<VarId> {
        let mut out = Vec::new();
        let mut taken: HashMap<&str, ()> = HashMap::new();
        let mut cur = Some(occ.scope);
        while let Some(sid) = cur {
            let scope = &self.scopes[sid.0];
            // Innermost-first; within a scope, later declarations shadow
            // nothing (names are unique per scope in valid C), so order is
            // irrelevant apart from the seq check.
            for &vid in &scope.vars {
                let v = &self.vars[vid.0];
                if v.seq < occ.seq && !taken.contains_key(v.name.as_str()) {
                    taken.insert(v.name.as_str(), ());
                    out.push(vid);
                }
            }
            cur = scope.parent;
        }
        out.sort_unstable();
        out
    }

    /// [`Self::visible_vars`] filtered to variables type-compatible with
    /// the occurrence's resolved variable — the allowed set under the
    /// paper's type-aware compact α-renaming (§3.2.2).
    pub fn compatible_vars(&self, occ: &OccInfo) -> Vec<VarId> {
        let want = &self.var(occ.var).ty;
        self.visible_vars(occ)
            .into_iter()
            .filter(|&v| self.var(v).ty.renaming_compatible(want))
            .collect()
    }
}

/// Runs scope analysis over a parsed program.
///
/// # Errors
///
/// Returns [`SemaError`] when a use site refers to an undeclared (or
/// not-yet-declared) variable.
///
/// # Examples
///
/// ```
/// let prog = spe_minic::parse("int a, b; void f() { int c; c = a + b; }").unwrap();
/// let table = spe_minic::analyze(&prog).unwrap();
/// assert_eq!(table.vars().len(), 3);
/// assert_eq!(table.occurrences().len(), 3); // c, a, b
/// ```
pub fn analyze(p: &Program) -> Result<SymbolTable, SemaError> {
    let mut a = Analyzer {
        table: SymbolTable {
            scopes: vec![Scope {
                id: ScopeId(0),
                parent: None,
                kind: ScopeKind::Global,
                vars: Vec::new(),
            }],
            vars: Vec::new(),
            occs: Vec::new(),
            occ_index: HashMap::new(),
            functions: Vec::new(),
        },
        seq: 0,
        current_func: None,
    };
    let global = ScopeId(0);
    // Pass 1 over items in order (C requires declaration before use).
    for item in &p.items {
        match item {
            Item::Global(decls) => {
                for d in decls {
                    a.declare(d, global, VarKind::Global)?;
                }
            }
            Item::Struct(_) => {}
            Item::Func(f) => {
                let fidx = a.table.functions.len();
                a.table.functions.push(f.name.clone());
                a.current_func = Some(fidx);
                let fscope = a.push_scope(global, ScopeKind::Function(fidx));
                for param in &f.params {
                    a.declare_raw(&param.name, &param.ty, fscope, VarKind::Param);
                }
                for s in &f.body {
                    a.stmt(s, fscope)?;
                }
                a.current_func = None;
            }
        }
    }
    Ok(a.table)
}

struct Analyzer {
    table: SymbolTable,
    seq: u32,
    current_func: Option<usize>,
}

impl Analyzer {
    fn push_scope(&mut self, parent: ScopeId, kind: ScopeKind) -> ScopeId {
        let id = ScopeId(self.table.scopes.len());
        self.table.scopes.push(Scope {
            id,
            parent: Some(parent),
            kind,
            vars: Vec::new(),
        });
        id
    }

    fn declare_raw(&mut self, name: &str, ty: &Type, scope: ScopeId, kind: VarKind) -> VarId {
        let id = VarId(self.table.vars.len());
        self.seq += 1;
        self.table.vars.push(VarInfo {
            id,
            name: name.to_string(),
            ty: ty.clone(),
            scope,
            kind,
            func: self.current_func,
            seq: self.seq,
        });
        self.table.scopes[scope.0].vars.push(id);
        id
    }

    fn declare(
        &mut self,
        d: &VarDeclarator,
        scope: ScopeId,
        kind: VarKind,
    ) -> Result<(), SemaError> {
        // The declared name is in scope inside its own initializer (C99
        // §6.2.1p7), so declare first.
        self.declare_raw(&d.name, &d.ty, scope, kind);
        if let Some(init) = &d.init {
            self.expr(init, scope)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt, scope: ScopeId) -> Result<(), SemaError> {
        match s {
            Stmt::Expr(e) => self.expr(e, scope),
            Stmt::Decl(decls) => {
                for d in decls {
                    self.declare(d, scope, VarKind::Local)?;
                }
                Ok(())
            }
            Stmt::Block(body) => {
                let inner = self.push_scope(scope, ScopeKind::Block);
                for s in body {
                    self.stmt(s, inner)?;
                }
                Ok(())
            }
            Stmt::If(c, t, e) => {
                self.expr(c, scope)?;
                self.stmt(t, scope)?;
                if let Some(e) = e {
                    self.stmt(e, scope)?;
                }
                Ok(())
            }
            Stmt::While(c, b) => {
                self.expr(c, scope)?;
                self.stmt(b, scope)
            }
            Stmt::DoWhile(b, c) => {
                self.stmt(b, scope)?;
                self.expr(c, scope)
            }
            Stmt::For(init, cond, step, b) => {
                let inner = self.push_scope(scope, ScopeKind::Block);
                match init {
                    Some(ForInit::Decl(decls)) => {
                        for d in decls {
                            self.declare(d, inner, VarKind::Local)?;
                        }
                    }
                    Some(ForInit::Expr(e)) => self.expr(e, inner)?,
                    None => {}
                }
                if let Some(c) = cond {
                    self.expr(c, inner)?;
                }
                if let Some(st) = step {
                    self.expr(st, inner)?;
                }
                self.stmt(b, inner)
            }
            Stmt::Return(Some(e)) => self.expr(e, scope),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue | Stmt::Goto(_) | Stmt::Empty => {
                Ok(())
            }
            Stmt::Label(_, inner) => self.stmt(inner, scope),
        }
    }

    fn expr(&mut self, e: &Expr, scope: ScopeId) -> Result<(), SemaError> {
        match &e.kind {
            ExprKind::IntLit(_) | ExprKind::CharLit(_) | ExprKind::StrLit(_) => Ok(()),
            ExprKind::Ident(id) => self.resolve(id, scope),
            ExprKind::Unary(_, a) | ExprKind::Post(_, a) | ExprKind::Cast(_, a) => {
                self.expr(a, scope)
            }
            ExprKind::Binary(_, a, b)
            | ExprKind::Assign(_, a, b)
            | ExprKind::Index(a, b)
            | ExprKind::Comma(a, b) => {
                self.expr(a, scope)?;
                self.expr(b, scope)
            }
            ExprKind::Ternary(c, t, els) => {
                self.expr(c, scope)?;
                self.expr(t, scope)?;
                self.expr(els, scope)
            }
            ExprKind::Call(_, args) => {
                for a in args {
                    self.expr(a, scope)?;
                }
                Ok(())
            }
            ExprKind::Member(a, _, _) => self.expr(a, scope),
        }
    }

    fn resolve(&mut self, id: &Ident, scope: ScopeId) -> Result<(), SemaError> {
        self.seq += 1;
        let seq = self.seq;
        // Walk the scope chain innermost-first; pick the first matching
        // name already declared (seq check enforces textual order).
        let mut cur = Some(scope);
        while let Some(sid) = cur {
            let vars = self.table.scopes[sid.0].vars.clone();
            for vid in vars {
                let v = &self.table.vars[vid.0];
                if v.name == id.name && v.seq < seq {
                    let occ = OccInfo {
                        occ: id.occ,
                        var: vid,
                        scope,
                        func: self.current_func,
                        seq,
                    };
                    self.table.occ_index.insert(id.occ, self.table.occs.len());
                    self.table.occs.push(occ);
                    return Ok(());
                }
            }
            cur = self.table.scopes[sid.0].parent;
        }
        Err(SemaError {
            message: format!("use of undeclared variable `{}`", id.name),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn table(src: &str) -> SymbolTable {
        analyze(&parse(src).expect("parses")).expect("analyzes")
    }

    #[test]
    fn resolves_paper_figure6() {
        let src = r#"
            int main() {
                int a = 1, b = 0;
                if (a) {
                    int c = 3, d = 5;
                    b = c + d;
                }
                printf("%d", a);
                printf("%d", b);
                return 0;
            }
        "#;
        let t = table(src);
        assert_eq!(t.vars().len(), 4);
        // Occurrences: a (if-cond), b, c, d (in block), a, b (printf) = 6.
        assert_eq!(t.occurrences().len(), 6);
        // The block occurrence of c sees all four variables; the printf
        // occurrence of a sees only a and b.
        let occ_c = &t.occurrences()[2];
        assert_eq!(t.var(occ_c.var).name, "c");
        assert_eq!(t.visible_vars(occ_c).len(), 4);
        let occ_a2 = &t.occurrences()[4];
        assert_eq!(t.var(occ_a2.var).name, "a");
        assert_eq!(t.visible_vars(occ_a2).len(), 2);
    }

    #[test]
    fn declaration_order_limits_visibility() {
        let t = table("void f() { int a; a = 1; int b; b = a; }");
        // Occurrence of `a` (index 0) must not see `b`.
        let occ_a = &t.occurrences()[0];
        let vis: Vec<&str> = t
            .visible_vars(occ_a)
            .into_iter()
            .map(|v| t.var(v).name.as_str())
            .collect::<Vec<_>>();
        assert_eq!(vis, vec!["a"]);
        // Occurrence of `a` in `b = a` sees both.
        let occ_last = &t.occurrences()[2];
        assert_eq!(t.visible_vars(occ_last).len(), 2);
    }

    #[test]
    fn shadowing_hides_outer_variable() {
        let t = table("int x; void f() { int x; x = 1; }");
        let occ = &t.occurrences()[0];
        let vis = t.visible_vars(occ);
        assert_eq!(vis.len(), 1, "outer x is shadowed");
        assert_eq!(t.var(occ.var).kind, VarKind::Local);
    }

    #[test]
    fn params_are_function_scope() {
        let t = table("int f(int p) { return p; }");
        let occ = &t.occurrences()[0];
        assert_eq!(t.var(occ.var).kind, VarKind::Param);
        assert_eq!(t.var(occ.var).func, Some(0));
    }

    #[test]
    fn undeclared_variable_is_an_error() {
        let p = parse("void f() { x = 1; }").expect("parses");
        assert!(analyze(&p).is_err());
    }

    #[test]
    fn use_before_declaration_is_an_error() {
        let p = parse("void f() { x = 1; int x; }").expect("parses");
        assert!(analyze(&p).is_err());
    }

    #[test]
    fn self_referential_initializer_resolves() {
        let t = table("void f() { int a = a; }");
        assert_eq!(t.occurrences().len(), 1);
        assert_eq!(t.var(t.occurrences()[0].var).name, "a");
    }

    #[test]
    fn for_init_declares_into_loop_scope() {
        let t = table("void f() { for (int i = 0; i < 3; i++) { int j = i; } }");
        // i is not visible after the loop; check scope kinds.
        let i_var = t.vars().iter().find(|v| v.name == "i").expect("i exists");
        assert_eq!(t.scope(i_var.scope).kind, ScopeKind::Block);
    }

    #[test]
    fn type_compatibility_filters_allowed_sets() {
        let t = table("int a; double d; void f() { a = 1; d = 2; }");
        let occ_a = &t.occurrences()[0];
        let compat: Vec<&str> = t
            .compatible_vars(occ_a)
            .into_iter()
            .map(|v| t.var(v).name.as_str())
            .collect();
        assert_eq!(compat, vec!["a"], "double is not int-compatible");
    }

    #[test]
    fn pointers_are_not_compatible_with_scalars() {
        let t = table("int a; int *p; void f() { a = *p; }");
        let occ_a = &t.occurrences()[0];
        assert_eq!(t.compatible_vars(occ_a).len(), 1);
        let occ_p = &t.occurrences()[1];
        assert_eq!(t.compatible_vars(occ_p).len(), 1);
    }

    #[test]
    fn globals_visible_in_all_functions() {
        let t = table("int g; void f() { g = 1; } void h() { g = 2; }");
        assert_eq!(t.occurrences().len(), 2);
        for occ in t.occurrences() {
            assert_eq!(t.var(occ.var).kind, VarKind::Global);
        }
        assert_eq!(t.functions(), &["f".to_string(), "h".to_string()]);
    }

    #[test]
    fn ancestor_relation() {
        let t = table("void f() { { int a; a = 1; } }");
        let occ = &t.occurrences()[0];
        assert!(t.is_ancestor_or_self(ScopeId(0), occ.scope));
        assert!(t.is_ancestor_or_self(occ.scope, occ.scope));
        assert!(!t.is_ancestor_or_self(occ.scope, ScopeId(0)));
    }
}
