//! Recursive-descent parser for mini-C.

use crate::ast::*;
use crate::lexer::{lex, LexError, Pos, Tok, Token};
use std::fmt;

/// Error produced for unparsable input.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Explanation.
    pub message: String,
    /// Where the problem is.
    pub pos: Pos,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            pos: e.pos,
        }
    }
}

/// Parses a mini-C translation unit.
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors (with source position).
///
/// # Examples
///
/// ```
/// let src = "int a, b = 1; int main() { b = b - a; if (a) a = a - b; return 0; }";
/// let prog = spe_minic::parse(src).unwrap();
/// assert_eq!(prog.functions().count(), 1);
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        at: 0,
        next_occ: 0,
        next_expr: 0,
    };
    p.program()
}

const TYPE_KEYWORDS: &[&str] = &[
    "void", "char", "int", "unsigned", "long", "float", "double", "struct", "short", "signed",
];
const DECL_QUALIFIERS: &[&str] = &["static", "extern", "const", "volatile", "register"];

struct Parser {
    tokens: Vec<Token>,
    at: usize,
    next_occ: u32,
    next_expr: u32,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.at].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.at + 1).min(self.tokens.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.tokens[self.at].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.at].tok.clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            pos: self.pos(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", self.peek()))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Tok::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn new_occ(&mut self) -> OccId {
        let id = OccId(self.next_occ);
        self.next_occ += 1;
        id
    }

    fn new_expr(&mut self, kind: ExprKind) -> Expr {
        let id = ExprId(self.next_expr);
        self.next_expr += 1;
        Expr { id, kind }
    }

    // ----- program structure ---------------------------------------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut items = Vec::new();
        while !matches!(self.peek(), Tok::Eof) {
            items.push(self.item()?);
        }
        Ok(Program {
            items,
            max_occ: self.next_occ,
            max_expr: self.next_expr,
        })
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        let is_static = self.skip_qualifiers();
        // struct definition?
        if self.peek_keyword("struct") && matches!(self.peek2(), Tok::Ident(_)) {
            let save = self.at;
            self.bump(); // struct
            let name = self.expect_ident()?;
            if self.eat_punct("{") {
                let mut fields = Vec::new();
                while !self.eat_punct("}") {
                    let base = self.type_base()?;
                    loop {
                        let d = self.declarator(&base)?;
                        fields.push(d);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(";")?;
                }
                self.expect_punct(";")?;
                return Ok(Item::Struct(StructDef { name, fields }));
            }
            self.at = save;
        }
        let base = self.type_base()?;
        // Peek the first declarator to decide function vs. global.
        let save = self.at;
        let mut pointers = 0u8;
        while self.eat_punct("*") {
            pointers += 1;
        }
        let name = self.expect_ident()?;
        if matches!(self.peek(), Tok::Punct("(")) {
            let mut ret = base;
            ret.pointers += pointers;
            return Ok(Item::Func(self.function(name, ret, is_static)?));
        }
        self.at = save;
        let mut decls = Vec::new();
        loop {
            let mut d = self.declarator(&base)?;
            self.skip_attributes();
            if self.eat_punct("=") {
                d.init = Some(self.initializer()?);
            }
            decls.push(d);
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(";")?;
        Ok(Item::Global(decls))
    }

    fn skip_qualifiers(&mut self) -> bool {
        let mut is_static = false;
        loop {
            if self.peek_keyword("static") {
                is_static = true;
                self.bump();
            } else if DECL_QUALIFIERS.iter().any(|q| self.peek_keyword(q)) {
                self.bump();
            } else {
                break;
            }
        }
        is_static
    }

    /// Skips GNU `__attribute__ ((…))` annotations (e.g. Figure 2's alias
    /// attribute); they are not represented in the AST.
    fn skip_attributes(&mut self) {
        while self.peek_keyword("__attribute__") {
            self.bump();
            if self.eat_punct("(") {
                let mut depth = 1;
                while depth > 0 && !matches!(self.peek(), Tok::Eof) {
                    if self.eat_punct("(") {
                        depth += 1;
                    } else if self.eat_punct(")") {
                        depth -= 1;
                    } else {
                        self.bump();
                    }
                }
            }
        }
    }

    fn type_base(&mut self) -> Result<Type, ParseError> {
        self.skip_qualifiers();
        let base = if self.eat_keyword("void") {
            BaseType::Void
        } else if self.eat_keyword("char") {
            BaseType::Char
        } else if self.eat_keyword("float") {
            BaseType::Float
        } else if self.eat_keyword("double") {
            BaseType::Double
        } else if self.eat_keyword("unsigned") {
            self.eat_keyword("int");
            self.eat_keyword("long");
            self.eat_keyword("char");
            BaseType::UInt
        } else if self.eat_keyword("signed") || self.eat_keyword("short") {
            self.eat_keyword("int");
            BaseType::Int
        } else if self.eat_keyword("long") {
            self.eat_keyword("long");
            self.eat_keyword("int");
            BaseType::Long
        } else if self.eat_keyword("int") {
            BaseType::Int
        } else if self.eat_keyword("struct") {
            BaseType::Struct(self.expect_ident()?)
        } else {
            return self.err(format!("expected type, found {}", self.peek()));
        };
        Ok(Type {
            base,
            pointers: 0,
            array: None,
        })
    }

    fn declarator(&mut self, base: &Type) -> Result<VarDeclarator, ParseError> {
        let mut ty = base.clone();
        while self.eat_punct("*") {
            ty.pointers += 1;
        }
        let name = self.expect_ident()?;
        if self.eat_punct("[") {
            let len = match self.peek() {
                Tok::Int(v) => {
                    let v = *v;
                    self.bump();
                    v as u64
                }
                Tok::Punct("]") => 0,
                other => return self.err(format!("expected array length, found {other}")),
            };
            self.expect_punct("]")?;
            ty.array = Some(len);
        }
        Ok(VarDeclarator {
            name,
            ty,
            init: None,
        })
    }

    fn initializer(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("{") {
            // Brace initializer: represent as a call to the pseudo
            // function `__init_list` so it round-trips through printing.
            let mut items = Vec::new();
            if !self.eat_punct("}") {
                loop {
                    items.push(self.initializer()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct("}")?;
            }
            Ok(self.new_expr(ExprKind::Call("__init_list".into(), items)))
        } else {
            self.assign_expr()
        }
    }

    fn function(
        &mut self,
        name: String,
        ret: Type,
        is_static: bool,
    ) -> Result<Function, ParseError> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            if self.peek_keyword("void") && matches!(self.peek2(), Tok::Punct(")")) {
                self.bump();
                self.expect_punct(")")?;
            } else {
                loop {
                    let base = self.type_base()?;
                    let d = self.declarator(&base)?;
                    params.push(Param {
                        name: d.name,
                        ty: d.ty,
                    });
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(")")?;
            }
        }
        self.skip_attributes();
        self.expect_punct("{")?;
        let mut body = Vec::new();
        while !self.eat_punct("}") {
            body.push(self.stmt()?);
        }
        Ok(Function {
            name,
            ret,
            params,
            body,
            is_static,
        })
    }

    // ----- statements ------------------------------------------------------

    fn starts_decl(&self) -> bool {
        match self.peek() {
            Tok::Ident(s) => {
                TYPE_KEYWORDS.contains(&s.as_str()) || DECL_QUALIFIERS.contains(&s.as_str())
            }
            _ => false,
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        // Label?
        if let (Tok::Ident(name), Tok::Punct(":")) = (self.peek(), self.peek2()) {
            if !TYPE_KEYWORDS.contains(&name.as_str()) && !is_stmt_keyword(name) {
                let name = name.clone();
                self.bump();
                self.bump();
                let inner = self.stmt()?;
                return Ok(Stmt::Label(name, Box::new(inner)));
            }
        }
        if self.eat_punct("{") {
            let mut body = Vec::new();
            while !self.eat_punct("}") {
                body.push(self.stmt()?);
            }
            return Ok(Stmt::Block(body));
        }
        if self.eat_punct(";") {
            return Ok(Stmt::Empty);
        }
        if self.peek_keyword("if") {
            self.bump();
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = Box::new(self.stmt()?);
            let els = if self.eat_keyword("else") {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.peek_keyword("while") {
            self.bump();
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            return Ok(Stmt::While(cond, Box::new(self.stmt()?)));
        }
        if self.peek_keyword("do") {
            self.bump();
            let body = Box::new(self.stmt()?);
            if !self.eat_keyword("while") {
                return self.err("expected `while` after do-body");
            }
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::DoWhile(body, cond));
        }
        if self.peek_keyword("for") {
            self.bump();
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else if self.starts_decl() {
                let decls = self.local_decl()?;
                Some(ForInit::Decl(decls))
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(ForInit::Expr(e))
            };
            let cond = if matches!(self.peek(), Tok::Punct(";")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            let step = if matches!(self.peek(), Tok::Punct(")")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(")")?;
            return Ok(Stmt::For(init, cond, step, Box::new(self.stmt()?)));
        }
        if self.peek_keyword("return") {
            self.bump();
            if self.eat_punct(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        if self.peek_keyword("break") {
            self.bump();
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.peek_keyword("continue") {
            self.bump();
            self.expect_punct(";")?;
            return Ok(Stmt::Continue);
        }
        if self.peek_keyword("goto") {
            self.bump();
            let label = self.expect_ident()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Goto(label));
        }
        if self.starts_decl() {
            let decls = self.local_decl()?;
            return Ok(Stmt::Decl(decls));
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    fn local_decl(&mut self) -> Result<Vec<VarDeclarator>, ParseError> {
        let base = self.type_base()?;
        let mut decls = Vec::new();
        loop {
            let mut d = self.declarator(&base)?;
            self.skip_attributes();
            if self.eat_punct("=") {
                d.init = Some(self.initializer()?);
            }
            decls.push(d);
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(";")?;
        Ok(decls)
    }

    // ----- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.assign_expr()?;
        while self.eat_punct(",") {
            let rhs = self.assign_expr()?;
            e = self.new_expr(ExprKind::Comma(Box::new(e), Box::new(rhs)));
        }
        Ok(e)
    }

    fn assign_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            Tok::Punct("=") => Some(AssignOp::Assign),
            Tok::Punct("+=") => Some(AssignOp::Add),
            Tok::Punct("-=") => Some(AssignOp::Sub),
            Tok::Punct("*=") => Some(AssignOp::Mul),
            Tok::Punct("/=") => Some(AssignOp::Div),
            Tok::Punct("%=") => Some(AssignOp::Rem),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.assign_expr()?;
            Ok(self.new_expr(ExprKind::Assign(op, Box::new(lhs), Box::new(rhs))))
        } else {
            Ok(lhs)
        }
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(0)?;
        if self.eat_punct("?") {
            let then = self.expr()?;
            self.expect_punct(":")?;
            let els = self.assign_expr()?;
            Ok(self.new_expr(ExprKind::Ternary(
                Box::new(cond),
                Box::new(then),
                Box::new(els),
            )))
        } else {
            Ok(cond)
        }
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("||") => BinaryOp::LogOr,
                Tok::Punct("&&") => BinaryOp::LogAnd,
                Tok::Punct("|") => BinaryOp::BitOr,
                Tok::Punct("^") => BinaryOp::BitXor,
                Tok::Punct("&") => BinaryOp::BitAnd,
                Tok::Punct("==") => BinaryOp::Eq,
                Tok::Punct("!=") => BinaryOp::Ne,
                Tok::Punct("<") => BinaryOp::Lt,
                Tok::Punct(">") => BinaryOp::Gt,
                Tok::Punct("<=") => BinaryOp::Le,
                Tok::Punct(">=") => BinaryOp::Ge,
                Tok::Punct("<<") => BinaryOp::Shl,
                Tok::Punct(">>") => BinaryOp::Shr,
                Tok::Punct("+") => BinaryOp::Add,
                Tok::Punct("-") => BinaryOp::Sub,
                Tok::Punct("*") => BinaryOp::Mul,
                Tok::Punct("/") => BinaryOp::Div,
                Tok::Punct("%") => BinaryOp::Rem,
                _ => break,
            };
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = self.new_expr(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn is_type_start(&self) -> bool {
        matches!(self.peek(), Tok::Ident(s) if TYPE_KEYWORDS.contains(&s.as_str()))
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            Tok::Punct("-") => Some(UnaryOp::Neg),
            Tok::Punct("!") => Some(UnaryOp::Not),
            Tok::Punct("~") => Some(UnaryOp::BitNot),
            Tok::Punct("*") => Some(UnaryOp::Deref),
            Tok::Punct("&") => Some(UnaryOp::Addr),
            Tok::Punct("++") => Some(UnaryOp::PreInc),
            Tok::Punct("--") => Some(UnaryOp::PreDec),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let e = self.unary()?;
            return Ok(self.new_expr(ExprKind::Unary(op, Box::new(e))));
        }
        // Cast: '(' type … ')'.
        if matches!(self.peek(), Tok::Punct("(")) {
            let save = self.at;
            self.bump();
            if self.is_type_start() {
                if let Ok(mut ty) = self.type_base() {
                    while self.eat_punct("*") {
                        ty.pointers += 1;
                    }
                    if self.eat_punct(")") {
                        let e = self.unary()?;
                        return Ok(self.new_expr(ExprKind::Cast(ty, Box::new(e))));
                    }
                }
            }
            self.at = save;
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                e = self.new_expr(ExprKind::Index(Box::new(e), Box::new(idx)));
            } else if self.eat_punct(".") {
                let field = self.expect_ident()?;
                e = self.new_expr(ExprKind::Member(Box::new(e), field, false));
            } else if self.eat_punct("->") {
                let field = self.expect_ident()?;
                e = self.new_expr(ExprKind::Member(Box::new(e), field, true));
            } else if self.eat_punct("++") {
                e = self.new_expr(ExprKind::Post(PostOp::Inc, Box::new(e)));
            } else if self.eat_punct("--") {
                e = self.new_expr(ExprKind::Post(PostOp::Dec, Box::new(e)));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(self.new_expr(ExprKind::IntLit(v)))
            }
            Tok::Char(c) => {
                self.bump();
                Ok(self.new_expr(ExprKind::CharLit(c)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(self.new_expr(ExprKind::StrLit(s)))
            }
            Tok::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                if matches!(self.peek(), Tok::Punct("(")) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.assign_expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                        self.expect_punct(")")?;
                    }
                    Ok(self.new_expr(ExprKind::Call(name, args)))
                } else {
                    let occ = self.new_occ();
                    Ok(self.new_expr(ExprKind::Ident(Ident { name, occ })))
                }
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

fn is_stmt_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else" | "while" | "do" | "for" | "return" | "break" | "continue" | "goto"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_figure1() {
        let src = "int main() { int a, b = 1; b = b - a; if (a) a = a - b; return 0; }";
        let p = parse(src).expect("parses");
        let f = p.function("main").expect("has main");
        assert_eq!(f.body.len(), 4);
        // Occurrences: b, b, a (stmt 2), a (cond), a, a, b (assign) = 7.
        assert_eq!(p.max_occ, 7);
    }

    #[test]
    fn parses_paper_figure2() {
        let src = r#"
            int a = 0;
            extern int b __attribute__ ((alias ("a")));
            int main() {
                int *p = &a, *q = &b;
                *p = 1;
                *q = 2;
                return a;
            }
        "#;
        let p = parse(src).expect("parses");
        assert_eq!(p.functions().count(), 1);
        assert_eq!(p.items.len(), 3);
    }

    #[test]
    fn parses_paper_figure3_nested_ternaries() {
        let src = r#"
            struct s { char c[1]; };
            struct s a, b, c;
            int d; int e;
            void bar(void) {
                e ? (d==0 ? b : c).c : (d==0 ? b : c).c;
            }
        "#;
        let p = parse(src).expect("parses");
        assert!(p.struct_def("s").is_some());
        let f = p.function("bar").expect("has bar");
        assert_eq!(f.params.len(), 0);
        assert_eq!(f.body.len(), 1);
    }

    #[test]
    fn parses_goto_and_labels() {
        let src = r#"
            int main() {
                int *p = 0;
                trick:
                if (p) return *p;
                int x = 0;
                p = &x;
                goto trick;
                return 0;
            }
        "#;
        let p = parse(src).expect("parses");
        let f = p.function("main").expect("main");
        assert!(f
            .body
            .iter()
            .any(|s| matches!(s, Stmt::Label(l, _) if l == "trick")));
        assert!(f
            .body
            .iter()
            .any(|s| matches!(s, Stmt::Goto(l) if l == "trick")));
    }

    #[test]
    fn parses_for_loops_with_decls() {
        let src = "void f(int p1) { for (int i = 0; i < 10; i++) p1 += i; for (;; p1--) break; }";
        let p = parse(src).expect("parses");
        let f = p.function("f").expect("f");
        assert_eq!(f.body.len(), 2);
        match &f.body[0] {
            Stmt::For(Some(ForInit::Decl(d)), Some(_), Some(_), _) => {
                assert_eq!(d[0].name, "i");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &f.body[1] {
            Stmt::For(None, None, Some(_), _) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_arrays_pointers_and_indexing() {
        let src = "double u[1782225]; int a; void foo(int *p1) { u[1336 * a] *= 2; *p1 = a; }";
        let p = parse(src).expect("parses");
        match &p.items[0] {
            Item::Global(ds) => {
                assert_eq!(ds[0].ty.array, Some(1782225));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_casts_and_calls() {
        let src = "int main() { int x = (int) foo(1, 2); printf(\"%d\", x); return x; }";
        let p = parse(src).expect("parses");
        assert_eq!(p.functions().count(), 1);
    }

    #[test]
    fn parses_do_while_and_switchless_control() {
        let src = "int main() { int i = 0; do { i++; } while (i < 3); return i; }";
        let p = parse(src).expect("parses");
        let f = p.function("main").expect("main");
        assert!(f.body.iter().any(|s| matches!(s, Stmt::DoWhile(_, _))));
    }

    #[test]
    fn occurrence_ids_are_dense_and_unique() {
        let src = "int a, b; int main() { a = b + a; return b; }";
        let p = parse(src).expect("parses");
        let mut seen = Vec::new();
        for f in p.functions() {
            for s in &f.body {
                collect_occs(s, &mut seen);
            }
        }
        let mut ids: Vec<u32> = seen.iter().map(|o| o.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(p.max_occ, 4);
    }

    fn collect_occs(s: &Stmt, out: &mut Vec<OccId>) {
        let mut push = |e: &Expr| {
            e.for_each_ident(&mut |id| out.push(id.occ));
        };
        match s {
            Stmt::Expr(e) => push(e),
            Stmt::Return(Some(e)) => push(e),
            Stmt::If(c, t, e) => {
                push(c);
                collect_occs(t, out);
                if let Some(e) = e {
                    collect_occs(e, out);
                }
            }
            Stmt::Block(b) => {
                for s in b {
                    collect_occs(s, out);
                }
            }
            _ => {}
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("int main() { return 0 }").is_err()); // missing ;
        assert!(parse("int 3x;").is_err());
        assert!(parse("int main() { if }").is_err());
    }

    #[test]
    fn brace_initializers_become_init_list() {
        let src = "int c[1] = {0}; union_free_check: ;";
        // Labels are statement-level; this source is invalid at top level,
        // so only test the declaration part.
        let p = parse("int c[2] = {0, 1};").expect("parses");
        match &p.items[0] {
            Item::Global(ds) => match &ds[0].init {
                Some(Expr {
                    kind: ExprKind::Call(name, args),
                    ..
                }) => {
                    assert_eq!(name, "__init_list");
                    assert_eq!(args.len(), 2);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        let _ = src;
    }

    #[test]
    fn comma_expressions() {
        let p = parse("int a, b; void f() { a = 1, b = 2; }").expect("parses");
        let f = p.function("f").expect("f");
        assert!(matches!(
            &f.body[0],
            Stmt::Expr(Expr {
                kind: ExprKind::Comma(_, _),
                ..
            })
        ));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("int a, b, c; void f() { a = b + c * a; }").expect("parses");
        let f = p.function("f").expect("f");
        match &f.body[0] {
            Stmt::Expr(Expr {
                kind: ExprKind::Assign(_, _, rhs),
                ..
            }) => match &rhs.kind {
                ExprKind::Binary(BinaryOp::Add, _, r) => {
                    assert!(matches!(r.kind, ExprKind::Binary(BinaryOp::Mul, _, _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }
}
