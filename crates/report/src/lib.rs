//! Rendering of the paper's tables, histograms and ASCII figures.
//!
//! The experiment binaries produce [`Table`]s (Tables 1–4) and
//! [`Histogram`]s (Figures 8–10) and render them as aligned ASCII / or
//! Markdown for `EXPERIMENTS.md`.

#![warn(missing_docs)]

use spe_bignum::BigUint;

/// A simple aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (each row should have `headers.len()` cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders with aligned columns.
    ///
    /// ```
    /// let mut t = spe_report::Table::new("demo", &["k", "v"]);
    /// t.row(&["a".into(), "1".into()]);
    /// let s = t.render();
    /// assert!(s.contains("demo"));
    /// assert!(s.contains("a"));
    /// ```
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Appends another table's rows — the merge step for **partial
    /// reports** of one logically continuous run, such as the pre-kill
    /// and post-resume phases of a checkpointed campaign
    /// (`spe_harness::checkpoint`, `DESIGN.md` §9) rendered as one
    /// table. Headers must match; the title of `self` wins.
    ///
    /// ```
    /// let mut t = spe_report::Table::new("Phases", &["phase", "variants"]);
    /// t.row(&["until kill".into(), "512".into()]);
    /// let mut rest = spe_report::Table::new("Phases", &["phase", "variants"]);
    /// rest.row(&["resumed".into(), "488".into()]);
    /// t.extend(&rest);
    /// assert!(t.render().contains("resumed"));
    /// assert_eq!(t.rows.len(), 2);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when the two tables' headers differ.
    pub fn extend(&mut self, other: &Table) -> &mut Table {
        assert_eq!(
            self.headers, other.headers,
            "partial reports must share headers"
        );
        self.rows.extend(other.rows.iter().cloned());
        self
    }

    /// Renders as a Markdown table (for `EXPERIMENTS.md`).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("**{}**\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// A labeled histogram with one or more series (the paper's bar figures).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    /// Figure caption.
    pub title: String,
    /// Bucket labels (x axis).
    pub labels: Vec<String>,
    /// Series: `(name, values)`, parallel to `labels`.
    pub series: Vec<(String, Vec<f64>)>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new(title: impl Into<String>, labels: Vec<String>) -> Histogram {
        Histogram {
            title: title.into(),
            labels,
            series: Vec::new(),
        }
    }

    /// Adds a series (panics if its length differs from the labels).
    ///
    /// # Panics
    ///
    /// Panics when `values.len() != labels.len()`.
    pub fn series(&mut self, name: impl Into<String>, values: Vec<f64>) -> &mut Histogram {
        assert_eq!(values.len(), self.labels.len(), "series length mismatch");
        self.series.push((name.into(), values));
        self
    }

    /// Renders horizontal ASCII bars, one block per label with all
    /// series.
    ///
    /// ```
    /// let mut h = spe_report::Histogram::new("demo", vec!["x".into()]);
    /// h.series("s", vec![1.0]);
    /// assert!(h.render(20).contains('#'));
    /// ```
    pub fn render(&self, bar_width: usize) -> String {
        let max = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter())
            .fold(0.0f64, |a, &b| a.max(b))
            .max(1e-12);
        let name_w = self.series.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let label_w = self.labels.iter().map(|l| l.len()).max().unwrap_or(0);
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        for (i, label) in self.labels.iter().enumerate() {
            for (si, (name, values)) in self.series.iter().enumerate() {
                let v = values[i];
                let filled = ((v / max) * bar_width as f64).round() as usize;
                let shown = if si == 0 {
                    format!("{:<width$}", label, width = label_w)
                } else {
                    " ".repeat(label_w)
                };
                out.push_str(&format!(
                    "{shown} {:<nw$} |{}{}| {v:.4}\n",
                    name,
                    "#".repeat(filled),
                    " ".repeat(bar_width.saturating_sub(filled)),
                    nw = name_w,
                ));
            }
        }
        out
    }
}

/// One compiler family's corrected report counts after the reduce/dedup
/// stage: raw unique-signature reports, how many of them each dedup pass
/// folded away, and the resulting root-cause estimate. The "corrected"
/// column is the Table-3-style number the paper reaches by manually
/// folding reports into root causes; the fingerprint pass derives it from
/// reduced witnesses alone.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrectedCounts {
    /// Compiler family (e.g. `"gcc-sim"`).
    pub family: String,
    /// Unique-signature reports filed.
    pub reports: usize,
    /// Reports the ground-truth (registry bug-id) pass marked duplicate.
    pub bug_id_duplicates: usize,
    /// Reports the witness-fingerprint pass folded into an earlier root
    /// cause.
    pub fingerprint_duplicates: usize,
    /// Distinct root causes after fingerprint dedup.
    pub corrected: usize,
    /// Mean raw-reproducer / reduced-witness size ratio.
    pub mean_shrink: f64,
}

/// Renders the reduce/dedup stage's corrected counts as a table.
///
/// ```
/// let rows = vec![spe_report::CorrectedCounts {
///     family: "gcc-sim".into(),
///     reports: 12,
///     bug_id_duplicates: 4,
///     fingerprint_duplicates: 4,
///     corrected: 8,
///     mean_shrink: 3.7,
/// }];
/// let t = spe_report::corrected_counts_table("Corrected counts", &rows);
/// assert!(t.render().contains("gcc-sim"));
/// assert!(t.render().contains("3.7x"));
/// ```
pub fn corrected_counts_table(title: impl Into<String>, rows: &[CorrectedCounts]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "Compiler",
            "Reports",
            "Dup (bug id)",
            "Dup (fingerprint)",
            "Corrected",
            "Mean shrink",
        ],
    );
    for r in rows {
        t.row(&[
            r.family.clone(),
            r.reports.to_string(),
            r.bug_id_duplicates.to_string(),
            r.fingerprint_duplicates.to_string(),
            r.corrected.to_string(),
            format!("{:.1}x", r.mean_shrink),
        ]);
    }
    t
}

/// One host's contribution to a merged multi-host fleet campaign
/// (`spe_harness::fleet`, `DESIGN.md` §14): which contiguous job range
/// of the `files × shards_per_file` space it owned, how many journal
/// frames its replay streamed, and what its slice produced. The crate
/// stays harness-independent, so the harness's `HostSummary` is mapped
/// into this row at the call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetHostRow {
    /// Host id within the fleet plan.
    pub host_id: usize,
    /// The host journal the slice was replayed from (usually just the
    /// file name).
    pub journal: String,
    /// First job of the host's slice (inclusive).
    pub jobs_start: usize,
    /// One past the last job of the host's slice.
    pub jobs_end: usize,
    /// Record frames replayed from the host's journal.
    pub frames: u64,
    /// Variants the host's slice tested.
    pub variants_tested: u64,
    /// Candidate findings the host's slice committed (pre-dedup).
    pub candidates: usize,
}

/// Renders merged-fleet provenance — one row per host, plus a totals
/// row — so a campaign report can always answer "which host produced
/// what, from which journal".
///
/// ```
/// let rows = vec![spe_report::FleetHostRow {
///     host_id: 0,
///     journal: "host-0.journal".into(),
///     jobs_start: 0,
///     jobs_end: 12,
///     frames: 40,
///     variants_tested: 768,
///     candidates: 3,
/// }];
/// let t = spe_report::fleet_provenance_table("Fleet 0xbeef (1 host)", &rows);
/// let s = t.render();
/// assert!(s.contains("host-0.journal"));
/// assert!(s.contains("[0, 12)"));
/// assert!(s.contains("total"));
/// ```
pub fn fleet_provenance_table(title: impl Into<String>, rows: &[FleetHostRow]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "Host",
            "Journal",
            "Jobs",
            "Frames",
            "Variants",
            "Candidates",
        ],
    );
    for r in rows {
        t.row(&[
            r.host_id.to_string(),
            r.journal.clone(),
            format!("[{}, {})", r.jobs_start, r.jobs_end),
            r.frames.to_string(),
            r.variants_tested.to_string(),
            r.candidates.to_string(),
        ]);
    }
    let jobs: usize = rows.iter().map(|r| r.jobs_end - r.jobs_start).sum();
    t.row(&[
        "total".to_string(),
        format!("{} journals", rows.len()),
        format!("{jobs} jobs"),
        rows.iter().map(|r| r.frames).sum::<u64>().to_string(),
        rows.iter().map(|r| r.variants_tested).sum::<u64>().to_string(),
        rows.iter().map(|r| r.candidates).sum::<usize>().to_string(),
    ]);
    t
}

/// The per-file variant-count buckets of Figure 8:
/// `[1,10), [10,10^2), …, [10^9,10^10), >= 10^10`.
pub fn figure8_buckets() -> Vec<String> {
    let mut labels: Vec<String> = (0..10).map(|e| format!("[1e{e},1e{})", e + 1)).collect();
    labels.push(">=1e10".to_string());
    labels
}

/// Bucket index of a variant count under [`figure8_buckets`].
///
/// ```
/// use spe_bignum::BigUint;
/// assert_eq!(spe_report::figure8_bucket_of(&BigUint::from(5u64)), 0);
/// assert_eq!(spe_report::figure8_bucket_of(&BigUint::from(1000u64)), 3);
/// assert_eq!(spe_report::figure8_bucket_of(&BigUint::from(10u64).pow(30)), 10);
/// ```
pub fn figure8_bucket_of(count: &BigUint) -> usize {
    let digits = count.to_string().len();
    // 1..=9 -> bucket 0, 10..=99 -> 1, etc.
    (digits - 1).min(10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Sizes", &["Approach", "Total"]);
        t.row(&["Naive".into(), "5.24e163".into()]);
        t.row(&["Our".into(), "1.48e79".into()]);
        let s = t.render();
        assert!(s.contains("Approach"));
        assert!(s.contains("5.24e163"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let md = t.render_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn histogram_renders_all_series() {
        let mut h = Histogram::new("Fig", vec!["[1,10)".into(), "[10,100)".into()]);
        h.series("Naive", vec![0.29, 0.4]);
        h.series("Our", vec![0.46, 0.3]);
        let s = h.render(30);
        assert!(s.contains("Naive"));
        assert!(s.contains("Our"));
        assert_eq!(s.matches('|').count(), 8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn histogram_rejects_ragged_series() {
        let mut h = Histogram::new("Fig", vec!["a".into()]);
        h.series("s", vec![1.0, 2.0]);
    }

    #[test]
    fn corrected_counts_render() {
        let rows = vec![
            CorrectedCounts {
                family: "gcc-sim".into(),
                reports: 10,
                bug_id_duplicates: 3,
                fingerprint_duplicates: 3,
                corrected: 7,
                mean_shrink: 4.25,
            },
            CorrectedCounts {
                family: "clang-sim".into(),
                reports: 5,
                bug_id_duplicates: 0,
                fingerprint_duplicates: 1,
                corrected: 4,
                mean_shrink: 2.0,
            },
        ];
        let s = corrected_counts_table("Corrected", &rows).render();
        assert!(s.contains("Dup (fingerprint)"));
        assert!(s.contains("4.2x"));
        assert!(s.contains("clang-sim"));
    }

    #[test]
    fn fleet_provenance_totals_row() {
        let rows = vec![
            FleetHostRow {
                host_id: 0,
                journal: "host-0.journal".into(),
                jobs_start: 0,
                jobs_end: 7,
                frames: 21,
                variants_tested: 448,
                candidates: 2,
            },
            FleetHostRow {
                host_id: 1,
                journal: "host-1.journal".into(),
                jobs_start: 7,
                jobs_end: 14,
                frames: 22,
                variants_tested: 448,
                candidates: 1,
            },
        ];
        let s = fleet_provenance_table("Fleet", &rows).render();
        assert!(s.contains("[7, 14)"));
        assert!(s.contains("2 journals"));
        assert!(s.contains("14 jobs"));
        assert!(s.contains("43"));
        assert!(s.contains("896"));
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(figure8_bucket_of(&BigUint::from(1u64)), 0);
        assert_eq!(figure8_bucket_of(&BigUint::from(9u64)), 0);
        assert_eq!(figure8_bucket_of(&BigUint::from(10u64)), 1);
        assert_eq!(figure8_bucket_of(&BigUint::from(99_999u64)), 4);
        assert_eq!(figure8_bucket_of(&BigUint::from(10u64).pow(10)), 10);
        assert_eq!(figure8_buckets().len(), 11);
    }
}
