//! `spe-reduce` — hierarchical test-case reduction and structural witness
//! fingerprinting for campaign findings.
//!
//! The SPE paper reports bugs after deduplicating crash signatures
//! (Table 3); every production compiler-testing pipeline additionally
//! pairs generation with *reduction*, shrinking each reproducer to a
//! minimal witness before filing it, and dedups reports on the reduced
//! witness rather than on the raw symptom (see `DESIGN.md` §7). This
//! crate is that stage for the mini-C toolchain:
//!
//! 1. **Statement-level delta debugging** ([`stmts`]): ddmin over
//!    top-level items, then over every statement list of every block
//!    (outermost first), plus control-structure unwrapping (`if`/loops/
//!    labels collapse to their bodies) and declarator pruning;
//! 2. **Expression simplification** ([`exprs`]): each expression site is
//!    repeatedly replaced by one of its own sub-expressions (hoisting) or
//!    by a literal, top-down, keeping only changes the oracle accepts;
//! 3. **Skeleton-aware canonicalization** ([`canon`]): variables and
//!    labels are α-renamed into declaration-order normal form, so two
//!    witnesses of the same root cause that differ only in naming become
//!    byte-identical;
//! 4. **Structural fingerprinting** ([`fingerprint`]): a 64-bit FNV-1a
//!    hash of the canonicalized witness, the key of the campaign's second
//!    (ground-truth-free) dedup pass.
//!
//! The reducer is generic over the *oracle*: any `FnMut(&Program) -> bool`
//! deciding whether a candidate still reproduces the finding. The harness
//! instantiates it with "the same `simcc` configuration still observes the
//! same `FindingKind` + bug id" (see `spe_harness::reduction`). Candidates
//! must also re-parse and pass `spe_minic::sema` — the reducer enforces
//! both before ever consulting the oracle, so every accepted witness is a
//! well-formed program.
//!
//! Reduction is **deterministic**: the same input and oracle always
//! produce the same witness, which is what lets the harness fan reduction
//! jobs over a work-stealing pool and still emit byte-identical reports.
//!
//! # Quick start
//!
//! ```
//! use spe_reduce::{reduce, ReduceConfig};
//!
//! // Shrink a program while keeping its self-assignment intact.
//! let src = "int a, b, c;
//! int main() {
//!     b = 1;
//!     c = b + 2;
//!     a = a;
//!     return c;
//! }
//! ";
//! let reduction = reduce(src, &ReduceConfig::default(), &mut |p| {
//!     spe_minic::print_program(p).contains("a = a;")
//! })?;
//! assert!(reduction.reduced_bytes < reduction.original_bytes);
//! assert!(reduction.witness.contains("a = a;"));
//! # Ok::<(), spe_reduce::ReduceError>(())
//! ```

#![warn(missing_docs)]

use spe_minic::ast::Program;
use std::fmt;

pub mod canon;
pub mod ddmin;
pub mod exprs;
pub mod fingerprint;
pub mod stmts;

pub use fingerprint::Fingerprint;

/// Reduction limits and switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceConfig {
    /// Upper bound on oracle invocations; when exhausted, reduction stops
    /// and returns the best witness found so far (still reproducing).
    pub max_oracle_calls: usize,
    /// Maximum number of full statement+expression pipeline rounds; the
    /// loop also stops as soon as a round fails to shrink the witness.
    pub max_rounds: usize,
    /// Whether to α-normalize variable and label names at the end
    /// (required for fingerprint-based dedup across findings).
    pub canonicalize: bool,
}

impl Default for ReduceConfig {
    fn default() -> Self {
        ReduceConfig {
            max_oracle_calls: 2048,
            max_rounds: 4,
            canonicalize: true,
        }
    }
}

/// Why reduction could not run at all.
#[derive(Debug, Clone, PartialEq)]
pub enum ReduceError {
    /// The input failed to parse.
    Parse(spe_minic::ParseError),
    /// The input failed scope analysis.
    Sema(spe_minic::SemaError),
    /// The oracle rejected the unmodified input: there is nothing to
    /// preserve while shrinking.
    NotReproducing,
}

impl fmt::Display for ReduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReduceError::Parse(e) => write!(f, "reduce: {e}"),
            ReduceError::Sema(e) => write!(f, "reduce: {e}"),
            ReduceError::NotReproducing => {
                f.write_str("reduce: the oracle rejects the original input")
            }
        }
    }
}

impl std::error::Error for ReduceError {}

/// Outcome of a successful reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reduction {
    /// The reduced witness, still reproducing under the oracle. Never
    /// larger than the input source.
    pub witness: String,
    /// Structural fingerprint of the (canonicalized) witness.
    pub fingerprint: Fingerprint,
    /// Byte size of the input reproducer.
    pub original_bytes: usize,
    /// Byte size of [`Reduction::witness`].
    pub reduced_bytes: usize,
    /// Oracle invocations spent.
    pub oracle_calls: usize,
    /// Pipeline rounds run.
    pub rounds: usize,
}

impl Reduction {
    /// How many times smaller the witness is than the input (`>= 1.0`).
    pub fn shrink_ratio(&self) -> f64 {
        self.original_bytes as f64 / self.reduced_bytes.max(1) as f64
    }
}

/// The oracle plus its invocation budget; candidate programs additionally
/// must pass scope analysis before the oracle is consulted.
pub(crate) struct Shrinker<'a> {
    oracle: &'a mut dyn FnMut(&Program) -> bool,
    calls: usize,
    budget: usize,
}

impl<'a> Shrinker<'a> {
    pub(crate) fn new(oracle: &'a mut dyn FnMut(&Program) -> bool, budget: usize) -> Shrinker<'a> {
        Shrinker {
            oracle,
            calls: 0,
            budget,
        }
    }

    /// Whether the oracle budget is spent.
    pub(crate) fn exhausted(&self) -> bool {
        self.calls >= self.budget
    }

    pub(crate) fn calls(&self) -> usize {
        self.calls
    }

    /// Whether `p` is a well-formed program that still reproduces. The
    /// candidate is validated through a print → parse → sema roundtrip
    /// first — so every accepted edit is guaranteed to survive as source
    /// text, and the oracle always sees the normalized reparse (fresh
    /// occurrence ids) that the final witness will also produce. Costs one
    /// oracle call; rejects outright once the budget is exhausted so
    /// in-flight ddmin runs unwind quickly.
    pub(crate) fn accepts(&mut self, p: &Program) -> bool {
        if self.exhausted() {
            return false;
        }
        self.calls += 1;
        let src = spe_minic::print_program(p);
        let Ok(reparsed) = spe_minic::parse(&src) else {
            return false;
        };
        spe_minic::analyze(&reparsed).is_ok() && (self.oracle)(&reparsed)
    }
}

/// Printed size of a program — the measure every pass shrinks.
pub(crate) fn printed_len(p: &Program) -> usize {
    spe_minic::print_program(p).len()
}

/// Reduces `source` to a minimal witness still accepted by `oracle`.
///
/// The pipeline alternates statement-level ddmin and expression
/// simplification until a fixed point (or [`ReduceConfig::max_rounds`] /
/// the oracle budget), then canonicalizes names and fingerprints the
/// result. The returned witness always parses, passes scope analysis,
/// reproduces under `oracle`, and is never larger than `source`.
///
/// # Errors
///
/// [`ReduceError::Parse`] / [`ReduceError::Sema`] when the input is not a
/// well-formed program, [`ReduceError::NotReproducing`] when the oracle
/// rejects the unmodified input.
pub fn reduce(
    source: &str,
    config: &ReduceConfig,
    oracle: &mut dyn FnMut(&Program) -> bool,
) -> Result<Reduction, ReduceError> {
    let original = spe_minic::parse(source).map_err(ReduceError::Parse)?;
    spe_minic::analyze(&original).map_err(ReduceError::Sema)?;
    if !oracle(&original) {
        return Err(ReduceError::NotReproducing);
    }
    let mut sh = Shrinker::new(oracle, config.max_oracle_calls);
    let mut current = original;
    let mut rounds = 0;
    while rounds < config.max_rounds && !sh.exhausted() {
        rounds += 1;
        let before = printed_len(&current);
        stmts::reduce(&mut current, &mut sh);
        exprs::reduce(&mut current, &mut sh);
        if printed_len(&current) >= before {
            break;
        }
    }

    // Canonicalize for fingerprinting; adopt the canonical spelling as the
    // witness only when it still reproduces (α-renaming preserves every
    // structural trigger, so in practice it always does).
    let canonical = canon::canonicalize(&current);
    let fp = fingerprint::of_canonical(&canonical);
    let mut witness = spe_minic::print_program(&current);
    if config.canonicalize {
        let canonical_src = spe_minic::print_program(&canonical);
        if canonical_src.len() <= witness.len() && sh.accepts(&canonical) {
            witness = canonical_src;
        }
    }
    // The reducer only ever deletes or replaces-with-smaller, so the
    // witness cannot exceed the input; keep the guarantee airtight even
    // for inputs whose original spelling differs from the printer's.
    if witness.len() > source.len() {
        witness = source.to_string();
    }
    let reduction = Reduction {
        reduced_bytes: witness.len(),
        witness,
        fingerprint: fp,
        original_bytes: source.len(),
        oracle_calls: sh.calls(),
        rounds,
    };
    let telemetry = spe_telemetry::global();
    if telemetry.enabled() {
        use spe_telemetry::names;
        telemetry.histogram(names::REDUCE_ORACLE_CALLS, reduction.oracle_calls as u64);
        telemetry.histogram(names::REDUCE_ROUNDS, reduction.rounds as u64);
        telemetry.histogram(
            names::REDUCE_SHRINK_X100,
            (reduction.shrink_ratio() * 100.0) as u64,
        );
        telemetry.counter(names::REDUCE_REDUCED, 1);
    }
    Ok(reduction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_minic::print_program;

    fn contains_oracle(needle: &'static str) -> impl FnMut(&Program) -> bool {
        move |p: &Program| print_program(p).contains(needle)
    }

    #[test]
    fn rejects_non_reproducing_input() {
        let err = reduce(
            "int main() { return 0; }",
            &ReduceConfig::default(),
            &mut contains_oracle("nowhere"),
        )
        .unwrap_err();
        assert_eq!(err, ReduceError::NotReproducing);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(matches!(
            reduce("int main( {", &ReduceConfig::default(), &mut |_| true),
            Err(ReduceError::Parse(_))
        ));
    }

    #[test]
    fn shrinks_to_the_preserved_statement() {
        let src = "int a, b, c;
int main() {
    b = 1;
    c = b + 2;
    a = a;
    b = c - b;
    return c;
}
";
        let r = reduce(src, &ReduceConfig::default(), &mut contains_oracle("a = a;"))
            .expect("reduces");
        assert!(r.witness.contains("a = a;"), "witness:\n{}", r.witness);
        assert!(!r.witness.contains("c - b"), "witness:\n{}", r.witness);
        assert!(r.reduced_bytes < r.original_bytes);
        assert!(r.shrink_ratio() > 1.5, "ratio {}", r.shrink_ratio());
        spe_minic::analyze(&spe_minic::parse(&r.witness).expect("parses")).expect("sema");
    }

    #[test]
    fn witness_is_never_larger_than_the_input() {
        // An already-minimal program cannot grow (canonicalization is
        // rejected when it would lengthen the witness).
        let src = "int z;\nint main() {\n    z = z;\n    return 0;\n}\n";
        let r = reduce(src, &ReduceConfig::default(), &mut contains_oracle("z = z;"))
            .expect("reduces");
        assert!(r.reduced_bytes <= src.len());
        assert!(r.witness.contains("z = z;"));
    }

    #[test]
    fn reduction_is_deterministic() {
        let src = "int a, b, c, d;
int main() {
    a = b + c * d;
    d = a - b;
    c = c / (d + 1);
    a = a;
    return d;
}
";
        let one = reduce(src, &ReduceConfig::default(), &mut contains_oracle("a = a;"))
            .expect("reduces");
        let two = reduce(src, &ReduceConfig::default(), &mut contains_oracle("a = a;"))
            .expect("reduces");
        assert_eq!(one, two);
    }

    #[test]
    fn oracle_budget_still_returns_a_reproducing_witness() {
        let src = "int a, b;
int main() {
    b = 2;
    a = a;
    return b;
}
";
        let r = reduce(
            src,
            &ReduceConfig {
                max_oracle_calls: 3,
                ..ReduceConfig::default()
            },
            &mut contains_oracle("a = a;"),
        )
        .expect("reduces");
        assert!(r.witness.contains("a = a;"));
        assert!(r.oracle_calls <= 4, "budget respected, got {}", r.oracle_calls);
    }

    #[test]
    fn alpha_equivalent_inputs_share_a_fingerprint() {
        let a = "int x, y; int main() { x = x; y = x + 1; return y; }";
        let b = "int q, w; int main() { q = q; w = q + 1; return w; }";
        let config = ReduceConfig::default();
        let fa = reduce(a, &config, &mut |p| print_program(p).contains(" = "))
            .expect("reduces")
            .fingerprint;
        let fb = reduce(b, &config, &mut |p| print_program(p).contains(" = "))
            .expect("reduces")
            .fingerprint;
        assert_eq!(fa, fb, "α-equivalent witnesses must collide");
    }
}
