//! Expression-level simplification: hoisting and literal folding.
//!
//! After statement ddmin has removed whole statements, witnesses often
//! still carry oversized expressions (`a = b + c * (d - e)` when only the
//! multiplication matters). This pass walks every expression site —
//! statement expressions, conditions, steps, `return` values and
//! initializers — and repeatedly tries, top-down:
//!
//! * replacing a node with one of its **own sub-expressions** (hoisting —
//!   the expression analogue of ddmin's chunk removal), and
//! * replacing a node with the literal `0`;
//!
//! keeping a change only when the program still reproduces under the
//! oracle and does not grow. A separate sub-pass drops optional slots
//! entirely: declarator initializers and `for` conditions/steps.

use crate::{printed_len, Shrinker};
use spe_minic::ast::{Expr, ExprKind, ForInit, Item, Program, Stmt};

/// Runs the expression-level passes once.
pub(crate) fn reduce(p: &mut Program, sh: &mut Shrinker) {
    drop_optional_slots(p, sh);
    simplify_slots(p, sh);
}

// ---------------------------------------------------------------------
// Expression-slot addressing: every expression position of the program
// gets a stable pre-order id (stable until the program is edited).
// ---------------------------------------------------------------------

fn find_slot(p: &mut Program, target: usize) -> Option<&mut Expr> {
    let mut next = 0usize;
    for item in &mut p.items {
        match item {
            Item::Global(decls) => {
                for d in decls {
                    if let Some(init) = &mut d.init {
                        if let Some(found) = claim(init, &mut next, target) {
                            return Some(found);
                        }
                    }
                }
            }
            Item::Func(f) => {
                if let Some(found) = find_in_stmts(&mut f.body, &mut next, target) {
                    return Some(found);
                }
            }
            Item::Struct(_) => {}
        }
    }
    None
}

fn claim<'a>(e: &'a mut Expr, next: &mut usize, target: usize) -> Option<&'a mut Expr> {
    let id = *next;
    *next += 1;
    (id == target).then_some(e)
}

fn find_in_stmts<'a>(
    stmts: &'a mut [Stmt],
    next: &mut usize,
    target: usize,
) -> Option<&'a mut Expr> {
    for s in stmts.iter_mut() {
        if let Some(found) = find_in_stmt(s, next, target) {
            return Some(found);
        }
    }
    None
}

fn find_in_stmt<'a>(s: &'a mut Stmt, next: &mut usize, target: usize) -> Option<&'a mut Expr> {
    match s {
        Stmt::Expr(e) => claim(e, next, target),
        Stmt::Decl(decls) => {
            for d in decls {
                if let Some(init) = &mut d.init {
                    if let Some(found) = claim(init, next, target) {
                        return Some(found);
                    }
                }
            }
            None
        }
        Stmt::Block(b) => find_in_stmts(b, next, target),
        Stmt::If(c, t, e) => {
            if let Some(found) = claim(c, next, target) {
                return Some(found);
            }
            if let Some(found) = find_in_stmt(t, next, target) {
                return Some(found);
            }
            match e {
                Some(e) => find_in_stmt(e, next, target),
                None => None,
            }
        }
        Stmt::While(c, b) => {
            if let Some(found) = claim(c, next, target) {
                return Some(found);
            }
            find_in_stmt(b, next, target)
        }
        Stmt::DoWhile(b, c) => {
            if let Some(found) = find_in_stmt(b, next, target) {
                return Some(found);
            }
            claim(c, next, target)
        }
        Stmt::For(init, cond, step, b) => {
            match init {
                Some(ForInit::Decl(ds)) => {
                    for d in ds {
                        if let Some(i) = &mut d.init {
                            if let Some(found) = claim(i, next, target) {
                                return Some(found);
                            }
                        }
                    }
                }
                Some(ForInit::Expr(e)) => {
                    if let Some(found) = claim(e, next, target) {
                        return Some(found);
                    }
                }
                None => {}
            }
            if let Some(c) = cond {
                if let Some(found) = claim(c, next, target) {
                    return Some(found);
                }
            }
            if let Some(st) = step {
                if let Some(found) = claim(st, next, target) {
                    return Some(found);
                }
            }
            find_in_stmt(b, next, target)
        }
        Stmt::Return(Some(e)) => claim(e, next, target),
        Stmt::Label(_, inner) => find_in_stmt(inner, next, target),
        _ => None,
    }
}

fn count_slots(p: &mut Program) -> usize {
    let mut next = 0usize;
    for item in &mut p.items {
        match item {
            Item::Global(decls) => {
                for d in decls {
                    if let Some(init) = &mut d.init {
                        let _ = claim(init, &mut next, usize::MAX);
                    }
                }
            }
            Item::Func(f) => {
                let _ = find_in_stmts(&mut f.body, &mut next, usize::MAX);
            }
            Item::Struct(_) => {}
        }
    }
    next
}

// ---------------------------------------------------------------------
// Node addressing within one expression (pre-order).
// ---------------------------------------------------------------------

fn children(e: &Expr) -> Vec<&Expr> {
    match &e.kind {
        ExprKind::Unary(_, a) | ExprKind::Post(_, a) | ExprKind::Cast(_, a) => vec![a],
        ExprKind::Binary(_, a, b)
        | ExprKind::Assign(_, a, b)
        | ExprKind::Index(a, b)
        | ExprKind::Comma(a, b) => vec![a, b],
        ExprKind::Ternary(c, t, e2) => vec![c, t, e2],
        ExprKind::Call(_, args) => args.iter().collect(),
        ExprKind::Member(a, _, _) => vec![a],
        _ => Vec::new(),
    }
}

fn node_count(e: &Expr) -> usize {
    1 + children(e).iter().map(|c| node_count(c)).sum::<usize>()
}

fn node_at<'a>(e: &'a Expr, next: &mut usize, target: usize) -> Option<&'a Expr> {
    let id = *next;
    *next += 1;
    if id == target {
        return Some(e);
    }
    match &e.kind {
        ExprKind::Unary(_, a) | ExprKind::Post(_, a) | ExprKind::Cast(_, a) => {
            node_at(a, next, target)
        }
        ExprKind::Binary(_, a, b)
        | ExprKind::Assign(_, a, b)
        | ExprKind::Index(a, b)
        | ExprKind::Comma(a, b) => {
            if let Some(found) = node_at(a, next, target) {
                return Some(found);
            }
            node_at(b, next, target)
        }
        ExprKind::Ternary(c, t, e2) => {
            if let Some(found) = node_at(c, next, target) {
                return Some(found);
            }
            if let Some(found) = node_at(t, next, target) {
                return Some(found);
            }
            node_at(e2, next, target)
        }
        ExprKind::Call(_, args) => {
            for a in args {
                if let Some(found) = node_at(a, next, target) {
                    return Some(found);
                }
            }
            None
        }
        ExprKind::Member(a, _, _) => node_at(a, next, target),
        _ => None,
    }
}

fn replace_node(e: &mut Expr, next: &mut usize, target: usize, new: &Expr) -> bool {
    let id = *next;
    *next += 1;
    if id == target {
        *e = new.clone();
        return true;
    }
    match &mut e.kind {
        ExprKind::Unary(_, a) | ExprKind::Post(_, a) | ExprKind::Cast(_, a) => {
            replace_node(a, next, target, new)
        }
        ExprKind::Binary(_, a, b)
        | ExprKind::Assign(_, a, b)
        | ExprKind::Index(a, b)
        | ExprKind::Comma(a, b) => {
            replace_node(a, next, target, new) || replace_node(b, next, target, new)
        }
        ExprKind::Ternary(c, t, e2) => {
            replace_node(c, next, target, new)
                || replace_node(t, next, target, new)
                || replace_node(e2, next, target, new)
        }
        ExprKind::Call(_, args) => args
            .iter_mut()
            .any(|a| replace_node(a, next, target, new)),
        ExprKind::Member(a, _, _) => replace_node(a, next, target, new),
        _ => false,
    }
}

/// Replacement candidates for one node, most aggressive first: each
/// direct sub-expression, then the literal `0`.
fn candidates(node: &Expr) -> Vec<Expr> {
    let mut out: Vec<Expr> = children(node).into_iter().cloned().collect();
    if !matches!(node.kind, ExprKind::IntLit(_)) {
        out.push(Expr {
            id: node.id,
            kind: ExprKind::IntLit(0),
        });
    }
    out
}

fn simplify_slots(p: &mut Program, sh: &mut Shrinker) {
    // Every accepted edit either strictly shrinks the expression node
    // count (hoisting) or converts a non-literal node into a literal, so
    // the loop terminates without an explicit fuel bound; the oracle
    // budget cuts it short regardless.
    let mut changed = true;
    while changed && !sh.exhausted() {
        changed = false;
        let before = printed_len(p);
        'outer: for slot in 0..count_slots(p) {
            let expr = find_slot(p, slot).expect("slot < count").clone();
            for node_idx in 0..node_count(&expr) {
                let node = node_at(&expr, &mut 0, node_idx).expect("node < count");
                for cand in candidates(node) {
                    let mut cand_p = p.clone();
                    let slot_expr = find_slot(&mut cand_p, slot).expect("same shape");
                    assert!(replace_node(slot_expr, &mut 0, node_idx, &cand));
                    if printed_len(&cand_p) <= before && sh.accepts(&cand_p) {
                        *p = cand_p;
                        changed = true;
                        break 'outer;
                    }
                }
            }
        }
    }
}

/// Optional-slot removal: `int a = e;` → `int a;`, `for (i; c; s)` losing
/// `c` or `s`. Each is its own candidate edit.
fn drop_optional_slots(p: &mut Program, sh: &mut Shrinker) {
    let mut changed = true;
    while changed && !sh.exhausted() {
        changed = false;
        let total = count_optional(p);
        for id in 0..total {
            let mut cand = p.clone();
            if !remove_optional(&mut cand, id) {
                continue;
            }
            if sh.accepts(&cand) {
                *p = cand;
                changed = true;
                break; // ids shifted; re-enumerate
            }
        }
    }
}

/// Enumerates removable optional slots; with `remove` set, removes slot
/// `target` and reports whether it existed.
fn walk_optional(p: &mut Program, target: usize, remove: bool) -> (usize, bool) {
    let mut next = 0usize;
    let mut removed = false;
    let mut try_slot = |next: &mut usize, clear: &mut dyn FnMut()| {
        let id = *next;
        *next += 1;
        if remove && id == target {
            clear();
            removed = true;
        }
    };
    fn stmts(
        list: &mut [Stmt],
        next: &mut usize,
        try_slot: &mut impl FnMut(&mut usize, &mut dyn FnMut()),
    ) {
        for s in list.iter_mut() {
            match s {
                Stmt::Decl(decls) => {
                    for d in decls {
                        if d.init.is_some() {
                            try_slot(next, &mut || d.init = None);
                        }
                    }
                }
                Stmt::Block(b) => stmts(b, next, try_slot),
                Stmt::If(_, t, e) => {
                    stmts(std::slice::from_mut(t), next, try_slot);
                    if let Some(e) = e {
                        stmts(std::slice::from_mut(e), next, try_slot);
                    }
                }
                Stmt::While(_, b) | Stmt::DoWhile(b, _) => {
                    stmts(std::slice::from_mut(b), next, try_slot)
                }
                Stmt::For(init, cond, step, b) => {
                    if let Some(ForInit::Decl(ds)) = init {
                        for d in ds {
                            if d.init.is_some() {
                                try_slot(next, &mut || d.init = None);
                            }
                        }
                    }
                    if cond.is_some() {
                        try_slot(next, &mut || *cond = None);
                    }
                    if step.is_some() {
                        try_slot(next, &mut || *step = None);
                    }
                    stmts(std::slice::from_mut(b), next, try_slot);
                }
                Stmt::Label(_, inner) => stmts(std::slice::from_mut(inner), next, try_slot),
                _ => {}
            }
        }
    }
    for item in &mut p.items {
        match item {
            Item::Global(decls) => {
                for d in decls {
                    if d.init.is_some() {
                        try_slot(&mut next, &mut || d.init = None);
                    }
                }
            }
            Item::Func(f) => stmts(&mut f.body, &mut next, &mut try_slot),
            Item::Struct(_) => {}
        }
    }
    (next, removed)
}

fn count_optional(p: &mut Program) -> usize {
    walk_optional(p, usize::MAX, false).0
}

fn remove_optional(p: &mut Program, target: usize) -> bool {
    walk_optional(p, target, true).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_minic::{parse, print_program};

    fn run(src: &str, oracle: impl Fn(&Program) -> bool + 'static) -> String {
        let mut p = parse(src).expect("parses");
        let mut oracle = move |p: &Program| oracle(p);
        let mut sh = Shrinker::new(&mut oracle, 10_000);
        assert!(sh.accepts(&p), "oracle holds on the input");
        reduce(&mut p, &mut sh);
        print_program(&p)
    }

    #[test]
    fn hoists_the_relevant_subexpression() {
        let out = run(
            "int a, b, c; int main() { a = b + (c - c) * 2; return 0; }",
            |p| print_program(p).contains("c - c"),
        );
        assert!(out.contains("c - c"), "{out}");
        assert!(!out.contains("b +"), "irrelevant operand gone: {out}");
        assert!(!out.contains("* 2"), "irrelevant factor gone: {out}");
    }

    #[test]
    fn folds_irrelevant_operands_to_literals() {
        let out = run(
            "int x, y; int main() { x = x / x + y; return 0; }",
            |p| print_program(p).contains("x / x"),
        );
        assert!(out.contains("x / x"), "{out}");
        assert!(!out.contains("+ y"), "{out}");
    }

    #[test]
    fn drops_initializers_and_for_clauses() {
        let out = run(
            "int g = 42; int main() { for (int i = 0; i < 3; i++) g = g; return 0; }",
            |p| print_program(p).contains("g = g"),
        );
        assert!(out.contains("g = g"), "{out}");
        assert!(!out.contains("42"), "{out}");
        parse(&out).expect("still parses");
    }

    #[test]
    fn slot_count_matches_edit_reachability() {
        let mut p = parse(
            "int g = 1; int main() { int x = 2; do { x = x + g; } while (x < 9); return x; }",
        )
        .expect("parses");
        let slots = count_slots(&mut p);
        for id in 0..slots {
            assert!(find_slot(&mut p, id).is_some(), "slot {id} unreachable");
        }
        assert!(find_slot(&mut p, slots).is_none());
    }
}
