//! Skeleton-aware hole-renaming canonicalization (α-normal form).
//!
//! Two witnesses of the same root cause frequently differ only in
//! variable spelling — SPE realizes variants by *renaming use sites*, so
//! a bug found through `seeds/figure2.c` and again through a corpus file
//! yields reproducers whose usage partitions (which holes share a
//! variable — the skeleton-level identity SPE enumerates) coincide while
//! every name differs. This pass erases the spelling: variables are
//! renamed `a`, `b`, `c`, … in declaration order (per C scoping, so
//! shadowed locals get their own fresh names and visibility is
//! preserved), labels `l0`, `l1`, … in definition order, and everything
//! else (functions, struct tags, fields, literals) stays fixed. The
//! result is a canonical representative of the witness's α-equivalence
//! class: two programs canonicalize to byte-identical source iff they
//! differ only by a consistent renaming — exactly the collision the
//! fingerprint dedup pass wants.
//!
//! Renaming is a bijection on each scope's variables, so every
//! name-equality pattern (`x = x`, `a - a`, aliased `&v` pairs, distinct
//! variable counts) — the patterns the seeded bug triggers match on — is
//! preserved, and the canonical witness keeps reproducing.

use spe_minic::ast::{
    Expr, ExprKind, ForInit, Function, Item, Param, Program, Stmt, StructDef, VarDeclarator,
};
use std::collections::{HashMap, HashSet};

/// Names the canonical namer must never produce: everything that is not a
/// variable (callees, function and struct names) plus the language's
/// keywords — single letters are always safe, but the generator's
/// two-letter tail contains `do`/`if`.
fn reserved_names(p: &Program) -> HashSet<String> {
    const KEYWORDS: &[&str] = &[
        "void", "char", "int", "unsigned", "long", "float", "double", "struct", "static", "if",
        "else", "while", "for", "do", "return", "break", "continue", "goto", "sizeof",
    ];
    let mut out: HashSet<String> = KEYWORDS.iter().map(|s| s.to_string()).collect();
    fn exprs(e: &Expr, out: &mut HashSet<String>) {
        if let ExprKind::Call(name, _) = &e.kind {
            out.insert(name.clone());
        }
        match &e.kind {
            ExprKind::Unary(_, a) | ExprKind::Post(_, a) | ExprKind::Cast(_, a) => exprs(a, out),
            ExprKind::Binary(_, a, b)
            | ExprKind::Assign(_, a, b)
            | ExprKind::Index(a, b)
            | ExprKind::Comma(a, b) => {
                exprs(a, out);
                exprs(b, out);
            }
            ExprKind::Ternary(c, t, e2) => {
                exprs(c, out);
                exprs(t, out);
                exprs(e2, out);
            }
            ExprKind::Call(_, args) => args.iter().for_each(|a| exprs(a, out)),
            ExprKind::Member(a, _, _) => exprs(a, out),
            _ => {}
        }
    }
    fn stmts(s: &Stmt, out: &mut HashSet<String>) {
        match s {
            Stmt::Expr(e) | Stmt::Return(Some(e)) => exprs(e, out),
            Stmt::Decl(ds) => ds.iter().filter_map(|d| d.init.as_ref()).for_each(|e| exprs(e, out)),
            Stmt::Block(b) => b.iter().for_each(|s| stmts(s, out)),
            Stmt::If(c, t, e) => {
                exprs(c, out);
                stmts(t, out);
                if let Some(e) = e {
                    stmts(e, out);
                }
            }
            Stmt::While(c, b) | Stmt::DoWhile(b, c) => {
                exprs(c, out);
                stmts(b, out);
            }
            Stmt::For(init, cond, step, b) => {
                match init {
                    Some(ForInit::Decl(ds)) => ds
                        .iter()
                        .filter_map(|d| d.init.as_ref())
                        .for_each(|e| exprs(e, out)),
                    Some(ForInit::Expr(e)) => exprs(e, out),
                    None => {}
                }
                if let Some(c) = cond {
                    exprs(c, out);
                }
                if let Some(st) = step {
                    exprs(st, out);
                }
                stmts(b, out);
            }
            Stmt::Label(_, inner) => stmts(inner, out),
            _ => {}
        }
    }
    for item in &p.items {
        match item {
            Item::Func(f) => {
                out.insert(f.name.clone());
                f.body.iter().for_each(|s| stmts(s, &mut out));
            }
            Item::Struct(s) => {
                out.insert(s.name.clone());
            }
            Item::Global(ds) => ds
                .iter()
                .filter_map(|d| d.init.as_ref())
                .for_each(|e| exprs(e, &mut out)),
        }
    }
    out
}

/// Deterministic fresh-name generator: `a`…`z`, `aa`, `ab`, … skipping
/// reserved names.
struct Namer {
    reserved: HashSet<String>,
    next: usize,
}

impl Namer {
    fn spell(mut i: usize) -> String {
        let mut out = String::new();
        loop {
            out.insert(0, (b'a' + (i % 26) as u8) as char);
            i /= 26;
            if i == 0 {
                return out;
            }
            i -= 1;
        }
    }

    fn fresh(&mut self) -> String {
        loop {
            let name = Namer::spell(self.next);
            self.next += 1;
            if !self.reserved.contains(&name) {
                return name;
            }
        }
    }
}

/// Lexical scope stack mapping original names to canonical ones.
struct Scopes(Vec<HashMap<String, String>>);

impl Scopes {
    fn lookup(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .rev()
            .find_map(|m| m.get(name).map(String::as_str))
    }

    fn declare(&mut self, old: &str, new: String) {
        self.0
            .last_mut()
            .expect("scope stack never empty")
            .insert(old.to_string(), new);
    }
}

/// Canonicalizes `p` into declaration-order α-normal form.
pub fn canonicalize(p: &Program) -> Program {
    let mut namer = Namer {
        reserved: reserved_names(p),
        next: 0,
    };
    let mut scopes = Scopes(vec![HashMap::new()]);
    let items = p
        .items
        .iter()
        .map(|item| match item {
            Item::Struct(s) => Item::Struct(StructDef {
                name: s.name.clone(),
                fields: s.fields.clone(),
            }),
            Item::Global(ds) => Item::Global(declarators(ds, &mut scopes, &mut namer)),
            Item::Func(f) => {
                scopes.0.push(HashMap::new());
                let params = f
                    .params
                    .iter()
                    .map(|prm| {
                        let fresh = namer.fresh();
                        scopes.declare(&prm.name, fresh.clone());
                        Param {
                            name: fresh,
                            ty: prm.ty.clone(),
                        }
                    })
                    .collect();
                let labels = label_map(&f.body, &namer.reserved);
                let body = f
                    .body
                    .iter()
                    .map(|s| stmt(s, &mut scopes, &mut namer, &labels))
                    .collect();
                scopes.0.pop();
                Item::Func(Function {
                    name: f.name.clone(),
                    ret: f.ret.clone(),
                    params,
                    body,
                    is_static: f.is_static,
                })
            }
        })
        .collect();
    Program {
        items,
        max_occ: p.max_occ,
        max_expr: p.max_expr,
    }
}

/// Canonical names for a function's labels, in definition order.
fn label_map(body: &[Stmt], reserved: &HashSet<String>) -> HashMap<String, String> {
    fn collect(s: &Stmt, out: &mut Vec<String>) {
        match s {
            Stmt::Label(l, inner) => {
                if !out.contains(l) {
                    out.push(l.clone());
                }
                collect(inner, out);
            }
            Stmt::Block(b) => b.iter().for_each(|s| collect(s, out)),
            Stmt::If(_, t, e) => {
                collect(t, out);
                if let Some(e) = e {
                    collect(e, out);
                }
            }
            Stmt::While(_, b) | Stmt::DoWhile(b, _) | Stmt::For(_, _, _, b) => collect(b, out),
            _ => {}
        }
    }
    let mut defined = Vec::new();
    body.iter().for_each(|s| collect(s, &mut defined));
    let mut map = HashMap::new();
    let mut i = 0usize;
    for old in defined {
        let fresh = loop {
            let cand = format!("l{i}");
            i += 1;
            if !reserved.contains(&cand) {
                break cand;
            }
        };
        map.insert(old, fresh);
    }
    map
}

fn declarators(
    ds: &[VarDeclarator],
    scopes: &mut Scopes,
    namer: &mut Namer,
) -> Vec<VarDeclarator> {
    ds.iter()
        .map(|d| {
            // C's declaration point precedes the initializer, so the
            // name is declared before the init is renamed (`int a = a;`
            // refers to the new `a`, not an outer one).
            let fresh = namer.fresh();
            scopes.declare(&d.name, fresh.clone());
            VarDeclarator {
                name: fresh,
                ty: d.ty.clone(),
                init: d.init.as_ref().map(|e| expr(e, scopes)),
            }
        })
        .collect()
}

fn stmt(
    s: &Stmt,
    scopes: &mut Scopes,
    namer: &mut Namer,
    labels: &HashMap<String, String>,
) -> Stmt {
    match s {
        Stmt::Expr(e) => Stmt::Expr(expr(e, scopes)),
        Stmt::Decl(ds) => Stmt::Decl(declarators(ds, scopes, namer)),
        Stmt::Block(b) => {
            scopes.0.push(HashMap::new());
            let out = b.iter().map(|s| stmt(s, scopes, namer, labels)).collect();
            scopes.0.pop();
            Stmt::Block(out)
        }
        Stmt::If(c, t, e) => Stmt::If(
            expr(c, scopes),
            Box::new(stmt(t, scopes, namer, labels)),
            e.as_ref().map(|e| Box::new(stmt(e, scopes, namer, labels))),
        ),
        Stmt::While(c, b) => Stmt::While(expr(c, scopes), Box::new(stmt(b, scopes, namer, labels))),
        Stmt::DoWhile(b, c) => {
            Stmt::DoWhile(Box::new(stmt(b, scopes, namer, labels)), expr(c, scopes))
        }
        Stmt::For(init, cond, step, b) => {
            scopes.0.push(HashMap::new());
            let init = init.as_ref().map(|i| match i {
                ForInit::Decl(ds) => ForInit::Decl(declarators(ds, scopes, namer)),
                ForInit::Expr(e) => ForInit::Expr(expr(e, scopes)),
            });
            let out = Stmt::For(
                init,
                cond.as_ref().map(|c| expr(c, scopes)),
                step.as_ref().map(|st| expr(st, scopes)),
                Box::new(stmt(b, scopes, namer, labels)),
            );
            scopes.0.pop();
            out
        }
        Stmt::Return(e) => Stmt::Return(e.as_ref().map(|e| expr(e, scopes))),
        Stmt::Goto(l) => Stmt::Goto(labels.get(l).cloned().unwrap_or_else(|| l.clone())),
        Stmt::Label(l, inner) => Stmt::Label(
            labels.get(l).cloned().unwrap_or_else(|| l.clone()),
            Box::new(stmt(inner, scopes, namer, labels)),
        ),
        Stmt::Break => Stmt::Break,
        Stmt::Continue => Stmt::Continue,
        Stmt::Empty => Stmt::Empty,
    }
}

fn expr(e: &Expr, scopes: &Scopes) -> Expr {
    let kind = match &e.kind {
        ExprKind::Ident(id) => {
            let mut id = id.clone();
            if let Some(new) = scopes.lookup(&id.name) {
                id.name = new.to_string();
            }
            ExprKind::Ident(id)
        }
        ExprKind::Unary(op, a) => ExprKind::Unary(*op, Box::new(expr(a, scopes))),
        ExprKind::Post(op, a) => ExprKind::Post(*op, Box::new(expr(a, scopes))),
        ExprKind::Cast(ty, a) => ExprKind::Cast(ty.clone(), Box::new(expr(a, scopes))),
        ExprKind::Binary(op, a, b) => ExprKind::Binary(
            *op,
            Box::new(expr(a, scopes)),
            Box::new(expr(b, scopes)),
        ),
        ExprKind::Assign(op, a, b) => ExprKind::Assign(
            *op,
            Box::new(expr(a, scopes)),
            Box::new(expr(b, scopes)),
        ),
        ExprKind::Index(a, b) => {
            ExprKind::Index(Box::new(expr(a, scopes)), Box::new(expr(b, scopes)))
        }
        ExprKind::Comma(a, b) => {
            ExprKind::Comma(Box::new(expr(a, scopes)), Box::new(expr(b, scopes)))
        }
        ExprKind::Ternary(c, t, e2) => ExprKind::Ternary(
            Box::new(expr(c, scopes)),
            Box::new(expr(t, scopes)),
            Box::new(expr(e2, scopes)),
        ),
        ExprKind::Call(name, args) => ExprKind::Call(
            name.clone(),
            args.iter().map(|a| expr(a, scopes)).collect(),
        ),
        ExprKind::Member(a, field, arrow) => {
            ExprKind::Member(Box::new(expr(a, scopes)), field.clone(), *arrow)
        }
        lit @ (ExprKind::IntLit(_) | ExprKind::CharLit(_) | ExprKind::StrLit(_)) => lit.clone(),
    };
    Expr { id: e.id, kind }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_minic::{analyze, parse, print_program};

    fn canon(src: &str) -> String {
        let p = parse(src).expect("parses");
        let c = canonicalize(&p);
        let out = print_program(&c);
        let re = parse(&out).unwrap_or_else(|e| panic!("canonical form reparses: {e}\n{out}"));
        analyze(&re).unwrap_or_else(|e| panic!("canonical form scope-checks: {e}\n{out}"));
        out
    }

    #[test]
    fn alpha_equivalent_programs_coincide() {
        let a = canon("int x, y; int main() { x = y; y = x + x; return y; }");
        let b = canon("int foo, bar; int main() { foo = bar; bar = foo + foo; return bar; }");
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_partitions_stay_distinct() {
        let a = canon("int x, y; int main() { x = y; return 0; }");
        let b = canon("int x, y; int main() { x = x; return 0; }");
        assert_ne!(a, b, "usage partition is part of the canonical form");
    }

    #[test]
    fn shadowing_gets_fresh_names() {
        let out = canon("int v; int main() { int v = 1; { int v = 2; v = v + 1; } return v; }");
        // Three distinct declarations -> three distinct canonical names.
        assert!(out.contains("int a"), "{out}");
        assert!(out.contains("int b"), "{out}");
        assert!(out.contains("int c"), "{out}");
    }

    #[test]
    fn callees_and_labels_are_handled() {
        let out = canon(
            "int x; int main() { l: x = x + 1; printf(\"%d\", x); if (x < 3) goto l; return 0; }",
        );
        assert!(out.contains("printf"), "callee kept: {out}");
        assert!(out.contains("l0:"), "label canonicalized: {out}");
        assert!(out.contains("goto l0;"), "goto follows: {out}");
    }

    #[test]
    fn struct_fields_stay_fixed() {
        let out = canon("struct s { int field; }; struct s g; int main() { g.field = 1; return 0; }");
        assert!(out.contains(".field"), "{out}");
        assert!(out.contains("struct s"), "{out}");
    }

    #[test]
    fn use_before_local_declaration_resolves_to_the_outer_variable() {
        // `g` in `x = g;` is the global; the later local `g` shadows only
        // after its declaration point.
        let out = canon("int g; int main() { int x; x = g; int g = 2; return x + g; }");
        // global g -> a, x -> b, local g -> c.
        assert!(out.contains("b = a;"), "{out}");
        assert!(out.contains("return b + c;"), "{out}");
    }
}
