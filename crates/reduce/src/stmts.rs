//! Statement-level hierarchical reduction.
//!
//! Four sub-passes, coarse to fine, each keeping the program reproducing
//! under the oracle at every step:
//!
//! 1. **Item ddmin** — whole top-level items (functions, globals, struct
//!    definitions) are minimized with [`crate::ddmin`];
//! 2. **Block ddmin** — every statement list (function bodies, `{}`
//!    blocks), outermost first, is minimized the same way; statements
//!    deleted at an outer level take their nested blocks with them, which
//!    is what makes the hierarchy cheaper than flat line-based ddmin;
//! 3. **Unwrapping** — control structures collapse into their bodies
//!    (`if (c) S` → `S`, loops → body, `label: S` → `S`, `{ S… }`
//!    spliced inline, `else` dropped);
//! 4. **Declarator pruning** — multi-declarator declarations lose unused
//!    declarators (`int a, b, c;` → `int b;`).

use crate::ddmin::ddmin;
use crate::{printed_len, Shrinker};
use spe_minic::ast::{Item, Program, Stmt};

/// Runs all statement-level passes once.
pub(crate) fn reduce(p: &mut Program, sh: &mut Shrinker) {
    reduce_items(p, sh);
    reduce_lists(p, sh);
    unwrap_statements(p, sh);
    prune_declarators(p, sh);
}

fn with_items(p: &Program, items: &[Item]) -> Program {
    Program {
        items: items.to_vec(),
        max_occ: p.max_occ,
        max_expr: p.max_expr,
    }
}

fn reduce_items(p: &mut Program, sh: &mut Shrinker) {
    if p.items.len() < 2 {
        return;
    }
    let kept = ddmin(p.items.clone(), &mut |subset| {
        sh.accepts(&with_items(p, subset))
    });
    if kept.len() < p.items.len() {
        p.items = kept;
    }
}

/// Finds the `target`-th statement list of the program in pre-order
/// (function bodies first, then nested `{}` blocks within each).
fn find_list(p: &mut Program, target: usize) -> Option<&mut Vec<Stmt>> {
    let mut next = 0usize;
    for item in &mut p.items {
        if let Item::Func(f) = item {
            if let Some(found) = find_in_list(&mut f.body, &mut next, target) {
                return Some(found);
            }
        }
    }
    None
}

fn find_in_list<'a>(
    stmts: &'a mut Vec<Stmt>,
    next: &mut usize,
    target: usize,
) -> Option<&'a mut Vec<Stmt>> {
    let id = *next;
    *next += 1;
    if id == target {
        return Some(stmts);
    }
    for s in stmts.iter_mut() {
        if let Some(found) = find_in_stmt(s, next, target) {
            return Some(found);
        }
    }
    None
}

fn find_in_stmt<'a>(
    s: &'a mut Stmt,
    next: &mut usize,
    target: usize,
) -> Option<&'a mut Vec<Stmt>> {
    match s {
        Stmt::Block(b) => find_in_list(b, next, target),
        Stmt::If(_, t, e) => {
            if let Some(found) = find_in_stmt(t, next, target) {
                return Some(found);
            }
            match e {
                Some(e) => find_in_stmt(e, next, target),
                None => None,
            }
        }
        Stmt::While(_, b) | Stmt::DoWhile(b, _) | Stmt::For(_, _, _, b) => {
            find_in_stmt(b, next, target)
        }
        Stmt::Label(_, inner) => find_in_stmt(inner, next, target),
        _ => None,
    }
}

fn count_lists(p: &mut Program) -> usize {
    // One past the largest reachable id: probe by walking with an
    // unreachable target and reading the counter.
    let mut next = 0usize;
    for item in &mut p.items {
        if let Item::Func(f) = item {
            let _ = find_in_list(&mut f.body, &mut next, usize::MAX);
        }
    }
    next
}

fn reduce_lists(p: &mut Program, sh: &mut Shrinker) {
    // Outermost lists have the smallest ids; editing list `i` only
    // removes lists with larger ids, so one ascending sweep (with the
    // count re-taken each step) visits every surviving list exactly once.
    let mut id = 0usize;
    while id < count_lists(p) && !sh.exhausted() {
        let list = find_list(p, id).expect("id < count").clone();
        if !list.is_empty() {
            let kept = ddmin(list, &mut |subset| {
                let mut cand = p.clone();
                *find_list(&mut cand, id).expect("same shape") = subset.to_vec();
                sh.accepts(&cand)
            });
            *find_list(p, id).expect("id < count") = kept;
        }
        id += 1;
    }
}

/// Statement sequences a control structure can collapse into, most
/// aggressive first.
fn unwrap_candidates(s: &Stmt) -> Vec<Vec<Stmt>> {
    fn body_of(s: &Stmt) -> Vec<Stmt> {
        match s {
            Stmt::Block(b) => b.clone(),
            other => vec![other.clone()],
        }
    }
    match s {
        Stmt::If(c, t, Some(e)) => vec![
            body_of(t),
            body_of(e),
            vec![Stmt::If(c.clone(), t.clone(), None)],
        ],
        Stmt::If(_, t, None) => vec![body_of(t)],
        Stmt::While(_, b) | Stmt::DoWhile(b, _) | Stmt::For(_, _, _, b) => vec![body_of(b)],
        Stmt::Label(_, inner) => vec![body_of(inner)],
        Stmt::Block(b) => vec![b.clone()],
        _ => Vec::new(),
    }
}

fn unwrap_statements(p: &mut Program, sh: &mut Shrinker) {
    let mut changed = true;
    while changed && !sh.exhausted() {
        changed = false;
        let before = printed_len(p);
        'outer: for id in 0..count_lists(p) {
            let list = find_list(p, id).expect("id < count").clone();
            for (i, s) in list.iter().enumerate() {
                for replacement in unwrap_candidates(s) {
                    let mut cand = p.clone();
                    let l = find_list(&mut cand, id).expect("same shape");
                    l.splice(i..=i, replacement);
                    if printed_len(&cand) < before && sh.accepts(&cand) {
                        *p = cand;
                        changed = true;
                        break 'outer;
                    }
                }
            }
        }
    }
}

fn prune_declarators(p: &mut Program, sh: &mut Shrinker) {
    // Globals: ddmin each multi-declarator `Item::Global` (non-empty —
    // removing the whole item is `reduce_items`' job).
    for idx in 0..p.items.len() {
        let Item::Global(decls) = &p.items[idx] else {
            continue;
        };
        if decls.len() < 2 {
            continue;
        }
        let kept = ddmin(decls.clone(), &mut |subset| {
            if subset.is_empty() {
                return false;
            }
            let mut cand = p.clone();
            cand.items[idx] = Item::Global(subset.to_vec());
            sh.accepts(&cand)
        });
        if let Item::Global(decls) = &mut p.items[idx] {
            *decls = kept;
        }
    }
    // Locals: ddmin each multi-declarator `Stmt::Decl` of every list.
    for id in 0..count_lists(p) {
        let list = find_list(p, id).expect("id < count").clone();
        for (i, s) in list.iter().enumerate() {
            let Stmt::Decl(decls) = s else { continue };
            if decls.len() < 2 {
                continue;
            }
            let kept = ddmin(decls.clone(), &mut |subset| {
                if subset.is_empty() {
                    return false;
                }
                let mut cand = p.clone();
                let l = find_list(&mut cand, id).expect("same shape");
                l[i] = Stmt::Decl(subset.to_vec());
                sh.accepts(&cand)
            });
            let l = find_list(p, id).expect("id < count");
            l[i] = Stmt::Decl(kept);
        }
    }
}

/// The ordered statement-kind shape of a program: every statement of
/// every function, nested structure included, as a compact tag string —
/// e.g. `fn{decl,if{expr},ret}`. Variable spellings, expression contents
/// and types are all erased, so the signature is strictly coarser than
/// the structural [`crate::fingerprint`]: two *different* minimal
/// witnesses of one root cause (a bug reached through two corpus files
/// that ddmin to distinct programs) usually still share it, which is
/// what the harness's trigger-aware duplicate folding exploits
/// (`spe_harness::reduction`, `DESIGN.md` §7).
pub fn stmt_kind_signature(p: &Program) -> String {
    let mut out = String::new();
    for item in &p.items {
        match item {
            Item::Global(_) => out.push_str("gl,"),
            Item::Struct(_) => out.push_str("st,"),
            Item::Func(f) => {
                out.push_str("fn{");
                for s in &f.body {
                    stmt_tag(s, &mut out);
                }
                out.push_str("},");
            }
        }
    }
    out
}

fn stmt_tag(s: &Stmt, out: &mut String) {
    match s {
        Stmt::Expr(_) => out.push_str("expr,"),
        Stmt::Decl(_) => out.push_str("decl,"),
        Stmt::Block(body) => {
            out.push('{');
            for s in body {
                stmt_tag(s, out);
            }
            out.push_str("},");
        }
        Stmt::If(_, t, e) => {
            out.push_str("if{");
            stmt_tag(t, out);
            if let Some(e) = e {
                out.push_str("}else{");
                stmt_tag(e, out);
            }
            out.push_str("},");
        }
        Stmt::While(_, body) => {
            out.push_str("while{");
            stmt_tag(body, out);
            out.push_str("},");
        }
        Stmt::DoWhile(body, _) => {
            out.push_str("do{");
            stmt_tag(body, out);
            out.push_str("},");
        }
        Stmt::For(_, _, _, body) => {
            out.push_str("for{");
            stmt_tag(body, out);
            out.push_str("},");
        }
        Stmt::Return(_) => out.push_str("ret,"),
        Stmt::Break => out.push_str("brk,"),
        Stmt::Continue => out.push_str("cont,"),
        Stmt::Goto(_) => out.push_str("goto,"),
        Stmt::Label(_, s) => {
            out.push_str("lbl:");
            stmt_tag(s, out);
        }
        Stmt::Empty => out.push_str("nop,"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_minic::{parse, print_program};

    fn run(src: &str, needle: &'static str) -> String {
        let mut p = parse(src).expect("parses");
        let mut oracle = move |p: &Program| print_program(p).contains(needle);
        let mut sh = Shrinker::new(&mut oracle, 10_000);
        assert!(sh.accepts(&p), "oracle holds on the input");
        reduce(&mut p, &mut sh);
        print_program(&p)
    }

    #[test]
    fn removes_irrelevant_statements() {
        let out = run(
            "int a, b; int main() { b = 1; b = b + 2; a = a; b = b - 1; return b; }",
            "a = a;",
        );
        assert!(out.contains("a = a;"), "{out}");
        assert!(!out.contains("b + 2"), "{out}");
    }

    #[test]
    fn unwraps_control_structure() {
        let out = run(
            "int a, b; int main() { if (b) { while (b) { a = a; } } return 0; }",
            "a = a;",
        );
        assert!(out.contains("a = a;"), "{out}");
        assert!(!out.contains("while"), "{out}");
        assert!(!out.contains("if"), "{out}");
    }

    #[test]
    fn prunes_unused_declarators_and_items() {
        let out = run(
            "int a, b, c; int unused(void) { return 1; } int main() { a = a; return 0; }",
            "a = a;",
        );
        assert!(!out.contains("unused"), "{out}");
        assert!(!out.contains('b'), "{out}");
        assert!(!out.contains('c'), "{out}");
    }

    #[test]
    fn keeps_declarations_needed_by_the_witness() {
        let out = run(
            "int main() { int a = 1; int b = 2; b = a + b; a = a; return b; }",
            "a = a;",
        );
        assert!(out.contains("int a"), "declaration survives: {out}");
        parse(&out).expect("reduced output parses");
    }

    #[test]
    fn stmt_kind_signature_erases_spelling_but_not_shape() {
        let sig = |src: &str| stmt_kind_signature(&parse(src).expect("parses"));
        // α-renaming and expression contents are erased…
        assert_eq!(
            sig("int main() { int a = 1; if (a) a = a; return a; }"),
            sig("int main() { int z = 9; if (z) z = z + z; return z; }"),
        );
        // …but control shape is not.
        assert_ne!(
            sig("int main() { int a = 1; if (a) a = a; return a; }"),
            sig("int main() { int a = 1; while (a) a = a; return a; }"),
        );
    }
}
