//! Structural witness fingerprints.
//!
//! A [`Fingerprint`] is a 64-bit FNV-1a hash of the canonicalized
//! ([`crate::canon`]) witness's printed source. Because canonicalization
//! erases variable and label spelling while preserving structure and the
//! usage partition, the fingerprint is an α-invariant of the program: two
//! witnesses collide iff they are the same program up to renaming (modulo
//! the negligible 64-bit hash collision probability). The campaign's
//! second dedup pass keys on `(compiler family, finding kind,
//! fingerprint)` — no ground-truth bug ids involved.

use crate::canon::canonicalize;
use spe_minic::ast::Program;
use std::fmt;

/// A 64-bit structural hash of a canonicalized witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fingerprints a program, canonicalizing it first.
pub fn fingerprint(p: &Program) -> Fingerprint {
    of_canonical(&canonicalize(p))
}

/// Fingerprints an already-canonicalized program (no re-canonicalization).
pub fn of_canonical(p: &Program) -> Fingerprint {
    Fingerprint(fnv1a(spe_minic::print_program(p).as_bytes()))
}

/// Parses and fingerprints source text; `None` when it does not parse.
pub fn fingerprint_source(src: &str) -> Option<Fingerprint> {
    spe_minic::parse(src).ok().map(|p| fingerprint(&p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_renaming_is_erased() {
        let a = fingerprint_source("int x, y; int main() { x = y - y; return x; }").unwrap();
        let b = fingerprint_source("int p, q; int main() { p = q - q; return p; }").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn structure_is_not_erased() {
        let a = fingerprint_source("int x, y; int main() { x = y - y; return x; }").unwrap();
        let b = fingerprint_source("int x, y; int main() { x = y + y; return x; }").unwrap();
        let c = fingerprint_source("int x, y; int main() { x = x - x; return x; }").unwrap();
        assert_ne!(a, b, "operator differs");
        assert_ne!(a, c, "usage partition differs");
    }

    #[test]
    fn display_is_fixed_width_hex() {
        let f = Fingerprint(0xbeef);
        assert_eq!(f.to_string(), "000000000000beef");
    }

    #[test]
    fn malformed_source_has_no_fingerprint() {
        assert_eq!(fingerprint_source("int main( {"), None);
    }
}
