//! Minimizing delta debugging (ddmin) over an arbitrary item list.
//!
//! The classic Zeller–Hildebrandt algorithm: split the list into `n`
//! chunks; if any chunk alone still satisfies the predicate, recurse on
//! it; otherwise if any complement does, recurse on the complement;
//! otherwise double the granularity, until single-item resolution. The
//! result is 1-minimal *with respect to chunk removal* — no single
//! remaining item can be removed without losing the property.
//!
//! The predicate is handed whole candidate slices and is free to reject
//! for any reason (oracle failure, scope errors, exhausted budget), which
//! is how the reducer's crate-internal `Shrinker` plugs in.

/// Minimizes `items` under `test`, assuming `test(&items)` already holds.
/// Returns a subsequence (order preserved) on which `test` still holds.
///
/// `test(&[])` is tried first — the empty list is the global minimum.
pub fn ddmin<T: Clone>(items: Vec<T>, test: &mut impl FnMut(&[T]) -> bool) -> Vec<T> {
    if items.is_empty() {
        return items;
    }
    if test(&[]) {
        return Vec::new();
    }
    let mut items = items;
    let mut n = 2usize.min(items.len());
    while items.len() >= 2 {
        let chunks: Vec<(usize, usize)> = (0..n)
            .map(|i| (items.len() * i / n, items.len() * (i + 1) / n))
            .filter(|(s, e)| s < e)
            .collect();
        let mut reduced = false;
        // Reduce to a single chunk.
        for &(s, e) in &chunks {
            if e - s == items.len() {
                continue;
            }
            let subset: Vec<T> = items[s..e].to_vec();
            if test(&subset) {
                items = subset;
                n = 2;
                reduced = true;
                break;
            }
        }
        if reduced {
            continue;
        }
        // Reduce to a complement (skipped at n == 2, where complements
        // coincide with the chunks just tried).
        if n > 2 {
            for &(s, e) in &chunks {
                let complement: Vec<T> = items[..s]
                    .iter()
                    .chain(items[e..].iter())
                    .cloned()
                    .collect();
                if test(&complement) {
                    items = complement;
                    n = (n - 1).max(2);
                    reduced = true;
                    break;
                }
            }
        }
        if !reduced {
            if n >= items.len() {
                break;
            }
            n = (2 * n).min(items.len());
        }
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_a_single_needle() {
        let items: Vec<u32> = (0..64).collect();
        let mut calls = 0;
        let out = ddmin(items, &mut |s| {
            calls += 1;
            s.contains(&37)
        });
        assert_eq!(out, vec![37]);
        assert!(calls < 64, "binary descent beats linear scan ({calls})");
    }

    #[test]
    fn keeps_a_scattered_pair() {
        let items: Vec<u32> = (0..32).collect();
        let out = ddmin(items, &mut |s| s.contains(&3) && s.contains(&29));
        assert_eq!(out, vec![3, 29]);
    }

    #[test]
    fn empty_predicate_collapses_to_nothing() {
        let out = ddmin(vec![1, 2, 3], &mut |_| true);
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_order() {
        let items: Vec<u32> = (0..16).collect();
        let out = ddmin(items, &mut |s| {
            [2u32, 7, 11].iter().all(|x| s.contains(x))
        });
        assert_eq!(out, vec![2, 7, 11]);
    }

    #[test]
    fn all_items_needed_keeps_everything() {
        let items = vec![1, 2, 3, 4, 5];
        let out = ddmin(items.clone(), &mut |s| s.len() == items.len());
        assert_eq!(out, items);
    }
}
