//! Determinism of the parallel campaign: for any worker count, the merged
//! report must be byte-identical to the serial one — same findings in the
//! same order with the same reproducers, same counters, same triage
//! tables.

use spe_corpus::{generate, CorpusConfig};
use spe_harness::{run_campaign, run_campaign_parallel, CampaignConfig};
use spe_simcc::{Compiler, CompilerId};

fn config() -> CampaignConfig {
    CampaignConfig {
        compilers: vec![
            Compiler::new(CompilerId::gcc(700), 0),
            Compiler::new(CompilerId::gcc(700), 3),
            Compiler::new(CompilerId::clang(390), 3),
        ],
        budget: 48,
        algorithm: spe_core::Algorithm::Paper,
        check_wrong_code: true,
        fuel: 20_000,
    }
}

#[test]
fn parallel_campaign_is_byte_identical_to_serial() {
    // A 10-file generated corpus; the fixed seed keeps the workload
    // meaningful (several files expose seeded bugs) and reproducible.
    let files = generate(&CorpusConfig { files: 10, seed: 7 });
    assert_eq!(files.len(), 10);
    let config = config();
    let serial = run_campaign(&files, &config);
    assert!(
        serial.files_processed >= 8,
        "most generated files should analyze, got {}",
        serial.files_processed
    );
    assert!(serial.variants_tested > 0);
    for workers in [1usize, 2, 4] {
        let parallel = run_campaign_parallel(&files, &config, workers);
        assert_eq!(
            parallel, serial,
            "{workers}-worker campaign diverged from serial"
        );
    }
}

#[test]
fn parallel_campaign_matches_on_the_paper_seed_corpus() {
    let files = spe_corpus::seeds::all();
    let config = config();
    let serial = run_campaign(&files, &config);
    assert!(
        !serial.findings.is_empty(),
        "the seed corpus exposes seeded compiler bugs"
    );
    for workers in [2usize, 4] {
        let parallel = run_campaign_parallel(&files, &config, workers);
        assert_eq!(parallel, serial, "{workers} workers");
        // The rendered triage table is a function of the findings, so it
        // is identical too; spot-check the derived orderings used there.
        let serial_sigs: Vec<_> = serial
            .findings
            .iter()
            .map(|f| (&f.file, &f.compiler.family, &f.signature))
            .collect();
        let parallel_sigs: Vec<_> = parallel
            .findings
            .iter()
            .map(|f| (&f.file, &f.compiler.family, &f.signature))
            .collect();
        assert_eq!(serial_sigs, parallel_sigs);
    }
}

#[test]
fn worker_counts_beyond_the_workload_are_safe() {
    let files = generate(&CorpusConfig { files: 2, seed: 3 });
    let config = config();
    let serial = run_campaign(&files, &config);
    let parallel = run_campaign_parallel(&files, &config, 16);
    assert_eq!(parallel, serial);
}
