//! Fault injection for fleet campaigns (`DESIGN.md` §14): host death
//! and resume must preserve merge byte-identity, and every way a set of
//! host journals can fail to be one complete, consistent fleet must be
//! refused with an error naming the offending journal, host, or gap.

use spe_corpus::{generate, CorpusConfig, TestFile};
use spe_harness::checkpoint::{compact_journal, run_campaign_checkpointed, CheckpointOptions};
use spe_harness::fleet::{merge_journals, resume_host, run_host, FleetError};
use spe_harness::{CampaignConfig, CampaignStatus, CheckpointError, FleetPlan};
use spe_simcc::{Compiler, CompilerId};
use std::path::{Path, PathBuf};

fn config() -> CampaignConfig {
    CampaignConfig {
        compilers: vec![
            Compiler::new(CompilerId::gcc(700), 0),
            Compiler::new(CompilerId::gcc(700), 3),
            Compiler::new(CompilerId::clang(390), 3),
        ],
        budget: 32,
        algorithm: spe_core::Algorithm::Paper,
        check_wrong_code: true,
        fuel: 20_000,
    }
}

fn journal_dir(test: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(test);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

fn corpus() -> Vec<TestFile> {
    generate(&CorpusConfig { files: 8, seed: 21 })
}

/// Runs every host of `plan` to completion and returns the paths.
fn complete_fleet(
    plan: &FleetPlan,
    files: &[TestFile],
    config: &CampaignConfig,
    dir: &Path,
) -> Vec<PathBuf> {
    std::fs::create_dir_all(dir).expect("fleet dir");
    (0..plan.n_hosts)
        .map(|host| {
            let path = dir.join(format!("host-{host}.journal"));
            let status = run_host(
                plan,
                host,
                files,
                config,
                2,
                &path,
                &CheckpointOptions::default(),
            )
            .expect("host runs");
            assert!(matches!(status, CampaignStatus::Complete(_)));
            path
        })
        .collect()
}

#[test]
fn killed_hosts_resume_on_different_worker_counts_byte_identically() {
    let files = corpus();
    let config = config();
    let reference = spe_harness::run_campaign_parallel(&files, &config, 3);
    let dir = journal_dir("faults-kill-resume");
    let plan = FleetPlan::new(0xdead, 3, 3);
    let paths: Vec<PathBuf> = (0..plan.n_hosts)
        .map(|host| {
            let path = dir.join(format!("host-{host}.journal"));
            // Every host is killed mid-slice, then resumed — repeatedly,
            // on a rotating worker count, with another kill budget each
            // time — until it completes.
            let mut status = run_host(
                &plan,
                host,
                &files,
                &config,
                1,
                &path,
                &CheckpointOptions {
                    every: 8,
                    stop_after: Some(3),
                },
            )
            .expect("host runs");
            assert!(
                status.is_interrupted(),
                "host {host} must be preempted by its kill budget"
            );
            let workers = [4usize, 2, 16, 1];
            for attempt in 0.. {
                if !status.is_interrupted() {
                    break;
                }
                status = resume_host(
                    &path,
                    workers[attempt % workers.len()],
                    &CheckpointOptions {
                        every: 8,
                        stop_after: (attempt < 2).then_some(5),
                    },
                )
                .expect("host resumes");
            }
            path
        })
        .collect();
    assert_eq!(
        merge_journals(&paths).expect("merge"),
        reference,
        "kill/resume history leaked into the merged report"
    );
}

#[test]
fn torn_tail_is_triaged_naming_the_offending_host() {
    let files = corpus();
    let config = config();
    let dir = journal_dir("faults-torn-tail");
    let plan = FleetPlan::new(0x70a7, 3, 2);
    let paths = complete_fleet(&plan, &files, &config, &dir);
    // Tear host 1's last frame mid-payload, as a crash mid-append would.
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&paths[1])
        .expect("open journal");
    let len = file.metadata().expect("metadata").len();
    file.set_len(len - 3).expect("truncate");
    drop(file);
    match merge_journals(&paths) {
        Err(FleetError::TailCorruption { host, path, .. }) => {
            assert_eq!(host, 1);
            assert_eq!(path, paths[1]);
        }
        other => panic!("expected TailCorruption for host 1, got {other:?}"),
    }
    let message = merge_journals(&paths).unwrap_err().to_string();
    assert!(message.contains("host 1"), "unhelpful message: {message}");
    assert!(message.contains("resume"), "no repair hint: {message}");
}

#[test]
fn missing_and_duplicate_hosts_are_refused_naming_the_gap() {
    let files = corpus();
    let config = config();
    let dir = journal_dir("faults-membership");
    let plan = FleetPlan::new(0x9a9, 3, 2);
    let paths = complete_fleet(&plan, &files, &config, &dir);
    match merge_journals(&[&paths[0], &paths[2]]) {
        Err(FleetError::MissingHosts { missing, n_hosts }) => {
            assert_eq!(missing, vec![1]);
            assert_eq!(n_hosts, 3);
        }
        other => panic!("expected MissingHosts, got {other:?}"),
    }
    let message = merge_journals(&[&paths[0], &paths[2]])
        .unwrap_err()
        .to_string();
    assert!(message.contains("host 1"), "unhelpful message: {message}");
    match merge_journals(&[&paths[0], &paths[1], &paths[2], &paths[1]]) {
        Err(FleetError::DuplicateHost { host, .. }) => assert_eq!(host, 1),
        other => panic!("expected DuplicateHost, got {other:?}"),
    }
}

#[test]
fn journals_from_a_different_fleet_or_config_are_refused() {
    let files = corpus();
    let config = config();
    let dir = journal_dir("faults-mixed");
    let plan_a = FleetPlan::new(0xaaaa, 2, 2);
    let plan_b = FleetPlan::new(0xbbbb, 2, 2);
    let a = complete_fleet(&plan_a, &files, &config, &dir.join("a"));
    let b = complete_fleet(&plan_b, &files, &config, &dir.join("b"));
    match merge_journals(&[&a[0], &b[1]]) {
        Err(FleetError::MixedFleets { path, detail }) => {
            assert_eq!(path, b[1]);
            assert!(detail.contains("bbbb") && detail.contains("aaaa"), "{detail}");
        }
        other => panic!("expected MixedFleets, got {other:?}"),
    }
    // Same fleet id, different campaign config: the normalized manifest
    // comparison must catch it even though the stamps agree.
    let sneaky_config = CampaignConfig {
        budget: config.budget + 1,
        ..config.clone()
    };
    let sneaky = complete_fleet(&plan_a, &files, &sneaky_config, &dir.join("sneaky"));
    match merge_journals(&[&a[0], &sneaky[1]]) {
        Err(FleetError::MixedFleets { path, detail }) => {
            assert_eq!(path, sneaky[1]);
            assert!(detail.contains("manifest"), "{detail}");
        }
        other => panic!("expected MixedFleets on config drift, got {other:?}"),
    }
}

#[test]
fn non_fleet_and_incomplete_journals_are_refused() {
    let files = corpus();
    let config = config();
    let dir = journal_dir("faults-shape");
    // A single-host checkpointed campaign journal: valid, but not a
    // fleet host journal.
    let single = dir.join("single.journal");
    run_campaign_checkpointed(&files, &config, 2, &single, &CheckpointOptions::default())
        .expect("campaign runs");
    match merge_journals(&[&single]) {
        Err(FleetError::NotAFleetJournal { path }) => assert_eq!(path, single),
        other => panic!("expected NotAFleetJournal, got {other:?}"),
    }
    // A fleet whose host 1 was killed and never resumed.
    let plan = FleetPlan::new(0x1c0, 2, 2);
    let done = dir.join("host-0.journal");
    let dead = dir.join("host-1.journal");
    assert!(matches!(
        run_host(&plan, 0, &files, &config, 2, &done, &CheckpointOptions::default()),
        Ok(CampaignStatus::Complete(_))
    ));
    assert!(run_host(
        &plan,
        1,
        &files,
        &config,
        1,
        &dead,
        &CheckpointOptions {
            every: 8,
            stop_after: Some(2),
        },
    )
    .expect("host runs")
    .is_interrupted());
    match merge_journals(&[&done, &dead]) {
        Err(FleetError::HostIncomplete { host, path, .. }) => {
            assert_eq!(host, 1);
            assert_eq!(path, dead);
        }
        other => panic!("expected HostIncomplete, got {other:?}"),
    }
    let message = merge_journals(&[&done, &dead]).unwrap_err().to_string();
    assert!(message.contains("resume"), "no repair hint: {message}");
    // Resuming the dead host repairs the set.
    assert!(matches!(
        resume_host(&dead, 4, &CheckpointOptions::default()),
        Ok(CampaignStatus::Complete(_))
    ));
    assert_eq!(
        merge_journals(&[&done, &dead]).expect("merge"),
        spe_harness::run_campaign_parallel(&files, &config, 2)
    );
    let no_paths: [&Path; 0] = [];
    assert!(matches!(
        merge_journals(&no_paths),
        Err(FleetError::NoJournals)
    ));
}

#[test]
fn compaction_preserves_the_fleet_manifest_verbatim_and_merge_identity() {
    let files = corpus();
    let config = config();
    let reference = spe_harness::run_campaign_parallel(&files, &config, 2);
    let dir = journal_dir("faults-compact");
    let plan = FleetPlan::new(0xc09ac7, 3, 2);
    let paths = complete_fleet(&plan, &files, &config, &dir);
    for path in &paths {
        let header_before = spe_persist::JournalReader::read(path)
            .expect("journal readable")
            .header;
        compact_journal(path).expect("compaction");
        let header_after = spe_persist::JournalReader::read(path)
            .expect("journal readable")
            .header;
        assert_eq!(
            header_after, header_before,
            "compaction must copy the manifest (fleet stamp included) byte-verbatim"
        );
    }
    assert_eq!(
        merge_journals(&paths).expect("merge"),
        reference,
        "compact-then-merge diverged"
    );
}

#[test]
fn out_of_plan_host_ids_are_refused() {
    let files = corpus();
    let dir = journal_dir("faults-hostid");
    let plan = FleetPlan::new(0xbad, 2, 2);
    match run_host(
        &plan,
        2,
        &files,
        &config(),
        1,
        dir.join("host-2.journal"),
        &CheckpointOptions::default(),
    ) {
        Err(CheckpointError::Foreign(message)) => {
            assert!(message.contains("host 2"), "{message}");
        }
        other => panic!("expected Foreign, got {other:?}"),
    }
}
