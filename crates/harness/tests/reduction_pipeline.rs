//! Acceptance tests of the reduce/dedup stage over the seeded-bug
//! corpus: every primary finding carries a reproducing reduced witness,
//! witnesses shrink substantially, fingerprint dedup folds
//! distinct-signature duplicates, and parallel reduction is byte-stable.

use spe_corpus::{generate, seeds, CorpusConfig};
use spe_harness::reduction::{reduce_findings, reproduces, ReductionOptions};
use spe_harness::{run_campaign_parallel, CampaignConfig, CampaignReport};
use spe_simcc::{Compiler, CompilerId};

/// A scaled-down Table 4 trunk campaign: the paper seeds plus a slice of
/// the synthetic corpus, against the trunk profiles at several
/// optimization levels. Run once and shared by every test.
fn trunk_campaign() -> (CampaignReport, CampaignConfig) {
    static CAMPAIGN: std::sync::OnceLock<(CampaignReport, CampaignConfig)> =
        std::sync::OnceLock::new();
    CAMPAIGN
        .get_or_init(|| {
            let mut files = seeds::all();
            files.extend(generate(&CorpusConfig {
                files: 40,
                seed: 44,
            }));
            let config = CampaignConfig {
                compilers: vec![
                    Compiler::new(CompilerId::gcc(700), 0),
                    Compiler::new(CompilerId::gcc(700), 2),
                    Compiler::new(CompilerId::gcc(700), 3),
                    Compiler::new(CompilerId::clang(390), 3),
                ],
                budget: 60,
                algorithm: spe_core::Algorithm::Paper,
                check_wrong_code: true,
                fuel: 20_000,
            };
            (run_campaign_parallel(&files, &config, 4), config)
        })
        .clone()
}

fn reduced_campaign(workers: usize) -> (CampaignReport, CampaignConfig) {
    let (mut report, config) = trunk_campaign();
    reduce_findings(
        &mut report,
        &ReductionOptions {
            fuel: config.fuel,
            ..ReductionOptions::default()
        },
        workers,
    );
    (report, config)
}

#[test]
fn every_primary_finding_carries_a_reproducing_reduced_witness() {
    let (report, config) = reduced_campaign(8);
    assert!(report.findings.len() >= 10, "campaign finds enough bugs");
    for f in report.primary_findings() {
        let reduced = f
            .reduced
            .as_ref()
            .unwrap_or_else(|| panic!("primary finding {:?} lacks a witness", f.signature));
        let p = spe_minic::parse(&reduced.source).expect("witness parses");
        spe_minic::analyze(&p).expect("witness scope-checks");
        assert!(
            reproduces(f, &p, config.fuel),
            "witness no longer reproduces {:?} (bug {:?}):\n{}",
            f.signature,
            f.bug_id,
            reduced.source
        );
        assert!(reduced.reduced_bytes <= reduced.original_bytes);
    }
}

#[test]
fn mean_witness_size_shrinks_at_least_3x() {
    let (report, _) = reduced_campaign(8);
    let mean = report.mean_shrink_ratio().expect("witnesses attached");
    assert!(
        mean >= 3.0,
        "mean shrink ratio {mean:.2} below the 3x acceptance bar"
    );
}

#[test]
fn fingerprint_dedup_merges_what_signature_dedup_kept_separate() {
    let (report, _) = reduced_campaign(8);
    let merged: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.fingerprint_duplicate_of.is_some())
        .collect();
    assert!(!merged.is_empty(), "no fingerprint merges found");
    for f in &merged {
        let root_sig = f.fingerprint_duplicate_of.as_ref().expect("merged");
        // Signature dedup kept the pair separate (distinct signatures)...
        assert_ne!(root_sig, &f.signature);
        let root = report
            .findings
            .iter()
            .find(|g| &g.signature == root_sig)
            .expect("merge target exists");
        // ...and the ground-truth registry confirms one root cause.
        assert_eq!(root.bug_id, f.bug_id, "fingerprint merge is sound");
        assert_eq!(root.compiler.family, f.compiler.family);
        assert_eq!(root.kind, f.kind);
    }
    assert_eq!(
        report.corrected_findings().count(),
        report.findings.len() - report.fingerprint_duplicates()
    );
}

#[test]
fn parallel_reduction_reports_are_byte_identical_to_serial() {
    let (serial, _) = reduced_campaign(1);
    for workers in [2usize, 4, 16] {
        let (parallel, _) = reduced_campaign(workers);
        assert_eq!(parallel, serial, "{workers}-worker reduction diverged");
    }
}
