//! Distributed-identity suite for multi-host fleet campaigns
//! (`DESIGN.md` §14): for every host count, per-host worker count, and
//! corpus split, `merge_journals(fleet(N))` must be **byte-identical**
//! to the uninterrupted single-host run with
//! `workers == shards_per_file` — same findings in the same order with
//! the same reproducers, same counters, same quarantines, and the same
//! downstream reduction/dedup folds.

use proptest::prelude::*;
use spe_corpus::{generate, seeds, CorpusConfig, TestFile};
use spe_harness::checkpoint::CheckpointOptions;
use spe_harness::fleet::{
    merge_journals, merge_journals_detailed, run_host, run_host_with_backend, run_host_with_path,
};
use spe_harness::reduction::{reduce_findings, ReductionOptions};
use spe_harness::{
    run_campaign_parallel, run_campaign_parallel_with_backend, CampaignConfig, CampaignStatus,
    FleetPlan, OraclePath,
};
use spe_simcc::backend::{BackendError, CompilerBackend, SimccBackend};
use spe_simcc::{Compiler, CompilerId, Observation};
use std::path::PathBuf;

fn config() -> CampaignConfig {
    CampaignConfig {
        compilers: vec![
            Compiler::new(CompilerId::gcc(700), 0),
            Compiler::new(CompilerId::gcc(700), 3),
            Compiler::new(CompilerId::clang(390), 3),
        ],
        budget: 48,
        algorithm: spe_core::Algorithm::Paper,
        check_wrong_code: true,
        fuel: 20_000,
    }
}

fn journal_dir(test: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(test);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

/// Runs every host of `plan` to completion (sequentially, in one
/// process — process boundaries are exercised by the `fleet` demo
/// binary), rotating per-host worker counts, and returns the journal
/// paths in host order.
fn run_fleet(
    plan: &FleetPlan,
    files: &[TestFile],
    config: &CampaignConfig,
    dir: &std::path::Path,
) -> Vec<PathBuf> {
    let workers = [2usize, 4, 16, 1];
    (0..plan.n_hosts)
        .map(|host| {
            let path = dir.join(format!("host-{host}.journal"));
            let status = run_host(
                plan,
                host,
                files,
                config,
                workers[host % workers.len()],
                &path,
                &CheckpointOptions::default(),
            )
            .expect("host runs");
            assert!(
                matches!(status, CampaignStatus::Complete(_)),
                "unkilled host {host} must complete"
            );
            path
        })
        .collect()
}

#[test]
fn merged_fleet_is_byte_identical_to_serial_for_every_host_count() {
    let files = generate(&CorpusConfig { files: 10, seed: 7 });
    let config = config();
    let shards_per_file = 4;
    let reference = run_campaign_parallel(&files, &config, shards_per_file);
    assert!(reference.variants_tested > 0);
    for n_hosts in [1usize, 2, 3, 8] {
        let dir = journal_dir(&format!("identity-{n_hosts}"));
        let plan = FleetPlan::new(0xf1ee7 + n_hosts as u64, n_hosts, shards_per_file);
        let paths = run_fleet(&plan, &files, &config, &dir);
        let merged = merge_journals(&paths).expect("merge");
        assert_eq!(merged, reference, "{n_hosts}-host fleet diverged");
        // Journal order must not matter: hosts fold in id order.
        let reversed: Vec<_> = paths.iter().rev().collect();
        assert_eq!(merge_journals(&reversed).expect("merge"), reference);
    }
}

#[test]
fn merged_fleet_matches_on_the_paper_seed_corpus() {
    let files = seeds::all();
    let config = config();
    let reference = run_campaign_parallel(&files, &config, 2);
    assert!(
        !reference.findings.is_empty(),
        "the seed corpus exposes seeded compiler bugs"
    );
    let dir = journal_dir("identity-seeds");
    let plan = FleetPlan::new(0x5eed, 3, 2);
    let paths = run_fleet(&plan, &files, &config, &dir);
    let merged = merge_journals_detailed(&paths).expect("merge");
    assert_eq!(merged.report, reference);
    // Provenance bookkeeping agrees with the merged report.
    assert_eq!(merged.n_hosts, 3);
    assert_eq!(merged.job_count, files.len() * 2);
    let slice_variants: u64 = merged.hosts.iter().map(|h| h.variants_tested).sum();
    assert_eq!(slice_variants, reference.variants_tested);
    let owned: usize = merged.hosts.iter().map(|h| h.jobs.len()).sum();
    assert_eq!(owned, merged.job_count);
}

#[test]
fn hosts_may_mix_oracle_paths_without_changing_the_merge() {
    let files = generate(&CorpusConfig { files: 6, seed: 11 });
    let config = config();
    let reference = run_campaign_parallel(&files, &config, 2);
    let dir = journal_dir("identity-paths");
    let plan = FleetPlan::new(0x0a71e, 2, 2);
    let paths: Vec<PathBuf> = [OraclePath::Incremental, OraclePath::RoundTrip]
        .into_iter()
        .enumerate()
        .map(|(host, oracle_path)| {
            let path = dir.join(format!("host-{host}.journal"));
            let status = run_host_with_path(
                &plan,
                host,
                &files,
                &config,
                3,
                &path,
                &CheckpointOptions::default(),
                oracle_path,
            )
            .expect("host runs");
            assert!(matches!(status, CampaignStatus::Complete(_)));
            path
        })
        .collect();
    assert_eq!(merge_journals(&paths).expect("merge"), reference);
}

#[test]
fn reduction_folds_are_identical_on_merged_and_serial_reports() {
    let files = seeds::all();
    let config = config();
    let mut reference = run_campaign_parallel(&files, &config, 2);
    let dir = journal_dir("identity-reduce");
    let plan = FleetPlan::new(0x4ed0ce, 2, 2);
    let paths = run_fleet(&plan, &files, &config, &dir);
    let mut merged = merge_journals(&paths).expect("merge");
    let options = ReductionOptions {
        fuel: config.fuel,
        ..ReductionOptions::default()
    };
    reduce_findings(&mut reference, &options, 4);
    reduce_findings(&mut merged, &options, 2);
    assert_eq!(
        merged, reference,
        "trigger-aware dedup folds diverged on the merged report"
    );
}

/// A backend that panics on ~1/31 of variants (by source hash) and
/// otherwise answers exactly like [`SimccBackend`] — every panicked
/// (file, shard) job is quarantined as a `JobPanicked` finding, which
/// the merge must reproduce byte-identically.
struct PanickyBackend(SimccBackend);

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl CompilerBackend for PanickyBackend {
    fn id(&self) -> &str {
        "panicky-simcc"
    }

    fn config_hash(&self) -> u64 {
        31
    }

    fn observe_config(
        &self,
        source: &str,
        cc: Compiler,
        wrong_code_fuel: Option<u64>,
    ) -> Result<Observation, BackendError> {
        assert!(
            !fnv1a(source.as_bytes()).is_multiple_of(31),
            "seeded backend panic on this variant"
        );
        self.0.observe_config(source, cc, wrong_code_fuel)
    }

    fn observe_variant(
        &self,
        source: &str,
        compilers: &[Compiler],
        wrong_code_fuel: Option<u64>,
    ) -> Result<Vec<Observation>, BackendError> {
        assert!(
            !fnv1a(source.as_bytes()).is_multiple_of(31),
            "seeded backend panic on this variant"
        );
        self.0.observe_variant(source, compilers, wrong_code_fuel)
    }
}

#[test]
fn panic_quarantines_survive_the_fleet_merge_byte_identically() {
    let files = generate(&CorpusConfig { files: 8, seed: 13 });
    let config = config();
    let backend = PanickyBackend(SimccBackend);
    let reference = run_campaign_parallel_with_backend(&files, &config, &backend, 2);
    assert!(
        reference
            .findings
            .iter()
            .any(|f| f.kind == spe_harness::FindingKind::JobPanicked),
        "the seeded panic rate must quarantine at least one job"
    );
    let dir = journal_dir("identity-panics");
    let plan = FleetPlan::new(0x9a71c, 3, 2);
    let paths: Vec<PathBuf> = (0..plan.n_hosts)
        .map(|host| {
            let path = dir.join(format!("host-{host}.journal"));
            let status = run_host_with_backend(
                &plan,
                host,
                &files,
                &config,
                1 + host,
                &path,
                &CheckpointOptions::default(),
                &backend,
            )
            .expect("host runs");
            assert!(matches!(status, CampaignStatus::Complete(_)));
            path
        })
        .collect();
    assert_eq!(merge_journals(&paths).expect("merge"), reference);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized corpora × randomized (hosts, shards) splits: the
    /// merge is byte-identical to serial regardless of where the
    /// even-range cuts land relative to files, shards, and findings.
    #[test]
    fn merge_identity_holds_over_random_corpora_and_splits(
        corpus_files in 1usize..6,
        seed in 0u64..500,
        n_hosts in 1usize..6,
        shards_per_file in 1usize..4,
        budget in 8usize..40,
    ) {
        let files = generate(&CorpusConfig { files: corpus_files, seed });
        let config = CampaignConfig {
            budget,
            fuel: 10_000,
            ..config()
        };
        let reference = run_campaign_parallel(&files, &config, shards_per_file);
        let dir = journal_dir(&format!(
            "identity-prop-{corpus_files}-{seed}-{n_hosts}-{shards_per_file}-{budget}"
        ));
        let plan = FleetPlan::new(seed ^ 0xdeb5, n_hosts, shards_per_file);
        let paths = run_fleet(&plan, &files, &config, &dir);
        prop_assert_eq!(merge_journals(&paths).expect("merge"), reference);
        std::fs::remove_dir_all(&dir).ok();
    }
}
