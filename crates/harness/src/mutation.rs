//! Orion-style program mutation baseline (the PM-X series of Figure 9).
//!
//! Orion deletes statements from unexecuted regions of a seed program.
//! This implementation approximates it by deleting randomly chosen
//! side-effect-only statements (expression statements), which always
//! preserves compilability; semantic preservation is irrelevant for the
//! coverage comparison the baseline is used in.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spe_minic::ast::{Program, Stmt};

/// Generates up to `n_variants` mutants of `src`, each deleting up to
/// `delete` expression statements. Returns fewer variants when the
/// program has no deletable statements.
///
/// # Examples
///
/// ```
/// let vs = spe_harness::mutation::pm_variants(
///     "int a; int main() { a = 1; a = 2; a = 3; return a; }", 1, 4, 7);
/// assert!(!vs.is_empty());
/// for v in &vs {
///     spe_minic::parse(v).expect("mutants stay parseable");
/// }
/// ```
pub fn pm_variants(src: &str, delete: usize, n_variants: usize, seed: u64) -> Vec<String> {
    let Ok(prog) = spe_minic::parse(src) else {
        return Vec::new();
    };
    let total = count_deletable(&prog);
    if total == 0 {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..n_variants * 3 {
        if out.len() >= n_variants {
            break;
        }
        let k = delete.min(total).max(1);
        let mut chosen: Vec<usize> = (0..total).collect();
        // Partial Fisher-Yates to pick k distinct statement indices.
        for i in 0..k {
            let j = rng.gen_range(i..total);
            chosen.swap(i, j);
        }
        let mut kill: Vec<usize> = chosen[..k].to_vec();
        kill.sort_unstable();
        let mutated = delete_statements(&prog, &kill);
        let text = spe_minic::print_program(&mutated);
        if seen.insert(text.clone()) {
            out.push(text);
        }
    }
    out
}

fn count_deletable(p: &Program) -> usize {
    let mut n = 0;
    for f in p.functions() {
        for s in &f.body {
            count_stmt(s, &mut n);
        }
    }
    n
}

fn count_stmt(s: &Stmt, n: &mut usize) {
    match s {
        Stmt::Expr(_) => *n += 1,
        Stmt::Block(b) => b.iter().for_each(|s| count_stmt(s, n)),
        Stmt::If(_, t, e) => {
            count_stmt(t, n);
            if let Some(e) = e {
                count_stmt(e, n);
            }
        }
        Stmt::While(_, b) | Stmt::DoWhile(b, _) | Stmt::For(_, _, _, b) => count_stmt(b, n),
        Stmt::Label(_, inner) => count_stmt(inner, n),
        _ => {}
    }
}

fn delete_statements(p: &Program, kill: &[usize]) -> Program {
    let mut counter = 0usize;
    let mut prog = p.clone();
    for item in &mut prog.items {
        if let spe_minic::ast::Item::Func(f) = item {
            f.body = f
                .body
                .iter()
                .map(|s| rewrite(s, kill, &mut counter))
                .collect();
        }
    }
    prog
}

fn rewrite(s: &Stmt, kill: &[usize], counter: &mut usize) -> Stmt {
    match s {
        Stmt::Expr(_) => {
            let idx = *counter;
            *counter += 1;
            if kill.contains(&idx) {
                Stmt::Empty
            } else {
                s.clone()
            }
        }
        Stmt::Block(b) => Stmt::Block(b.iter().map(|s| rewrite(s, kill, counter)).collect()),
        Stmt::If(c, t, e) => Stmt::If(
            c.clone(),
            Box::new(rewrite(t, kill, counter)),
            e.as_ref().map(|e| Box::new(rewrite(e, kill, counter))),
        ),
        Stmt::While(c, b) => Stmt::While(c.clone(), Box::new(rewrite(b, kill, counter))),
        Stmt::DoWhile(b, c) => Stmt::DoWhile(Box::new(rewrite(b, kill, counter)), c.clone()),
        Stmt::For(i, c, st, b) => Stmt::For(
            i.clone(),
            c.clone(),
            st.clone(),
            Box::new(rewrite(b, kill, counter)),
        ),
        Stmt::Label(l, inner) => Stmt::Label(l.clone(), Box::new(rewrite(inner, kill, counter))),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str =
        "int a, b; int main() { a = 1; b = 2; a = a + b; if (a) { b = 3; } return a; }";

    #[test]
    fn mutants_parse_and_differ() {
        let vs = pm_variants(SRC, 2, 5, 42);
        assert!(!vs.is_empty());
        let original = spe_minic::print_program(&spe_minic::parse(SRC).expect("parses"));
        for v in &vs {
            spe_minic::parse(v).expect("mutant parses");
            assert_ne!(*v, original, "mutant must differ");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(pm_variants(SRC, 2, 5, 1), pm_variants(SRC, 2, 5, 1));
    }

    #[test]
    fn no_deletable_statements_yields_nothing() {
        let vs = pm_variants("int main() { return 0; }", 3, 5, 1);
        assert!(vs.is_empty());
    }

    #[test]
    fn deeper_deletion_removes_more() {
        let one = pm_variants(SRC, 1, 1, 9);
        let many = pm_variants(SRC, 4, 1, 9);
        assert!(!one.is_empty() && !many.is_empty());
        assert!(many[0].matches(';').count() <= one[0].matches(';').count());
    }
}
