//! Differential compiler-testing campaigns driven by skeletal program
//! enumeration.
//!
//! This crate is the paper's §5 experimental machinery:
//!
//! * [`run_campaign`] enumerates SPE variants of a corpus and feeds them
//!   to one or more [`Compiler`]s, detecting **crash bugs** (internal
//!   compiler errors, deduplicated by signature as in Table 3), **wrong
//!   code** (differential mismatch between the UB-checked reference
//!   interpreter and the compiled VM image), and **performance bugs**;
//! * [`triage`] aggregates findings into the paper's Table 4 and
//!   Figure 10 shapes using the seeded-bug registry metadata;
//! * [`mutation`] implements the Orion-style statement-deletion baseline
//!   (PM-X in Figure 9);
//! * [`coverage_run`] measures pass/point coverage improvements of SPE
//!   and mutation variants over the baseline suite (Figure 9);
//! * [`checkpoint`] makes campaigns (and the [`reduction`] stage)
//!   checkpointable and resumable over an [`spe_persist`] journal, with
//!   final reports byte-identical to uninterrupted runs (`DESIGN.md` §9);
//! * [`orchestrate`] is the one supervised worker-pool loop behind every
//!   parallel and checkpointed entry point — panic isolation, checkpoint
//!   cadence, and journal-fault degradation (`DESIGN.md` §11).

#![warn(missing_docs)]

use spe_core::{
    Algorithm, EnumeratorConfig, Granularity, NameId, ShardedEnumerator, Skeleton, Variant,
    VariantSpace,
};
use spe_corpus::TestFile;
use spe_simcc::backend::{intern, BackendError, CompilerBackend};
use spe_simcc::incremental::{CacheStats, CachedOracle};
use spe_simcc::{interp, CompileError, Compiler, CompilerId, Observation};
use spe_telemetry::{names, Sink as TelemetrySink, Timer};
use std::collections::HashMap;
use std::ops::ControlFlow;

pub mod checkpoint;
pub mod coverage_run;
pub mod fleet;
pub mod mutation;
pub mod orchestrate;
pub mod reduction;
pub mod steal;
pub mod triage;

pub use checkpoint::{
    resume_campaign, resume_campaign_with_path, run_campaign_checkpointed,
    run_campaign_checkpointed_with_path, CampaignStatus, CheckpointError, CheckpointOptions,
};
pub use fleet::{
    merge_journals, merge_journals_detailed, resume_host, run_host, FleetError, FleetPlan,
    HostSummary, MergedFleet,
};
pub use reduction::ReducedWitness;

/// Which per-variant execution strategy the in-process oracle uses.
/// Both produce byte-identical [`CampaignReport`]s on the same inputs
/// (pinned by `tests/oracle_identity.rs` at every worker count,
/// including kill/resume histories that alternate paths); they differ
/// only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OraclePath {
    /// Splice-don't-reparse ([`spe_simcc::incremental`]): each (file,
    /// shard) job parses its first rendered variant once and splices
    /// every later variant's name bindings directly into the cached AST,
    /// memoizing pass-pipeline results across configurations. The
    /// default — roughly an order of magnitude faster on
    /// enumeration-heavy campaigns.
    #[default]
    Incremental,
    /// The historical render → lex → parse → compile round trip for
    /// every variant. The reference implementation the identity suite
    /// compares against; also useful to isolate cache bugs.
    RoundTrip,
}

impl OraclePath {
    pub(crate) fn oracle(self) -> Oracle<'static> {
        match self {
            OraclePath::Incremental => Oracle::Incremental,
            OraclePath::RoundTrip => Oracle::Direct,
        }
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Compilers (with optimization levels) under test.
    pub compilers: Vec<Compiler>,
    /// Variants enumerated per file (the paper's 10K threshold, usually
    /// lowered for quick runs).
    pub budget: usize,
    /// Enumeration semantics.
    pub algorithm: Algorithm,
    /// Whether to run the differential wrong-code oracle (crash-only
    /// campaigns are much faster, mirroring §5.2.3).
    pub check_wrong_code: bool,
    /// Interpreter/VM fuel per execution.
    pub fuel: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            compilers: vec![
                Compiler::new(CompilerId::gcc(700), 0),
                Compiler::new(CompilerId::gcc(700), 3),
                Compiler::new(CompilerId::clang(390), 0),
                Compiler::new(CompilerId::clang(390), 3),
            ],
            budget: 64,
            algorithm: Algorithm::Paper,
            check_wrong_code: true,
            fuel: 50_000,
        }
    }
}

/// What kind of defect a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// Internal compiler error.
    Crash,
    /// Differential mismatch on a UB-free input.
    WrongCode,
    /// Pathological compile time.
    Performance,
    /// The oracle backend itself persistently failed on a (file, shard)
    /// job — spawn failures, scratch I/O errors — and the job was
    /// quarantined instead of wedging the campaign. Not a compiler bug
    /// report: triage tables exclude it, and the reduction stage skips
    /// it (there is no program to shrink). Only backend-dispatched
    /// campaigns can produce it; the in-process oracle never fails.
    BackendDegraded,
    /// A worker **panicked** while processing the (file, shard) job —
    /// a poisoned variant tripping a bug in the enumeration or oracle
    /// machinery. The job is rolled back to its last fully-processed
    /// variant and quarantined with this durable marker (committed with
    /// the job's completion record, so a resume skips it instead of
    /// re-tripping the panic). Like [`FindingKind::BackendDegraded`],
    /// it is an infrastructure record, not a compiler bug report:
    /// triage tables exclude it and the reduction stage skips it.
    JobPanicked,
}

impl FindingKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            FindingKind::Crash => "crash",
            FindingKind::WrongCode => "wrong code",
            FindingKind::Performance => "performance",
            FindingKind::BackendDegraded => "backend degraded",
            FindingKind::JobPanicked => "job panicked",
        }
    }
}

/// One deduplicated bug report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Kind of defect.
    pub kind: FindingKind,
    /// Compiler that exhibited it.
    pub compiler: CompilerId,
    /// Optimization level of the failing configuration.
    pub opt: u8,
    /// Dedup key: the crash signature, or a synthesized wrong-code /
    /// performance symptom description.
    pub signature: String,
    /// Ground-truth seeded bug (available for crashes and triaged
    /// miscompiles; `None` when triage could not attribute it).
    pub bug_id: Option<&'static str>,
    /// Corpus file whose variant exposed the bug.
    pub file: String,
    /// A variant that reproduces it.
    pub reproducer: String,
    /// `Some(signature)` when the same underlying defect was already
    /// reported under another signature (the paper's "Duplicate" column).
    pub duplicate_of: Option<String>,
    /// The reduced witness and its structural fingerprint, filled by the
    /// post-campaign [`reduction`] stage (`None` until it runs, or when
    /// reduction could not reproduce the finding).
    pub reduced: Option<ReducedWitness>,
    /// `Some(signature)` when an earlier finding's reduced witness has
    /// the same structural fingerprint — the reduction stage's
    /// *ground-truth-free* duplicate detection, which needs no seeded
    /// bug ids (unlike [`Finding::duplicate_of`]'s registry-based pass).
    pub fingerprint_duplicate_of: Option<String>,
}

/// Aggregate campaign results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignReport {
    /// All unique-signature reports (including duplicates of the same
    /// root cause, as in the paper's bookkeeping).
    pub findings: Vec<Finding>,
    /// Files processed (parsed + analyzed successfully).
    pub files_processed: usize,
    /// Total variants compiled.
    pub variants_tested: u64,
    /// Variants skipped by the UB oracle before output comparison.
    pub variants_ub_skipped: u64,
}

impl CampaignReport {
    /// Findings that are not duplicates.
    pub fn primary_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.duplicate_of.is_none())
    }

    /// Number of duplicate reports.
    pub fn duplicates(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.duplicate_of.is_some())
            .count()
    }

    /// Findings for one compiler family.
    pub fn for_family<'a>(&'a self, family: &'a str) -> impl Iterator<Item = &'a Finding> {
        self.findings
            .iter()
            .filter(move |f| f.compiler.family == family)
    }
}

/// Raw results of one (file, shard) work item before deduplication:
/// candidate findings in emission order plus counter deltas.
#[derive(Debug, Default)]
struct ShardOutput {
    /// Whether the file parsed and analyzed (reported by shard 0 only).
    file_processed: bool,
    /// Candidate findings in variant/compiler emission order, not yet
    /// deduplicated (`duplicate_of` is always `None` here).
    candidates: Vec<Finding>,
    variants_tested: u64,
    variants_ub_skipped: u64,
}

impl ShardOutput {
    /// Folds `later` onto `self`, preserving emission order (`later`'s
    /// candidates follow `self`'s). The one merge definition shared by
    /// every checkpoint site — commit-drain, journal replay, and the
    /// partial/continuation fold — so a new counter cannot be merged in
    /// some places and silently dropped in others.
    fn absorb(&mut self, later: ShardOutput) {
        self.file_processed |= later.file_processed;
        self.variants_tested += later.variants_tested;
        self.variants_ub_skipped += later.variants_ub_skipped;
        self.candidates.extend(later.candidates);
    }
}

/// Runs every compiler over one realized variant, appending candidate
/// findings and counter deltas to `out`. This is the single shared
/// per-variant path of the serial and parallel campaigns — they cannot
/// drift apart.
fn process_variant(file: &TestFile, src: &str, config: &CampaignConfig, out: &mut ShardOutput) {
    let Ok(prog) = spe_minic::parse(src) else {
        return;
    };
    let mut reference: Option<Result<interp::Execution, interp::Ub>> = None;
    for cc in &config.compilers {
        out.variants_tested += 1;
        match cc.compile(&prog) {
            Err(CompileError::Ice(ice)) => {
                out.candidates.push(Finding {
                    kind: FindingKind::Crash,
                    compiler: cc.id(),
                    opt: cc.opt(),
                    signature: ice.signature.to_string(),
                    bug_id: Some(ice.bug_id),
                    file: file.name.clone(),
                    reproducer: src.to_string(),
                    duplicate_of: None,
                    reduced: None,
                    fingerprint_duplicate_of: None,
                });
            }
            Err(CompileError::Unsupported(_)) => {}
            Ok(compiled) => {
                for slow in &compiled.slow_compile_bugs {
                    out.candidates.push(Finding {
                        kind: FindingKind::Performance,
                        compiler: cc.id(),
                        opt: cc.opt(),
                        signature: format!(
                            "compile time blow-up in {} at -O{}",
                            cc.id().family,
                            cc.opt()
                        ),
                        bug_id: Some(slow),
                        file: file.name.clone(),
                        reproducer: src.to_string(),
                        duplicate_of: None,
                        reduced: None,
                        fingerprint_duplicate_of: None,
                    });
                }
                if config.check_wrong_code {
                    // Evaluate the reference once per variant, with the
                    // same limits the reduction oracle re-checks under
                    // (`spe_simcc::observe` shares these helpers).
                    if reference.is_none() {
                        reference = Some(interp::run(
                            &prog,
                            spe_simcc::reference_limits(config.fuel),
                        ));
                    }
                    match reference.as_ref().expect("just set") {
                        Err(_) => {
                            // UB or non-termination: skip, per §5.4.
                            out.variants_ub_skipped += 1;
                        }
                        Ok(expected) => {
                            if spe_simcc::differs_from_reference(&compiled, expected, config.fuel)
                            {
                                let bug_id = compiled.miscompiled_by.first().copied();
                                out.candidates.push(Finding {
                                    kind: FindingKind::WrongCode,
                                    compiler: cc.id(),
                                    opt: cc.opt(),
                                    signature: format!(
                                        "wrong code: {} at -O{} on {}",
                                        cc.id().family,
                                        cc.opt(),
                                        file.name
                                    ),
                                    bug_id,
                                    file: file.name.clone(),
                                    reproducer: src.to_string(),
                                    duplicate_of: None,
                                    reduced: None,
                                    fingerprint_duplicate_of: None,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
}

/// How a campaign reaches its oracle: the direct in-process path (the
/// historical [`process_variant`] code, byte-for-byte), dispatch
/// through a [`CompilerBackend`], or the incremental splice-don't-reparse
/// path ([`spe_simcc::incremental`]). Direct and backend dispatch are
/// proven byte-identical for the in-process backend by
/// `tests/backend_identity.rs`; incremental and round-trip are proven
/// byte-identical by `tests/oracle_identity.rs`. Keeping the direct arm
/// intact is what makes both suites real two-implementation comparisons.
#[derive(Clone, Copy)]
pub(crate) enum Oracle<'a> {
    /// `spe_simcc` called in-process, no trait dispatch: render → parse
    /// → compile for every variant (the round-trip reference path).
    Direct,
    /// `spe_simcc` through a per-job [`IncrementalSession`]: the
    /// skeleton's AST is parsed once and each variant's name bindings
    /// are spliced in. Journal-compatible with [`Oracle::Direct`] (same
    /// backend identity), so a checkpointed campaign can alternate paths
    /// across kill/resume cycles.
    Incremental,
    /// Any [`CompilerBackend`], including the in-process one.
    Backend(&'a dyn CompilerBackend),
}

impl Oracle<'_> {
    /// The backend id recorded in checkpoint-journal manifests.
    pub(crate) fn backend_id(&self) -> String {
        match self {
            // Incremental and direct are two execution strategies of the
            // same oracle semantics — they share one identity, so their
            // journals resume interchangeably.
            Oracle::Direct | Oracle::Incremental => {
                spe_simcc::backend::SIMCC_BACKEND_ID.to_string()
            }
            Oracle::Backend(b) => b.id().to_string(),
        }
    }

    /// The backend configuration hash recorded next to the id.
    pub(crate) fn config_hash(&self) -> u64 {
        match self {
            Oracle::Direct | Oracle::Incremental => spe_simcc::backend::SIMCC_CONFIG_HASH,
            Oracle::Backend(b) => b.config_hash(),
        }
    }

    /// The per-job incremental session for this oracle, `None` for the
    /// round-trip paths. Created at each (file, shard) job's start and
    /// dropped at its end, so cached AST state can never cross a job
    /// boundary (work stealing, checkpoint/resume, and panic quarantine
    /// all see exactly the state the round-trip oracle would).
    pub(crate) fn session<'s>(&self, sk: &'s Skeleton) -> Option<IncrementalSession<'s>> {
        match self {
            Oracle::Incremental => Some(IncrementalSession::new(sk)),
            _ => None,
        }
    }

    /// Runs every compiler configuration over one rendered variant,
    /// recording its latency into the per-verdict oracle histogram of
    /// `telemetry` (`oracle_ns.<verdict>`) when the sink is enabled.
    ///
    /// # Errors
    ///
    /// [`BackendError`] (backend dispatch only) when the oracle
    /// machinery failed; the caller quarantines the work item.
    pub(crate) fn process_variant(
        &self,
        file: &TestFile,
        src: &str,
        config: &CampaignConfig,
        out: &mut ShardOutput,
        telemetry: &dyn TelemetrySink,
    ) -> Result<(), BackendError> {
        process_timed(telemetry, out, |out| self.dispatch(file, src, config, out))
    }

    fn dispatch(
        &self,
        file: &TestFile,
        src: &str,
        config: &CampaignConfig,
        out: &mut ShardOutput,
    ) -> Result<(), BackendError> {
        match self {
            // Without a per-job session (the reduction stage, or a job
            // that fell back), the incremental oracle degenerates to the
            // direct path — same semantics, no cache.
            Oracle::Direct | Oracle::Incremental => {
                process_variant(file, src, config, out);
                Ok(())
            }
            Oracle::Backend(b) => process_variant_backend(file, src, config, *b, out),
        }
    }
}

/// Runs one per-variant oracle invocation `f`, recording its latency
/// into the per-verdict oracle histogram (`oracle_ns.<verdict>`) and the
/// campaign counters of `telemetry` when the sink is enabled. The shared
/// instrumentation seam of [`Oracle::process_variant`] and
/// [`IncrementalSession::process_variant`]: exactly one histogram sample
/// per variant, whichever execution path produced the observations.
fn process_timed(
    telemetry: &dyn TelemetrySink,
    out: &mut ShardOutput,
    f: impl FnOnce(&mut ShardOutput) -> Result<(), BackendError>,
) -> Result<(), BackendError> {
    if !telemetry.enabled() {
        return f(out);
    }
    let before = (
        out.candidates.len(),
        out.variants_tested,
        out.variants_ub_skipped,
    );
    let timer = Timer::start(telemetry);
    let result = f(out);
    let nanos = timer.stop_nanos();
    // The verdict drives which latency histogram the observation
    // lands in; a variant producing several findings is classified
    // by its first (emission order matches the direct path).
    match &result {
        Ok(()) => {
            let verdict = if let Some(f) = out.candidates.get(before.0) {
                match f.kind {
                    FindingKind::WrongCode => names::ORACLE_NS_WRONG_CODE,
                    FindingKind::Performance => names::ORACLE_NS_PERFORMANCE,
                    _ => names::ORACLE_NS_CRASH,
                }
            } else if out.variants_ub_skipped > before.2 {
                names::ORACLE_NS_UB_SKIP
            } else if out.variants_tested > before.1 {
                names::ORACLE_NS_CLEAN
            } else {
                names::ORACLE_NS_UNSUPPORTED
            };
            telemetry.histogram(verdict, nanos);
        }
        Err(_) => telemetry.counter(names::DEGRADED, 1),
    }
    telemetry.counter(names::VARIANTS, out.variants_tested - before.1);
    let candidates = (out.candidates.len() - before.0) as u64;
    if candidates > 0 {
        telemetry.counter(names::CANDIDATES, candidates);
    }
    let ub = out.variants_ub_skipped - before.2;
    if ub > 0 {
        telemetry.counter(names::UB_SKIPS, ub);
    }
    result
}

/// [`process_variant`] through a [`CompilerBackend`]: one
/// `observe_variant` call per rendered variant, findings constructed
/// from the returned [`spe_simcc::Observation`]s in the exact emission
/// order of the direct path (crash, then per-bug performance, then
/// wrong code, per configuration in order).
fn process_variant_backend(
    file: &TestFile,
    src: &str,
    config: &CampaignConfig,
    backend: &dyn CompilerBackend,
    out: &mut ShardOutput,
) -> Result<(), BackendError> {
    let fuel = config.check_wrong_code.then_some(config.fuel);
    let observations = backend.observe_variant(src, &config.compilers, fuel)?;
    if observations.is_empty() {
        // Not a testable program for this backend (parse failure);
        // skipped without counting, exactly like the direct path.
        return Ok(());
    }
    if observations.len() != config.compilers.len() {
        return Err(BackendError::new(format!(
            "backend {} returned {} observations for {} configurations",
            backend.id(),
            observations.len(),
            config.compilers.len()
        )));
    }
    emit_observations(file, src, config, &observations, out);
    Ok(())
}

/// Turns per-configuration [`Observation`]s into findings and counter
/// deltas, in the exact emission order of the direct path (crash, then
/// per-bug performance, then wrong code, per configuration in order).
/// The one emission definition shared by backend dispatch and the
/// incremental session — the two observation-producing paths cannot
/// drift apart from each other (and `tests/backend_identity.rs` /
/// `tests/oracle_identity.rs` pin both against the direct path).
fn emit_observations(
    file: &TestFile,
    src: &str,
    config: &CampaignConfig,
    observations: &[Observation],
    out: &mut ShardOutput,
) {
    for (cc, obs) in config.compilers.iter().zip(observations) {
        out.variants_tested += 1;
        if let Some(ice) = &obs.ice {
            out.candidates.push(Finding {
                kind: FindingKind::Crash,
                compiler: cc.id(),
                opt: cc.opt(),
                signature: ice.signature.to_string(),
                bug_id: Some(ice.bug_id),
                file: file.name.clone(),
                reproducer: src.to_string(),
                duplicate_of: None,
                reduced: None,
                fingerprint_duplicate_of: None,
            });
            continue;
        }
        if obs.unsupported {
            continue;
        }
        for slow in &obs.slow_compile {
            out.candidates.push(Finding {
                kind: FindingKind::Performance,
                compiler: cc.id(),
                opt: cc.opt(),
                signature: format!(
                    "compile time blow-up in {} at -O{}",
                    cc.id().family,
                    cc.opt()
                ),
                bug_id: Some(slow),
                file: file.name.clone(),
                reproducer: src.to_string(),
                duplicate_of: None,
                reduced: None,
                fingerprint_duplicate_of: None,
            });
        }
        if config.check_wrong_code {
            if obs.reference_ub {
                out.variants_ub_skipped += 1;
            } else if obs.wrong_code {
                out.candidates.push(Finding {
                    kind: FindingKind::WrongCode,
                    compiler: cc.id(),
                    opt: cc.opt(),
                    signature: format!(
                        "wrong code: {} at -O{} on {}",
                        cc.id().family,
                        cc.opt(),
                        file.name
                    ),
                    bug_id: obs.miscompiled_by.first().copied(),
                    file: file.name.clone(),
                    reproducer: src.to_string(),
                    duplicate_of: None,
                    reduced: None,
                    fingerprint_duplicate_of: None,
                });
            }
        }
    }
}

/// The per-(file, shard)-job state of the incremental oracle path: one
/// [`CachedOracle`] anchored on the job's first rendered variant, plus
/// the previous variant's bindings for hole-delta computation.
///
/// The session parses the *first variant it processes* (not the
/// skeleton's normalized program), so the cached AST is exactly what the
/// round-trip path would parse for it; every later variant differs only
/// in identifier spellings at hole slots, which is precisely what
/// [`CachedOracle::observe_variant`] splices (see
/// [`spe_simcc::incremental`] for the identity argument). If the first
/// variant does not parse, or a hole cannot be mapped into the parsed
/// AST, the session permanently falls back to the round-trip path for
/// the job — identical behavior by construction.
pub(crate) struct IncrementalSession<'s> {
    sk: &'s Skeleton,
    cache: Option<CachedOracle>,
    /// Permanent round-trip fallback for this job.
    fallback: bool,
    /// Whether the first variant has been seen (and the cache built).
    started: bool,
    /// The previous variant's hole bindings — the delta baseline.
    prev: Vec<NameId>,
    /// Scratch: indices of holes whose binding changed since `prev`.
    changed: Vec<usize>,
    /// Scratch: the current variant's spellings, hole-indexed.
    spellings: Vec<&'s str>,
    /// Stats snapshot at the last telemetry emission.
    last_stats: CacheStats,
}

impl<'s> IncrementalSession<'s> {
    pub(crate) fn new(sk: &'s Skeleton) -> IncrementalSession<'s> {
        IncrementalSession {
            sk,
            cache: None,
            fallback: false,
            started: false,
            prev: Vec::new(),
            changed: Vec::new(),
            spellings: Vec::new(),
            last_stats: CacheStats::default(),
        }
    }

    /// [`Oracle::process_variant`] through the splice cache: identical
    /// findings and counters, one `oracle_ns.<verdict>` histogram sample,
    /// plus the `oracle_cache.*` effectiveness counters.
    pub(crate) fn process_variant(
        &mut self,
        variant: &Variant,
        file: &TestFile,
        src: &str,
        config: &CampaignConfig,
        out: &mut ShardOutput,
        telemetry: &dyn TelemetrySink,
    ) -> Result<(), BackendError> {
        if self.fallback {
            return Oracle::Direct.process_variant(file, src, config, out, telemetry);
        }
        if !self.started {
            self.started = true;
            let built = spe_minic::parse(src).ok().and_then(|prog| {
                let occs: Vec<_> = self.sk.hole_occs().collect();
                CachedOracle::new(
                    prog,
                    &occs,
                    &config.compilers,
                    config.check_wrong_code,
                    config.fuel,
                )
            });
            match built {
                Some(cache) => self.cache = Some(cache),
                None => {
                    // Unparsable render (then every variant is equally
                    // unparsable and the round trip skips them all) or
                    // an unmappable hole: take the round-trip path for
                    // the whole job.
                    self.fallback = true;
                    return Oracle::Direct.process_variant(file, src, config, out, telemetry);
                }
            }
        }
        self.spellings.clear();
        let table = self.sk.names();
        for &id in &variant.names {
            self.spellings.push(table.name(id));
        }
        variant.changed_holes_into(&self.prev, &mut self.changed);
        self.prev.clone_from(&variant.names);
        let cache = self.cache.as_mut().expect("cache built above");
        let (spellings, changed) = (&self.spellings, &self.changed);
        process_timed(telemetry, out, |out| {
            let observations = cache.observe_variant(spellings, Some(changed));
            emit_observations(file, src, config, observations, out);
            Ok(())
        })?;
        if telemetry.enabled() {
            let stats = self.cache.as_ref().expect("cache built above").stats();
            let last = std::mem::replace(&mut self.last_stats, stats);
            for (name, delta) in [
                (names::ORACLE_SPLICE_HITS, stats.splice_delta - last.splice_delta),
                (names::ORACLE_SPLICE_MISSES, stats.splice_full - last.splice_full),
                (
                    names::ORACLE_PIPELINE_MEMO_HITS,
                    stats.pipeline_memo_hits - last.pipeline_memo_hits,
                ),
                (
                    names::ORACLE_PIPELINE_MEMO_MISSES,
                    stats.pipeline_memo_misses - last.pipeline_memo_misses,
                ),
            ] {
                if delta > 0 {
                    telemetry.counter(name, delta);
                }
            }
        }
        Ok(())
    }
}

/// The quarantine record of a (file, shard) job whose oracle backend
/// persistently failed: the campaign carries on, and the report keeps
/// an auditable [`FindingKind::BackendDegraded`] entry carrying the
/// failing variant as its reproducer.
pub(crate) fn degraded_finding(
    file: &TestFile,
    shard: usize,
    variant_src: &str,
    config: &CampaignConfig,
    err: &BackendError,
) -> Finding {
    let (compiler, opt) = match config.compilers.first() {
        Some(cc) => (cc.id(), cc.opt()),
        None => (
            CompilerId {
                family: intern("backend"),
                version: 0,
            },
            0,
        ),
    };
    Finding {
        kind: FindingKind::BackendDegraded,
        compiler,
        opt,
        signature: format!(
            "backend degraded: {} shard {}: {}",
            file.name, shard, err.what
        ),
        bug_id: None,
        file: file.name.clone(),
        reproducer: variant_src.to_string(),
        duplicate_of: None,
        reduced: None,
        fingerprint_duplicate_of: None,
    }
}

/// The quarantine record of a (file, shard) job whose worker panicked:
/// the [`FindingKind::JobPanicked`] counterpart of [`degraded_finding`],
/// carrying the variant that was being processed when the panic fired
/// and the panic message.
pub(crate) fn panicked_finding(
    file: &TestFile,
    shard: usize,
    variant_src: &str,
    config: &CampaignConfig,
    what: &str,
) -> Finding {
    let (compiler, opt) = match config.compilers.first() {
        Some(cc) => (cc.id(), cc.opt()),
        None => (
            CompilerId {
                family: intern("backend"),
                version: 0,
            },
            0,
        ),
    };
    Finding {
        kind: FindingKind::JobPanicked,
        compiler,
        opt,
        signature: format!("job panicked: {} shard {}: {}", file.name, shard, what),
        bug_id: None,
        file: file.name.clone(),
        reproducer: variant_src.to_string(),
        duplicate_of: None,
        reduced: None,
        fingerprint_duplicate_of: None,
    }
}

/// Processes one (file, shard) work item: enumerates the shard's slice of
/// the file's variant space and feeds every variant to the oracle.
/// `buf` is the worker's reusable render buffer.
fn process_work_item(
    file: &TestFile,
    shard: usize,
    shards_per_file: usize,
    config: &CampaignConfig,
    buf: &mut String,
    oracle: Oracle<'_>,
) -> ShardOutput {
    match prepare_file(file, shards_per_file, config) {
        None => ShardOutput::default(),
        Some((sk, space)) => {
            process_file_shard(file, &sk, &space, shard, shards_per_file, config, buf, oracle)
        }
    }
}

/// Parses and analyzes one file and materializes its variant space once;
/// `None` when the file does not analyze. The expensive half of a work
/// item — the parallel campaign computes it once per file and shares it
/// across that file's shards.
fn prepare_file(
    file: &TestFile,
    shards_per_file: usize,
    config: &CampaignConfig,
) -> Option<(Skeleton, VariantSpace)> {
    let sk = Skeleton::from_source(&file.source).ok()?;
    let space = campaign_enumerator(config, shards_per_file).prepare(&sk);
    Some((sk, space))
}

fn campaign_enumerator(config: &CampaignConfig, shards_per_file: usize) -> ShardedEnumerator {
    ShardedEnumerator::new(
        EnumeratorConfig {
            algorithm: config.algorithm,
            granularity: Granularity::Intra,
            budget: config.budget,
        },
        shards_per_file,
    )
}

/// Streams one shard of a prepared file through the compilers. Every
/// variant is rendered through the worker's reusable `buf` via the
/// skeleton's compiled template — no per-variant source allocation.
/// A persistent backend failure quarantines the rest of the shard: the
/// accumulated output is kept and capped with a
/// [`FindingKind::BackendDegraded`] finding.
#[allow(clippy::too_many_arguments)]
fn process_file_shard(
    file: &TestFile,
    sk: &Skeleton,
    space: &VariantSpace,
    shard: usize,
    shards_per_file: usize,
    config: &CampaignConfig,
    buf: &mut String,
    oracle: Oracle<'_>,
) -> ShardOutput {
    let mut out = ShardOutput {
        file_processed: shard == 0,
        ..ShardOutput::default()
    };
    let telemetry = spe_telemetry::global();
    // Per-job incremental session (when the oracle is incremental):
    // created here, dropped when the shard completes.
    let mut session = oracle.session(sk);
    campaign_enumerator(config, shards_per_file).enumerate_shard_prepared(
        space,
        shard,
        &mut |variant| {
            variant.render_into(sk, buf);
            let result = match session.as_mut() {
                Some(sess) => {
                    sess.process_variant(variant, file, buf, config, &mut out, &*telemetry)
                }
                None => oracle.process_variant(file, buf, config, &mut out, &*telemetry),
            };
            match result {
                Ok(()) => ControlFlow::Continue(()),
                Err(e) => {
                    out.candidates.push(degraded_finding(file, shard, buf, config, &e));
                    ControlFlow::Break(())
                }
            }
        },
    );
    out
}

/// Folds per-item outputs into the final report **in work-item order**
/// (file-major, shard-minor), which is exactly the serial emission order —
/// so dedup decisions, finding order, first-reproducer choices and the
/// triage tables derived from them are byte-identical to a serial run.
fn merge_outputs(outputs: Vec<ShardOutput>) -> CampaignReport {
    let mut report = CampaignReport::default();
    // (family, signature) -> index into findings.
    let mut seen_signatures: HashMap<(String, String), usize> = HashMap::new();
    // (family, bug id) -> first signature.
    let mut seen_bugs: HashMap<(String, &'static str), String> = HashMap::new();
    for out in outputs {
        report.files_processed += usize::from(out.file_processed);
        report.variants_tested += out.variants_tested;
        report.variants_ub_skipped += out.variants_ub_skipped;
        for finding in out.candidates {
            record(&mut report, &mut seen_signatures, &mut seen_bugs, finding);
        }
    }
    report
}

/// Runs an SPE bug-hunting campaign over `files`.
///
/// Crash detection needs only compilation; the wrong-code oracle runs the
/// UB-checking reference interpreter first and skips undefined variants,
/// exactly as §5.4 prescribes.
///
/// Runs on the incremental oracle path ([`OraclePath::Incremental`]);
/// use [`run_campaign_with_path`] to force the round trip.
pub fn run_campaign(files: &[TestFile], config: &CampaignConfig) -> CampaignReport {
    run_campaign_oracle(files, config, Oracle::Incremental)
}

/// [`run_campaign`] on an explicit [`OraclePath`]. Reports are
/// byte-identical across paths; the differential identity suite runs
/// both and compares.
pub fn run_campaign_with_path(
    files: &[TestFile],
    config: &CampaignConfig,
    path: OraclePath,
) -> CampaignReport {
    run_campaign_oracle(files, config, path.oracle())
}

/// [`run_campaign`] with the oracle dispatched through a
/// [`CompilerBackend`] — the entry point for external-compiler
/// campaigns. With the in-process [`spe_simcc::backend::SimccBackend`]
/// the report is byte-identical to [`run_campaign`]; with a subprocess
/// backend, jobs whose backend persistently fails are quarantined as
/// [`FindingKind::BackendDegraded`] findings instead of aborting the
/// campaign.
pub fn run_campaign_with_backend(
    files: &[TestFile],
    config: &CampaignConfig,
    backend: &dyn CompilerBackend,
) -> CampaignReport {
    run_campaign_oracle(files, config, Oracle::Backend(backend))
}

fn run_campaign_oracle(
    files: &[TestFile],
    config: &CampaignConfig,
    oracle: Oracle<'_>,
) -> CampaignReport {
    let mut buf = String::new();
    merge_outputs(
        files
            .iter()
            .map(|file| process_work_item(file, 0, 1, config, &mut buf, oracle))
            .collect(),
    )
}

/// Runs the campaign with a pool of `workers` threads, fanning
/// `files × shards` work items across the pool (each file's variant space
/// is cut into `workers` shards, so even a single large file parallelizes).
/// Work items live in a shared work-stealing queue ([`steal::WorkQueue`]):
/// each worker is dealt a contiguous run of items — so consecutive shards
/// of one file stay on one thread, keeping its prepared variant space warm
/// — and a worker that runs dry steals from the back of the first
/// non-empty neighbour (scanning round-robin), smoothing skew when one
/// file's variants compile much slower than the rest. Each worker renders
/// variants through one reusable buffer.
///
/// The merged [`CampaignReport`] — finding order, dedup decisions,
/// reproducers and counters — is **byte-identical** to [`run_campaign`] on
/// the same inputs, for any worker count: outputs are folded in
/// deterministic (file, shard) order regardless of completion order, and
/// within that order findings keep their stable (file, compiler,
/// signature) emission sequence.
///
/// A thin wrapper over [`orchestrate`]'s supervised loop (no checkpoint
/// sink): workers additionally run each job under panic isolation, so a
/// poisoned variant quarantines its (file, shard) job as a
/// [`FindingKind::JobPanicked`] finding instead of crashing the process.
pub fn run_campaign_parallel(
    files: &[TestFile],
    config: &CampaignConfig,
    workers: usize,
) -> CampaignReport {
    run_campaign_parallel_with_path(files, config, workers, OraclePath::Incremental)
}

/// [`run_campaign_parallel`] on an explicit [`OraclePath`]. Reports are
/// byte-identical across paths and worker counts.
pub fn run_campaign_parallel_with_path(
    files: &[TestFile],
    config: &CampaignConfig,
    workers: usize,
    path: OraclePath,
) -> CampaignReport {
    complete_report(orchestrate::campaign_oracle(
        files,
        config,
        workers,
        path.oracle(),
        orchestrate::FaultPolicy::default(),
    ))
}

/// [`run_campaign_parallel`] through a [`CompilerBackend`]: the
/// work-stealing pool, deterministic merge and byte-identity guarantees
/// are unchanged; only the oracle is dispatched. Backends that shell out
/// should size their process pool to `workers` (see `spe-subproc`).
pub fn run_campaign_parallel_with_backend(
    files: &[TestFile],
    config: &CampaignConfig,
    backend: &dyn CompilerBackend,
    workers: usize,
) -> CampaignReport {
    complete_report(orchestrate::campaign_oracle(
        files,
        config,
        workers,
        Oracle::Backend(backend),
        orchestrate::FaultPolicy::default(),
    ))
}

/// Unwraps an in-memory (checkpoint-less) [`orchestrate::Outcome`]: with
/// no journal sink and no kill budget, such a run always completes.
fn complete_report(outcome: orchestrate::Outcome) -> CampaignReport {
    for w in &outcome.warnings {
        eprintln!("spe-harness: warning: {w}");
    }
    outcome
        .status
        .into_report()
        .expect("in-memory campaigns always complete")
}

fn record(
    report: &mut CampaignReport,
    seen_signatures: &mut HashMap<(String, String), usize>,
    seen_bugs: &mut HashMap<(String, &'static str), String>,
    mut finding: Finding,
) {
    let key = (
        finding.compiler.family.to_string(),
        finding.signature.clone(),
    );
    if seen_signatures.contains_key(&key) {
        return; // already reported under this signature
    }
    if let Some(bug) = finding.bug_id {
        let bkey = (finding.compiler.family.to_string(), bug);
        match seen_bugs.get(&bkey) {
            Some(first_sig) if *first_sig != finding.signature => {
                finding.duplicate_of = Some(first_sig.clone());
            }
            Some(_) => {}
            None => {
                seen_bugs.insert(bkey, finding.signature.clone());
            }
        }
    }
    seen_signatures.insert(key, report.findings.len());
    report.findings.push(finding);
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_corpus::seeds;

    fn seed_campaign(check_wrong_code: bool) -> CampaignReport {
        let files = seeds::all();
        run_campaign(
            &files,
            &CampaignConfig {
                compilers: vec![
                    Compiler::new(CompilerId::gcc(700), 0),
                    Compiler::new(CompilerId::gcc(700), 3),
                    Compiler::new(CompilerId::clang(390), 3),
                ],
                budget: 200,
                algorithm: Algorithm::Paper,
                check_wrong_code,
                fuel: 20_000,
            },
        )
    }

    #[test]
    fn finds_crash_bugs_in_seed_programs() {
        let report = seed_campaign(false);
        assert!(report.files_processed >= 6);
        let crash_sigs: Vec<&str> = report
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::Crash)
            .map(|f| f.signature.as_str())
            .collect();
        assert!(
            crash_sigs.iter().any(|s| s.contains("operand_equal_p")),
            "Figure 3 crash found: {crash_sigs:?}"
        );
    }

    #[test]
    fn finds_the_figure2_miscompilation() {
        let report = seed_campaign(true);
        let wrong: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::WrongCode)
            .collect();
        assert!(
            wrong.iter().any(|f| f.bug_id == Some("gcc-69951")),
            "alias miscompilation found: {:?}",
            wrong.iter().map(|f| &f.signature).collect::<Vec<_>>()
        );
    }

    #[test]
    fn signatures_are_deduplicated() {
        let report = seed_campaign(false);
        let mut sigs: Vec<(String, String)> = report
            .findings
            .iter()
            .map(|f| (f.compiler.family.to_string(), f.signature.clone()))
            .collect();
        let before = sigs.len();
        sigs.sort();
        sigs.dedup();
        assert_eq!(before, sigs.len(), "duplicate signatures in findings");
    }

    #[test]
    fn ub_variants_are_skipped_not_reported() {
        // A skeleton whose variants frequently divide by zero or read
        // uninitialized memory: variants must be filtered, not flagged.
        let files = vec![TestFile {
            name: "ub.c".into(),
            source: "int main() { int a = 0, b = 4; b = b / (a + b); return b; }".into(),
        }];
        let report = run_campaign(
            &files,
            &CampaignConfig {
                compilers: vec![Compiler::new(CompilerId::gcc(440), 1)],
                budget: 100,
                algorithm: Algorithm::Paper,
                check_wrong_code: true,
                fuel: 10_000,
            },
        );
        // gcc-440 at -O1 has the alias bug only; this program has no
        // pointers, so any mismatch would be a false positive.
        assert!(
            report
                .findings
                .iter()
                .all(|f| f.kind != FindingKind::WrongCode),
            "false positives: {:?}",
            report.findings
        );
        assert!(
            report.variants_ub_skipped > 0,
            "some variants divide by zero"
        );
    }

    #[test]
    fn stable_release_campaign_finds_fewer_bugs_than_trunk() {
        let files = seeds::all();
        let run_with = |version: u32| {
            run_campaign(
                &files,
                &CampaignConfig {
                    compilers: vec![
                        Compiler::new(CompilerId::gcc(version), 0),
                        Compiler::new(CompilerId::gcc(version), 3),
                    ],
                    budget: 150,
                    algorithm: Algorithm::Paper,
                    check_wrong_code: false,
                    fuel: 10_000,
                },
            )
        };
        let old = run_with(440);
        let trunk = run_with(700);
        assert!(
            trunk.findings.len() >= old.findings.len(),
            "trunk has at least as many live seeded bugs ({} vs {})",
            trunk.findings.len(),
            old.findings.len()
        );
    }
}
