//! Differential compiler-testing campaigns driven by skeletal program
//! enumeration.
//!
//! This crate is the paper's §5 experimental machinery:
//!
//! * [`run_campaign`] enumerates SPE variants of a corpus and feeds them
//!   to one or more [`Compiler`]s, detecting **crash bugs** (internal
//!   compiler errors, deduplicated by signature as in Table 3), **wrong
//!   code** (differential mismatch between the UB-checked reference
//!   interpreter and the compiled VM image), and **performance bugs**;
//! * [`triage`] aggregates findings into the paper's Table 4 and
//!   Figure 10 shapes using the seeded-bug registry metadata;
//! * [`mutation`] implements the Orion-style statement-deletion baseline
//!   (PM-X in Figure 9);
//! * [`coverage_run`] measures pass/point coverage improvements of SPE
//!   and mutation variants over the baseline suite (Figure 9).

use spe_core::{Algorithm, Enumerator, EnumeratorConfig, Granularity, Skeleton};
use spe_corpus::TestFile;
use spe_simcc::{interp, Compiler, CompileError, CompilerId};
use std::collections::HashMap;
use std::ops::ControlFlow;

pub mod coverage_run;
pub mod mutation;
pub mod triage;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Compilers (with optimization levels) under test.
    pub compilers: Vec<Compiler>,
    /// Variants enumerated per file (the paper's 10K threshold, usually
    /// lowered for quick runs).
    pub budget: usize,
    /// Enumeration semantics.
    pub algorithm: Algorithm,
    /// Whether to run the differential wrong-code oracle (crash-only
    /// campaigns are much faster, mirroring §5.2.3).
    pub check_wrong_code: bool,
    /// Interpreter/VM fuel per execution.
    pub fuel: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            compilers: vec![
                Compiler::new(CompilerId::gcc(700), 0),
                Compiler::new(CompilerId::gcc(700), 3),
                Compiler::new(CompilerId::clang(390), 0),
                Compiler::new(CompilerId::clang(390), 3),
            ],
            budget: 64,
            algorithm: Algorithm::Paper,
            check_wrong_code: true,
            fuel: 50_000,
        }
    }
}

/// What kind of defect a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// Internal compiler error.
    Crash,
    /// Differential mismatch on a UB-free input.
    WrongCode,
    /// Pathological compile time.
    Performance,
}

impl FindingKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            FindingKind::Crash => "crash",
            FindingKind::WrongCode => "wrong code",
            FindingKind::Performance => "performance",
        }
    }
}

/// One deduplicated bug report.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Kind of defect.
    pub kind: FindingKind,
    /// Compiler that exhibited it.
    pub compiler: CompilerId,
    /// Optimization level of the failing configuration.
    pub opt: u8,
    /// Dedup key: the crash signature, or a synthesized wrong-code /
    /// performance symptom description.
    pub signature: String,
    /// Ground-truth seeded bug (available for crashes and triaged
    /// miscompiles; `None` when triage could not attribute it).
    pub bug_id: Option<&'static str>,
    /// Corpus file whose variant exposed the bug.
    pub file: String,
    /// A variant that reproduces it.
    pub reproducer: String,
    /// `Some(signature)` when the same underlying defect was already
    /// reported under another signature (the paper's "Duplicate" column).
    pub duplicate_of: Option<String>,
}

/// Aggregate campaign results.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// All unique-signature reports (including duplicates of the same
    /// root cause, as in the paper's bookkeeping).
    pub findings: Vec<Finding>,
    /// Files processed (parsed + analyzed successfully).
    pub files_processed: usize,
    /// Total variants compiled.
    pub variants_tested: u64,
    /// Variants skipped by the UB oracle before output comparison.
    pub variants_ub_skipped: u64,
}

impl CampaignReport {
    /// Findings that are not duplicates.
    pub fn primary_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.duplicate_of.is_none())
    }

    /// Number of duplicate reports.
    pub fn duplicates(&self) -> usize {
        self.findings.iter().filter(|f| f.duplicate_of.is_some()).count()
    }

    /// Findings for one compiler family.
    pub fn for_family<'a>(&'a self, family: &'a str) -> impl Iterator<Item = &'a Finding> {
        self.findings.iter().filter(move |f| f.compiler.family == family)
    }
}

/// Runs an SPE bug-hunting campaign over `files`.
///
/// Crash detection needs only compilation; the wrong-code oracle runs the
/// UB-checking reference interpreter first and skips undefined variants,
/// exactly as §5.4 prescribes.
pub fn run_campaign(files: &[TestFile], config: &CampaignConfig) -> CampaignReport {
    let mut report = CampaignReport::default();
    // (family, signature) -> index into findings.
    let mut seen_signatures: HashMap<(String, String), usize> = HashMap::new();
    // (family, bug id) -> first signature.
    let mut seen_bugs: HashMap<(String, &'static str), String> = HashMap::new();

    for file in files {
        let Ok(sk) = Skeleton::from_source(&file.source) else {
            continue;
        };
        report.files_processed += 1;
        let enumerator = Enumerator::new(EnumeratorConfig {
            algorithm: config.algorithm,
            granularity: Granularity::Intra,
            budget: config.budget,
        });
        enumerator.enumerate(&sk, &mut |variant| {
            let src = variant.source(&sk);
            let Ok(prog) = spe_minic::parse(&src) else {
                return ControlFlow::Continue(());
            };
            let mut reference: Option<Result<interp::Execution, interp::Ub>> = None;
            for cc in &config.compilers {
                report.variants_tested += 1;
                match cc.compile(&prog) {
                    Err(CompileError::Ice(ice)) => {
                        record(
                            &mut report,
                            &mut seen_signatures,
                            &mut seen_bugs,
                            Finding {
                                kind: FindingKind::Crash,
                                compiler: cc.id(),
                                opt: cc.opt(),
                                signature: ice.signature.to_string(),
                                bug_id: Some(ice.bug_id),
                                file: file.name.clone(),
                                reproducer: src.clone(),
                                duplicate_of: None,
                            },
                        );
                    }
                    Err(CompileError::Unsupported(_)) => {}
                    Ok(compiled) => {
                        for slow in &compiled.slow_compile_bugs {
                            record(
                                &mut report,
                                &mut seen_signatures,
                                &mut seen_bugs,
                                Finding {
                                    kind: FindingKind::Performance,
                                    compiler: cc.id(),
                                    opt: cc.opt(),
                                    signature: format!(
                                        "compile time blow-up in {} at -O{}",
                                        cc.id().family,
                                        cc.opt()
                                    ),
                                    bug_id: Some(slow),
                                    file: file.name.clone(),
                                    reproducer: src.clone(),
                                    duplicate_of: None,
                                },
                            );
                        }
                        if config.check_wrong_code {
                            // Evaluate the reference once per variant.
                            if reference.is_none() {
                                reference = Some(interp::run(
                                    &prog,
                                    interp::Limits {
                                        fuel: config.fuel,
                                        max_depth: 64,
                                    },
                                ));
                            }
                            match reference.as_ref().expect("just set") {
                                Err(_) => {
                                    // UB or non-termination: skip, per §5.4.
                                    report.variants_ub_skipped += 1;
                                }
                                Ok(expected) => {
                                    let got = compiled.execute(config.fuel * 4);
                                    let mismatch = match &got {
                                        Ok(out) => {
                                            out.exit_code != expected.exit_code
                                                || out.output != expected.output
                                        }
                                        Err(_) => true,
                                    };
                                    if mismatch {
                                        let bug_id =
                                            compiled.miscompiled_by.first().copied();
                                        record(
                                            &mut report,
                                            &mut seen_signatures,
                                            &mut seen_bugs,
                                            Finding {
                                                kind: FindingKind::WrongCode,
                                                compiler: cc.id(),
                                                opt: cc.opt(),
                                                signature: format!(
                                                    "wrong code: {} at -O{} on {}",
                                                    cc.id().family,
                                                    cc.opt(),
                                                    file.name
                                                ),
                                                bug_id,
                                                file: file.name.clone(),
                                                reproducer: src.clone(),
                                                duplicate_of: None,
                                            },
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
            ControlFlow::Continue(())
        });
    }
    report
}

fn record(
    report: &mut CampaignReport,
    seen_signatures: &mut HashMap<(String, String), usize>,
    seen_bugs: &mut HashMap<(String, &'static str), String>,
    mut finding: Finding,
) {
    let key = (
        finding.compiler.family.to_string(),
        finding.signature.clone(),
    );
    if seen_signatures.contains_key(&key) {
        return; // already reported under this signature
    }
    if let Some(bug) = finding.bug_id {
        let bkey = (finding.compiler.family.to_string(), bug);
        match seen_bugs.get(&bkey) {
            Some(first_sig) if *first_sig != finding.signature => {
                finding.duplicate_of = Some(first_sig.clone());
            }
            Some(_) => {}
            None => {
                seen_bugs.insert(bkey, finding.signature.clone());
            }
        }
    }
    seen_signatures.insert(key, report.findings.len());
    report.findings.push(finding);
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_corpus::seeds;

    fn seed_campaign(check_wrong_code: bool) -> CampaignReport {
        let files = seeds::all();
        run_campaign(
            &files,
            &CampaignConfig {
                compilers: vec![
                    Compiler::new(CompilerId::gcc(700), 0),
                    Compiler::new(CompilerId::gcc(700), 3),
                    Compiler::new(CompilerId::clang(390), 3),
                ],
                budget: 200,
                algorithm: Algorithm::Paper,
                check_wrong_code,
                fuel: 20_000,
            },
        )
    }

    #[test]
    fn finds_crash_bugs_in_seed_programs() {
        let report = seed_campaign(false);
        assert!(report.files_processed >= 6);
        let crash_sigs: Vec<&str> = report
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::Crash)
            .map(|f| f.signature.as_str())
            .collect();
        assert!(
            crash_sigs.iter().any(|s| s.contains("operand_equal_p")),
            "Figure 3 crash found: {crash_sigs:?}"
        );
    }

    #[test]
    fn finds_the_figure2_miscompilation() {
        let report = seed_campaign(true);
        let wrong: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::WrongCode)
            .collect();
        assert!(
            wrong.iter().any(|f| f.bug_id == Some("gcc-69951")),
            "alias miscompilation found: {:?}",
            wrong.iter().map(|f| &f.signature).collect::<Vec<_>>()
        );
    }

    #[test]
    fn signatures_are_deduplicated() {
        let report = seed_campaign(false);
        let mut sigs: Vec<(String, String)> = report
            .findings
            .iter()
            .map(|f| (f.compiler.family.to_string(), f.signature.clone()))
            .collect();
        let before = sigs.len();
        sigs.sort();
        sigs.dedup();
        assert_eq!(before, sigs.len(), "duplicate signatures in findings");
    }

    #[test]
    fn ub_variants_are_skipped_not_reported() {
        // A skeleton whose variants frequently divide by zero or read
        // uninitialized memory: variants must be filtered, not flagged.
        let files = vec![TestFile {
            name: "ub.c".into(),
            source: "int main() { int a = 0, b = 4; b = b / (a + b); return b; }".into(),
        }];
        let report = run_campaign(
            &files,
            &CampaignConfig {
                compilers: vec![Compiler::new(CompilerId::gcc(440), 1)],
                budget: 100,
                algorithm: Algorithm::Paper,
                check_wrong_code: true,
                fuel: 10_000,
            },
        );
        // gcc-440 at -O1 has the alias bug only; this program has no
        // pointers, so any mismatch would be a false positive.
        assert!(
            report
                .findings
                .iter()
                .all(|f| f.kind != FindingKind::WrongCode),
            "false positives: {:?}",
            report.findings
        );
        assert!(report.variants_ub_skipped > 0, "some variants divide by zero");
    }

    #[test]
    fn stable_release_campaign_finds_fewer_bugs_than_trunk() {
        let files = seeds::all();
        let run_with = |version: u32| {
            run_campaign(
                &files,
                &CampaignConfig {
                    compilers: vec![
                        Compiler::new(CompilerId::gcc(version), 0),
                        Compiler::new(CompilerId::gcc(version), 3),
                    ],
                    budget: 150,
                    algorithm: Algorithm::Paper,
                    check_wrong_code: false,
                    fuel: 10_000,
                },
            )
        };
        let old = run_with(440);
        let trunk = run_with(700);
        assert!(
            trunk.findings.len() >= old.findings.len(),
            "trunk has at least as many live seeded bugs ({} vs {})",
            trunk.findings.len(),
            old.findings.len()
        );
    }
}
