//! Coverage measurement runs for the Figure 9 comparison: baseline suite
//! vs SPE variants vs Orion-style mutation (PM-X).

use crate::mutation::pm_variants;
use spe_core::{Algorithm, Enumerator, EnumeratorConfig, Granularity, Skeleton};
use spe_corpus::TestFile;
use spe_simcc::coverage::Coverage;
use std::ops::ControlFlow;

/// Function/line coverage percentages (0..=100).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoveragePoint {
    /// Fraction of compiler passes exercised, in percent.
    pub function: f64,
    /// Fraction of coverage points exercised, in percent.
    pub line: f64,
}

impl CoveragePoint {
    fn of(c: &Coverage) -> CoveragePoint {
        CoveragePoint {
            function: c.function_coverage() * 100.0,
            line: c.line_coverage() * 100.0,
        }
    }

    /// Percentage-point improvement over a baseline.
    pub fn improvement_over(&self, base: &CoveragePoint) -> CoveragePoint {
        CoveragePoint {
            function: self.function - base.function,
            line: self.line - base.line,
        }
    }
}

/// The Figure 9 experiment output: baseline coverage plus the improvement
/// of each technique.
#[derive(Debug, Clone)]
pub struct Figure9 {
    /// Coverage of the unmodified test programs.
    pub baseline: CoveragePoint,
    /// Improvements of PM-10/20/30 (statement deletion).
    pub pm: Vec<(usize, CoveragePoint)>,
    /// Improvement of SPE variants.
    pub spe: CoveragePoint,
}

fn merge_coverage_of(sources: &[String], opts: &[u8]) -> Coverage {
    let mut total = Coverage::new();
    for src in sources {
        if let Ok(p) = spe_minic::parse(src) {
            for &opt in opts {
                total.merge(&spe_simcc::coverage_probe(&p, opt));
            }
        }
    }
    total
}

/// Runs the coverage comparison over `files` with a per-file variant
/// budget. The paper samples 100 test programs and compares SPE against
/// PM-10/20/30; `pm_deletions` configures the X values.
pub fn figure9(files: &[TestFile], budget: usize, pm_deletions: &[usize], seed: u64) -> Figure9 {
    let opts: &[u8] = &[0, 3];
    // Baseline.
    let originals: Vec<String> = files.iter().map(|f| f.source.clone()).collect();
    let mut base_cov = merge_coverage_of(&originals, opts);
    let baseline = CoveragePoint::of(&base_cov);

    // SPE variants, rendered through one reusable template buffer.
    let mut spe_cov = base_cov.clone();
    let mut buf = String::new();
    for f in files {
        let Ok(sk) = Skeleton::from_source(&f.source) else {
            continue;
        };
        let e = Enumerator::new(EnumeratorConfig {
            algorithm: Algorithm::Paper,
            granularity: Granularity::Intra,
            budget,
        });
        e.enumerate(&sk, &mut |v| {
            v.render_into(&sk, &mut buf);
            if let Ok(p) = spe_minic::parse(&buf) {
                for &opt in opts {
                    spe_cov.merge(&spe_simcc::coverage_probe(&p, opt));
                }
            }
            ControlFlow::Continue(())
        });
    }
    let spe = CoveragePoint::of(&spe_cov).improvement_over(&baseline);

    // PM-X variants: same number of variants per file as the SPE budget.
    let mut pm = Vec::new();
    for &deletions in pm_deletions {
        let mut cov = base_cov.clone();
        for (i, f) in files.iter().enumerate() {
            let variants = pm_variants(&f.source, deletions, budget, seed ^ i as u64);
            cov.merge(&merge_coverage_of(&variants, opts));
        }
        pm.push((
            deletions,
            CoveragePoint::of(&cov).improvement_over(&baseline),
        ));
    }

    // Keep the borrowckless base unmodified for reporting.
    base_cov = Coverage::new();
    let _ = base_cov;
    Figure9 { baseline, pm, spe }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_corpus::{generate, CorpusConfig};

    #[test]
    fn spe_improves_coverage_more_than_mutation() {
        let files = generate(&CorpusConfig {
            files: 30,
            seed: 42,
        });
        let fig = figure9(&files, 12, &[1, 2, 3], 7);
        assert!(fig.baseline.line > 0.0);
        assert!(fig.spe.line >= 0.0);
        for (x, pm) in &fig.pm {
            assert!(
                fig.spe.line >= pm.line,
                "SPE ({:.3}) should beat PM-{x} ({:.3}) on line coverage",
                fig.spe.line,
                pm.line
            );
        }
    }

    #[test]
    fn improvements_are_nonnegative() {
        let files = generate(&CorpusConfig { files: 10, seed: 3 });
        let fig = figure9(&files, 8, &[2], 11);
        assert!(fig.spe.function >= 0.0);
        assert!(fig.spe.line >= 0.0);
        for (_, pm) in &fig.pm {
            assert!(pm.function >= 0.0);
            assert!(pm.line >= 0.0);
        }
    }
}
