//! Checkpointable, resumable campaigns over an `spe-persist` journal.
//!
//! [`crate::run_campaign_parallel`] is a one-shot in-memory run: a crash
//! or preemption loses everything, which is untenable for the paper's
//! multi-day enumeration budgets (Table 2). This module makes every
//! campaign **checkpointable and resumable with byte-identical final
//! reports** (`DESIGN.md` §9):
//!
//! * [`run_campaign_checkpointed`] runs the familiar work-stealing
//!   campaign, but each worker periodically appends its (file, shard)
//!   progress — the emission-index high-water mark plus the candidate
//!   [`Finding`]s and counters accrued since the last checkpoint — as a
//!   checksummed, fsync'd record frame in an [`spe_persist::Journal`];
//! * [`resume_campaign`] rebuilds the per-job state by **streaming** the
//!   journal's valid prefix through [`spe_persist::JournalIter`] (a torn
//!   tail frame from the crash is detected and dropped; memory is
//!   bounded by the live per-job state, not the journal size), re-deals
//!   only unfinished jobs into the work-stealing queue, and **re-seeds
//!   each shard at its recorded high-water mark** through
//!   [`spe_core::ShardedEnumerator::enumerate_shard_resumed_prepared`] —
//!   the exact-unranking `skip_to` machinery, so no variant before the
//!   mark is ever re-enumerated;
//! * [`compact_journal`] folds a long journal's superseded `Progress`
//!   frames into one frame per job via a crash-safe write-new → fsync →
//!   atomic-rename rewrite ([`spe_persist::journal::promote`];
//!   `DESIGN.md` §11) — resuming from the compacted journal is
//!   byte-identical to resuming from the original;
//! * [`reduce_findings_checkpointed`] extends the same journal through
//!   the post-campaign reduction stage, recording one witness per
//!   finding so a resumed pipeline re-reduces only what was lost.
//!
//! The worker pool itself — with its panic isolation, checkpoint
//! cadence, and journal-fault degradation — lives in
//! [`crate::orchestrate`]; every entry point here is a thin wrapper that
//! builds or replays journal state and hands it to the one supervised
//! loop.
//!
//! **Resume determinism.** Enumeration order is globally fixed
//! (file-major, emission-index order), every per-variant computation is
//! a pure function of `(file, variant, config)`, and a `Progress` record
//! commits a high-water mark *together with* exactly the candidates of
//! the variants it covers — one atomic frame. Replayed prefix +
//! recomputed suffix therefore reproduces precisely the uninterrupted
//! per-job outputs, and [`crate::run_campaign`]'s deterministic
//! (file, shard)-ordered merge does the rest: the final report is
//! byte-identical to a never-interrupted run, at any worker count, no
//! matter where (or how often) the campaign was killed. `DESIGN.md` §9
//! spells the argument out.

use crate::orchestrate::{self, FaultPolicy, Outcome, Spec};
use crate::reduction::{attach_and_dedup, reduce_one_isolated, ReducedWitness, ReductionOptions};
use crate::steal::WorkQueue;
use crate::{
    merge_outputs, CampaignConfig, CampaignReport, Finding, FindingKind, Oracle, OraclePath,
    ShardOutput,
};
use spe_core::Algorithm;
use spe_corpus::TestFile;
use spe_persist::{DecodeError, Decoder, Encoder, Journal, JournalError, JournalIter};
use spe_simcc::backend::CompilerBackend;
use spe_simcc::{bugs, Compiler, CompilerId};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Errors of checkpointed runs and resumes.
#[derive(Debug)]
pub enum CheckpointError {
    /// The journal could not be created, appended, or read.
    Journal(JournalError),
    /// A record or the manifest failed to decode (foreign or damaged
    /// journal whose frames are nonetheless checksum-valid).
    Decode(DecodeError),
    /// The journal is internally consistent but names entities this
    /// build does not know (compiler family, bug id, algorithm tag) or
    /// violates the campaign schema (job index out of range).
    Foreign(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Journal(e) => write!(f, "{e}"),
            CheckpointError::Decode(e) => write!(f, "journal record: {e}"),
            CheckpointError::Foreign(what) => write!(f, "foreign journal: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<JournalError> for CheckpointError {
    fn from(e: JournalError) -> CheckpointError {
        CheckpointError::Journal(e)
    }
}

impl From<DecodeError> for CheckpointError {
    fn from(e: DecodeError) -> CheckpointError {
        CheckpointError::Decode(e)
    }
}

/// Options of a checkpointed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointOptions {
    /// Variants a worker processes on one shard between `Progress`
    /// records. Smaller = less recomputation after a crash, more fsync
    /// traffic; `DESIGN.md` §9 discusses the cadence trade-off. (A
    /// wall-clock cadence bound rides alongside this count in
    /// [`FaultPolicy::checkpoint_interval`].)
    pub every: u64,
    /// Simulated preemption for tests and demos: once this many variants
    /// have been processed across all workers *in this run*, workers
    /// abort without flushing their in-memory tail — exactly what a
    /// `SIGKILL` between checkpoints leaves behind. `None` runs to
    /// completion.
    pub stop_after: Option<u64>,
}

impl Default for CheckpointOptions {
    fn default() -> Self {
        CheckpointOptions {
            every: 512,
            stop_after: None,
        }
    }
}

/// Outcome of a checkpointed run: either a finished report or an
/// interruption whose state lives in the journal.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignStatus {
    /// The campaign ran to completion; the report is byte-identical to
    /// the equivalent uninterrupted [`crate::run_campaign_parallel`].
    Complete(CampaignReport),
    /// [`CheckpointOptions::stop_after`] fired mid-campaign. Resume from
    /// the journal with [`resume_campaign`].
    Interrupted,
}

impl CampaignStatus {
    /// The completed report, `None` when interrupted.
    pub fn into_report(self) -> Option<CampaignReport> {
        match self {
            CampaignStatus::Complete(r) => Some(r),
            CampaignStatus::Interrupted => None,
        }
    }

    /// Whether the run was cut short.
    pub fn is_interrupted(&self) -> bool {
        matches!(self, CampaignStatus::Interrupted)
    }
}

// ---------------------------------------------------------------------
// Record schema (payloads inside `spe-persist` frames; DESIGN.md §9).
// ---------------------------------------------------------------------

const REC_PROGRESS: u8 = 1;
const REC_JOB_DONE: u8 = 2;
const REC_CAMPAIGN_DONE: u8 = 3;
const REC_REDUCED: u8 = 4;
const REC_REDUCTION_OPTIONS: u8 = 5;

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::Paper,
    Algorithm::Canonical,
    Algorithm::Orbit,
    Algorithm::Naive,
];

fn algorithm_tag(a: Algorithm) -> u8 {
    ALGORITHMS.iter().position(|&x| x == a).expect("known") as u8
}

/// Re-interns a journal bug id: against the seeded-defect registry when
/// it names a known defect (the in-memory type is `&'static str`),
/// otherwise through the process-wide interner — external backends
/// record triage classes (crash-signature lines, signal names) as bug
/// ids, which no registry can enumerate up front.
fn intern_bug_id(id: &str) -> Result<&'static str, CheckpointError> {
    static IDS: OnceLock<Vec<&'static str>> = OnceLock::new();
    Ok(IDS
        .get_or_init(|| bugs::registry().iter().map(|b| b.id).collect())
        .iter()
        .copied()
        .find(|&known| known == id)
        .unwrap_or_else(|| spe_simcc::backend::intern(id)))
}

/// As [`intern_bug_id`]: the built-in simulator families keep their
/// canonical statics, external families go through the interner.
fn intern_family(family: &str, version: u32) -> Result<CompilerId, CheckpointError> {
    match family {
        "gcc-sim" => Ok(CompilerId::gcc(version)),
        "clang-sim" => Ok(CompilerId::clang(version)),
        other => Ok(CompilerId {
            family: spe_simcc::backend::intern(other),
            version,
        }),
    }
}

fn encode_finding(enc: &mut Encoder, f: &Finding) {
    enc.u8(match f.kind {
        FindingKind::Crash => 0,
        FindingKind::WrongCode => 1,
        FindingKind::Performance => 2,
        FindingKind::BackendDegraded => 3,
        FindingKind::JobPanicked => 4,
    });
    enc.str(f.compiler.family).u32(f.compiler.version).u8(f.opt);
    enc.str(&f.signature).opt_str(f.bug_id);
    enc.str(&f.file).str(&f.reproducer);
}

fn decode_finding(dec: &mut Decoder) -> Result<Finding, CheckpointError> {
    let kind = match dec.u8()? {
        0 => FindingKind::Crash,
        1 => FindingKind::WrongCode,
        2 => FindingKind::Performance,
        3 => FindingKind::BackendDegraded,
        4 => FindingKind::JobPanicked,
        _ => return Err(CheckpointError::Foreign("finding kind tag".into())),
    };
    let family = dec.str()?;
    let compiler = intern_family(&family, dec.u32()?)?;
    let opt = dec.u8()?;
    let signature = dec.str()?;
    let bug_id = match dec.opt_str()? {
        Some(id) => Some(intern_bug_id(&id)?),
        None => None,
    };
    Ok(Finding {
        kind,
        compiler,
        opt,
        signature,
        bug_id,
        file: dec.str()?,
        reproducer: dec.str()?,
        // Candidates are checkpointed pre-merge: dedup links and reduced
        // witnesses are recomputed deterministically downstream.
        duplicate_of: None,
        reduced: None,
        fingerprint_duplicate_of: None,
    })
}

/// One `Progress` frame: the job's new high-water mark plus exactly the
/// output delta of the variants it covers, in one atomic payload.
pub(crate) fn encode_progress(job: usize, emitted: u64, delta: &ShardOutput) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.u8(REC_PROGRESS)
        .u32(job as u32)
        .u64(emitted)
        .bool(delta.file_processed)
        .u64(delta.variants_tested)
        .u64(delta.variants_ub_skipped)
        .usize(delta.candidates.len());
    for f in &delta.candidates {
        encode_finding(&mut enc, f);
    }
    enc.finish()
}

/// One `JobDone` frame.
pub(crate) fn encode_job_done(job: usize) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.u8(REC_JOB_DONE).u32(job as u32);
    enc.finish()
}

/// One `CampaignDone` frame.
pub(crate) fn encode_campaign_done() -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.u8(REC_CAMPAIGN_DONE);
    enc.finish()
}

/// Flat encoding of the full [`ReductionOptions`], pinned in the journal
/// before the first `Reduced` record: witnesses depend on the oracle
/// fuel and the reducer limits, so a resumed pass must run under the
/// options that produced the replayed witnesses or the mixed result
/// would match *no* uninterrupted run.
fn encode_reduction_options(options: &ReductionOptions) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.u8(REC_REDUCTION_OPTIONS)
        .u64(options.fuel)
        .usize(options.reduce.max_oracle_calls)
        .usize(options.reduce.max_rounds)
        .bool(options.reduce.canonicalize);
    enc.finish()
}

/// One `Reduced` frame: the finding's index and signature plus its
/// witness (`None` when the finding proved irreducible).
fn encode_reduced(finding: usize, signature: &str, witness: &Option<ReducedWitness>) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.u8(REC_REDUCED).u32(finding as u32).str(signature);
    match witness {
        Some(w) => {
            enc.bool(true);
            encode_witness(&mut enc, w);
        }
        None => {
            enc.bool(false);
        }
    }
    enc.finish()
}

fn encode_witness(enc: &mut Encoder, w: &ReducedWitness) {
    enc.str(&w.source)
        .str(&w.fingerprint)
        .str(&w.trigger)
        .usize(w.original_bytes)
        .usize(w.reduced_bytes)
        .usize(w.oracle_calls);
}

fn decode_witness(dec: &mut Decoder) -> Result<ReducedWitness, CheckpointError> {
    Ok(ReducedWitness {
        source: dec.str()?,
        fingerprint: dec.str()?,
        trigger: dec.str()?,
        original_bytes: dec.usize()?,
        reduced_bytes: dec.usize()?,
        oracle_calls: dec.usize()?,
    })
}

/// Fleet provenance pinned by a multi-host journal's manifest
/// (`DESIGN.md` §14): which fleet campaign the journal belongs to, how
/// many hosts the (file × shard) job space was dealt across, and which
/// of those slices this journal's host owns. `None` on single-host
/// journals; [`crate::fleet::merge_journals`] refuses to fold journals
/// whose stamps disagree on anything but `host_id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FleetStamp {
    /// Caller-chosen campaign identity shared by every host journal.
    pub(crate) fleet_id: u64,
    /// Hosts the job space was dealt across (fixes every slice).
    pub(crate) n_hosts: u32,
    /// This journal's slice: `even_ranges(jobs, n_hosts)[host_id]`.
    pub(crate) host_id: u32,
}

/// The journal header: everything needed to resume with **no inputs
/// besides the journal path and the oracle backend** — the full corpus,
/// the campaign configuration, the job decomposition, and the identity
/// (id + configuration hash) of the backend that produced the recorded
/// observations. Resume compares that identity against the backend it
/// is handed and **refuses a mismatch**: replayed frames mixed with a
/// different oracle's recomputed suffix would match *no* uninterrupted
/// run.
pub(crate) struct Manifest {
    pub(crate) config: CampaignConfig,
    pub(crate) shards_per_file: usize,
    pub(crate) files: Vec<TestFile>,
    /// [`spe_simcc::backend::CompilerBackend::id`] of the recording oracle.
    pub(crate) backend_id: String,
    /// [`spe_simcc::backend::CompilerBackend::config_hash`] of the same.
    pub(crate) backend_hash: u64,
    /// Fleet provenance trailer; `None` on single-host journals.
    pub(crate) fleet: Option<FleetStamp>,
}

impl Manifest {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.usize(self.config.compilers.len());
        for cc in &self.config.compilers {
            enc.str(cc.id().family).u32(cc.id().version).u8(cc.opt());
        }
        enc.usize(self.config.budget)
            .u8(algorithm_tag(self.config.algorithm))
            .bool(self.config.check_wrong_code)
            .u64(self.config.fuel)
            .str(&self.backend_id)
            .u64(self.backend_hash)
            .usize(self.shards_per_file)
            .usize(self.files.len());
        for f in &self.files {
            enc.str(&f.name).str(&f.source);
        }
        // Fleet trailer, after every historical field: single-host
        // journals written before the fleet layer decode unchanged
        // (`decode` only reads the trailer when bytes remain).
        match &self.fleet {
            Some(s) => {
                enc.bool(true).u64(s.fleet_id).u32(s.n_hosts).u32(s.host_id);
            }
            None => {
                enc.bool(false);
            }
        }
        enc.finish()
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<Manifest, CheckpointError> {
        let mut dec = Decoder::new(bytes);
        let mut compilers = Vec::new();
        for _ in 0..dec.usize()? {
            let family = dec.str()?;
            let id = intern_family(&family, dec.u32()?)?;
            compilers.push(Compiler::new(id, dec.u8()?));
        }
        let budget = dec.usize()?;
        let algorithm = *ALGORITHMS
            .get(dec.u8()? as usize)
            .ok_or_else(|| CheckpointError::Foreign("algorithm tag".into()))?;
        let check_wrong_code = dec.bool()?;
        let fuel = dec.u64()?;
        let backend_id = dec.str()?;
        let backend_hash = dec.u64()?;
        let shards_per_file = dec.usize()?;
        let mut files = Vec::new();
        for _ in 0..dec.usize()? {
            files.push(TestFile {
                name: dec.str()?,
                source: dec.str()?,
            });
        }
        // Pre-fleet journals end here; the trailer is decoded only when
        // bytes remain, so both generations replay under one schema.
        let fleet = if dec.is_empty() {
            None
        } else if dec.bool()? {
            let stamp = FleetStamp {
                fleet_id: dec.u64()?,
                n_hosts: dec.u32()?,
                host_id: dec.u32()?,
            };
            if stamp.n_hosts == 0 || stamp.host_id >= stamp.n_hosts {
                return Err(CheckpointError::Foreign(format!(
                    "fleet stamp names host {} of {} hosts",
                    stamp.host_id, stamp.n_hosts
                )));
            }
            Some(stamp)
        } else {
            None
        };
        dec.expect_empty()?;
        Ok(Manifest {
            config: CampaignConfig {
                compilers,
                budget,
                algorithm,
                check_wrong_code,
                fuel,
            },
            shards_per_file,
            files,
            backend_id,
            backend_hash,
            fleet,
        })
    }

    /// Fails with a clear [`CheckpointError::Foreign`] when the journal
    /// was written under a different backend id or configuration hash
    /// than `oracle` — the "refuse, don't silently diverge" gate of
    /// every resume path (campaign and reduction).
    fn check_backend(&self, oracle: &Oracle<'_>) -> Result<(), CheckpointError> {
        let (id, hash) = (oracle.backend_id(), oracle.config_hash());
        if self.backend_id != id {
            return Err(CheckpointError::Foreign(format!(
                "journal was recorded under backend {:?}, resume was handed {:?}; \
                 resume with the matching backend (resume_campaign_with_backend)",
                self.backend_id, id
            )));
        }
        if self.backend_hash != hash {
            return Err(CheckpointError::Foreign(format!(
                "journal was recorded under backend {:?} with config hash {:#018x}, \
                 the handed backend hashes {:#018x}; its configuration differs",
                self.backend_id, self.backend_hash, hash
            )));
        }
        Ok(())
    }
}

/// Replayed per-(file, shard) state: the committed high-water mark and
/// the accumulated partial output.
#[derive(Debug, Default)]
pub(crate) struct JobState {
    /// Variants of this shard already covered by committed checkpoints.
    pub(crate) emitted: u64,
    /// Accumulated output of those variants, in emission order.
    pub(crate) partial: ShardOutput,
    /// Whether the job finished in an earlier run.
    pub(crate) done: bool,
}

impl JobState {
    /// Whether this job carries no replayed state at all — nothing a
    /// compaction `Progress` frame would need to preserve.
    pub(crate) fn is_empty(&self) -> bool {
        self.emitted == 0
            && !self.done
            && !self.partial.file_processed
            && self.partial.variants_tested == 0
            && self.partial.variants_ub_skipped == 0
            && self.partial.candidates.is_empty()
    }
}

/// Incremental journal replay: the manifest plus the live state folded
/// from records **one frame at a time** — superseded `Progress` deltas
/// are absorbed as they stream past, so replay memory is bounded by the
/// per-job live state (high-water marks, partial outputs), never by the
/// journal's frame count.
pub(crate) struct Replay {
    pub(crate) manifest: Manifest,
    pub(crate) jobs: Vec<JobState>,
    pub(crate) campaign_done: bool,
    /// Per-finding reduction results recorded so far, keyed by finding
    /// index and carrying the finding's signature (verified on replay so
    /// a witness can never attach to a different campaign's finding);
    /// the witness is `None` when the finding proved irreducible.
    reduced: HashMap<u32, (String, Option<ReducedWitness>)>,
    /// The options the recorded reduction pass ran under (`None` until a
    /// reduction stage wrote to this journal); a resumed pass must match.
    reduction_options: Option<ReductionOptions>,
}

impl Replay {
    pub(crate) fn new(header: &[u8]) -> Result<Replay, CheckpointError> {
        let manifest = Manifest::decode(header)?;
        let job_count = manifest.files.len() * manifest.shards_per_file;
        Ok(Replay {
            manifest,
            jobs: (0..job_count).map(|_| JobState::default()).collect(),
            campaign_done: false,
            reduced: HashMap::new(),
            reduction_options: None,
        })
    }

    /// Folds one record frame into the live state.
    pub(crate) fn apply(&mut self, rec: &[u8]) -> Result<(), CheckpointError> {
        let job_count = self.jobs.len();
        let mut dec = Decoder::new(rec);
        match dec.u8()? {
            REC_PROGRESS => {
                let job = dec.u32()? as usize;
                let state = self.jobs.get_mut(job).ok_or_else(|| {
                    CheckpointError::Foreign(format!("job {job} out of {job_count}"))
                })?;
                state.emitted = dec.u64()?;
                let mut delta = ShardOutput {
                    file_processed: dec.bool()?,
                    variants_tested: dec.u64()?,
                    variants_ub_skipped: dec.u64()?,
                    ..ShardOutput::default()
                };
                for _ in 0..dec.usize()? {
                    delta.candidates.push(decode_finding(&mut dec)?);
                }
                dec.expect_empty()?;
                state.partial.absorb(delta);
            }
            REC_JOB_DONE => {
                let job = dec.u32()? as usize;
                self.jobs
                    .get_mut(job)
                    .ok_or_else(|| {
                        CheckpointError::Foreign(format!("job {job} out of {job_count}"))
                    })?
                    .done = true;
                dec.expect_empty()?;
            }
            REC_CAMPAIGN_DONE => {
                self.campaign_done = true;
                dec.expect_empty()?;
            }
            REC_REDUCED => {
                let finding = dec.u32()?;
                let signature = dec.str()?;
                let witness = if dec.bool()? {
                    Some(decode_witness(&mut dec)?)
                } else {
                    None
                };
                dec.expect_empty()?;
                self.reduced.insert(finding, (signature, witness));
            }
            REC_REDUCTION_OPTIONS => {
                let options = ReductionOptions {
                    fuel: dec.u64()?,
                    reduce: spe_reduce::ReduceConfig {
                        max_oracle_calls: dec.usize()?,
                        max_rounds: dec.usize()?,
                        canonicalize: dec.bool()?,
                    },
                };
                dec.expect_empty()?;
                self.reduction_options = Some(options);
            }
            _ => return Err(CheckpointError::Foreign("record tag".into())),
        }
        Ok(())
    }

    /// Streams every record of `iter` into the live state.
    fn drain(&mut self, iter: &mut JournalIter) -> Result<(), CheckpointError> {
        for rec in iter {
            self.apply(&rec?)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Checkpointed campaign entry points (thin wrappers over orchestrate).
// ---------------------------------------------------------------------

/// Runs a campaign writing per-(file, shard) checkpoints into a fresh
/// journal at `path` (any existing file is replaced).
///
/// The work decomposition is `files × workers` jobs, exactly as
/// [`crate::run_campaign_parallel`]; the completed report is
/// byte-identical to it (and to the serial [`crate::run_campaign`]) for
/// every worker count. The journal's manifest records the corpus,
/// configuration and decomposition, so [`resume_campaign`] needs only
/// the path.
///
/// Runs under [`FaultPolicy::default`]; degradation warnings (a journal
/// that stopped accepting appends mid-run) are printed to stderr — use
/// [`crate::orchestrate::campaign_checkpointed`] to inspect them
/// programmatically.
///
/// # Errors
///
/// Returns [`CheckpointError::Journal`] when the journal cannot be
/// **created**. Later append failures no longer abort the campaign:
/// they are retried and then degrade the run to checkpoint-less
/// completion (see [`FaultPolicy`]).
pub fn run_campaign_checkpointed(
    files: &[TestFile],
    config: &CampaignConfig,
    workers: usize,
    path: impl AsRef<Path>,
    options: &CheckpointOptions,
) -> Result<CampaignStatus, CheckpointError> {
    run_campaign_checkpointed_with_path(
        files,
        config,
        workers,
        path,
        options,
        OraclePath::default(),
    )
}

/// [`run_campaign_checkpointed`] on an explicit [`crate::OraclePath`].
/// Both paths record the same backend identity in the journal manifest,
/// so a journal written on one path resumes on the other (and the final
/// report stays byte-identical either way).
///
/// # Errors
///
/// As [`run_campaign_checkpointed`].
pub fn run_campaign_checkpointed_with_path(
    files: &[TestFile],
    config: &CampaignConfig,
    workers: usize,
    path: impl AsRef<Path>,
    options: &CheckpointOptions,
    oracle_path: OraclePath,
) -> Result<CampaignStatus, CheckpointError> {
    run_checkpointed_supervised(
        files,
        config,
        workers,
        path.as_ref(),
        options,
        oracle_path.oracle(),
        FaultPolicy::default(),
    )
    .map(warn_and_unwrap)
}

/// [`run_campaign_checkpointed`] with the oracle dispatched through
/// `backend` instead of the in-process simulator. The manifest records
/// the backend's id and configuration hash, and every resume of the
/// journal must present a matching backend
/// ([`resume_campaign_with_backend`]) or is refused.
///
/// A job whose backend reports a machinery failure
/// ([`spe_simcc::backend::BackendError`], as opposed to a compiler
/// verdict) is **quarantined**: a [`FindingKind::BackendDegraded`]
/// finding carrying the failing variant is committed, the job is marked
/// done, and the campaign continues — a flaky backend degrades coverage
/// visibly instead of hanging or poisoning the run. A job that
/// **panics** is quarantined the same way as a
/// [`FindingKind::JobPanicked`] finding (`DESIGN.md` §11).
///
/// # Errors
///
/// As [`run_campaign_checkpointed`].
pub fn run_campaign_checkpointed_with_backend(
    files: &[TestFile],
    config: &CampaignConfig,
    workers: usize,
    path: impl AsRef<Path>,
    options: &CheckpointOptions,
    backend: &dyn CompilerBackend,
) -> Result<CampaignStatus, CheckpointError> {
    run_checkpointed_supervised(
        files,
        config,
        workers,
        path.as_ref(),
        options,
        Oracle::Backend(backend),
        FaultPolicy::default(),
    )
    .map(warn_and_unwrap)
}

/// Resumes the campaign whose journal lives at `path`.
///
/// The journal's valid prefix is replayed **streamingly** (a torn tail
/// frame from the crash is truncated, and memory stays bounded by the
/// live per-job state), finished jobs keep their recorded outputs,
/// and unfinished jobs are re-dealt into the work-stealing queue with
/// their shards re-seeded at the committed emission-index high-water
/// marks via exact unranking — work before a mark is never re-enumerated,
/// work after it is recomputed (identically, by determinism of the
/// enumeration). `workers` only sizes the thread pool; the job
/// decomposition is fixed by the manifest, and the completed report is
/// byte-identical to an uninterrupted run regardless of either. A resumed
/// run may itself be interrupted ([`CheckpointOptions::stop_after`]) and
/// resumed again, any number of times.
///
/// # Errors
///
/// Returns [`CheckpointError::Journal`] when the file is not a
/// resumable journal (or another writer holds it),
/// [`CheckpointError::Decode`] / [`CheckpointError::Foreign`] when its
/// records do not decode against this build's schema and registries —
/// including a journal recorded under a **different oracle backend**
/// than the in-process simulator (use [`resume_campaign_with_backend`]
/// for those).
pub fn resume_campaign(
    path: impl AsRef<Path>,
    workers: usize,
    options: &CheckpointOptions,
) -> Result<CampaignStatus, CheckpointError> {
    resume_campaign_with_path(path, workers, options, OraclePath::default())
}

/// [`resume_campaign`] on an explicit [`crate::OraclePath`]. A resume
/// may use a different path than the run that wrote the journal — the
/// two strategies share one backend identity and produce identical
/// observations, so the replayed prefix and recomputed suffix always
/// agree (the identity suite alternates paths across kill points to pin
/// this).
///
/// # Errors
///
/// As [`resume_campaign`].
pub fn resume_campaign_with_path(
    path: impl AsRef<Path>,
    workers: usize,
    options: &CheckpointOptions,
    oracle_path: OraclePath,
) -> Result<CampaignStatus, CheckpointError> {
    resume_supervised(
        path.as_ref(),
        workers,
        options,
        oracle_path.oracle(),
        FaultPolicy::default(),
    )
    .map(warn_and_unwrap)
}

/// [`resume_campaign`] for journals written by
/// [`run_campaign_checkpointed_with_backend`]: `backend` must match the
/// manifest's recorded backend id *and* configuration hash, otherwise
/// the resume is refused with [`CheckpointError::Foreign`] — replayed
/// frames mixed with a different oracle's recomputed suffix would match
/// no uninterrupted run.
///
/// # Errors
///
/// As [`resume_campaign`], plus the backend-mismatch refusal above.
pub fn resume_campaign_with_backend(
    path: impl AsRef<Path>,
    backend: &dyn CompilerBackend,
    workers: usize,
    options: &CheckpointOptions,
) -> Result<CampaignStatus, CheckpointError> {
    resume_supervised(
        path.as_ref(),
        workers,
        options,
        Oracle::Backend(backend),
        FaultPolicy::default(),
    )
    .map(warn_and_unwrap)
}

/// Prints absorbed-fault warnings to stderr and unwraps the status —
/// the compatibility shim between the supervised [`Outcome`] and the
/// historical `CampaignStatus`-returning API.
fn warn_and_unwrap(outcome: Outcome) -> CampaignStatus {
    for w in &outcome.warnings {
        eprintln!("spe-harness: warning: {w}");
    }
    outcome.status
}

/// Builds the manifest and fresh journal for a checkpointed run, then
/// hands everything to the supervised orchestrator.
pub(crate) fn run_checkpointed_supervised(
    files: &[TestFile],
    config: &CampaignConfig,
    workers: usize,
    path: &Path,
    options: &CheckpointOptions,
    oracle: Oracle<'_>,
    policy: FaultPolicy,
) -> Result<Outcome, CheckpointError> {
    let workers = workers.max(1);
    let manifest = Manifest {
        config: config.clone(),
        shards_per_file: workers,
        files: files.to_vec(),
        backend_id: oracle.backend_id(),
        backend_hash: oracle.config_hash(),
        fleet: None,
    };
    let journal = Journal::create(path, &manifest.encode())?;
    let jobs = (0..files.len() * workers).map(|_| JobState::default()).collect();
    Ok(orchestrate::run(Spec {
        files,
        config,
        shards_per_file: workers,
        jobs,
        workers,
        every: options.every,
        stop_after: options.stop_after,
        journal: Some(journal),
        oracle,
        policy,
    }))
}

/// Streams the journal into live state (lock → replay → truncate torn
/// tail → append position, one pass over the file), then hands the
/// unfinished jobs to the supervised orchestrator.
pub(crate) fn resume_supervised(
    path: &Path,
    workers: usize,
    options: &CheckpointOptions,
    oracle: Oracle<'_>,
    policy: FaultPolicy,
) -> Result<Outcome, CheckpointError> {
    let telemetry = spe_telemetry::global();
    let replay_timer = spe_telemetry::Timer::start(&*telemetry);
    let mut iter = JournalIter::open_locked(path)?;
    let mut replay = Replay::new(iter.header())?;
    replay.drain(&mut iter)?;
    if telemetry.enabled() {
        telemetry.span(
            spe_telemetry::names::ORCH_REPLAY,
            &format!("jobs={}", replay.jobs.len()),
            replay_timer.stop_nanos(),
        );
    }
    replay.manifest.check_backend(&oracle)?;
    let Replay {
        manifest,
        mut jobs,
        campaign_done,
        ..
    } = replay;
    if let Some(stamp) = manifest.fleet {
        // A host journal records frames only for its own slice; jobs
        // outside it are re-marked done (empty partials) so the pool
        // never deals them — the same pre-marking `fleet::run_host`
        // applied on the first run. Replayed state on a foreign job
        // means the journal and its stamp disagree: refuse it.
        crate::fleet::mark_foreign_jobs_done(&mut jobs, stamp)?;
    }
    if campaign_done {
        // Nothing to recompute: fold the recorded outputs directly.
        drop(iter);
        let outputs = jobs.into_iter().map(|j| j.partial).collect();
        return Ok(Outcome {
            status: CampaignStatus::Complete(merge_outputs(outputs)),
            warnings: Vec::new(),
        });
    }
    // The scan's writer lock carries straight into the appender: no
    // other resume can slip a frame in between replay and append.
    let journal = iter.into_appender()?;
    Ok(orchestrate::run(Spec {
        files: &manifest.files,
        config: &manifest.config,
        shards_per_file: manifest.shards_per_file,
        jobs,
        workers: workers.max(1),
        every: options.every,
        stop_after: options.stop_after,
        journal: Some(journal),
        oracle,
        policy,
    }))
}

// ---------------------------------------------------------------------
// Journal compaction.
// ---------------------------------------------------------------------

/// What [`compact_journal`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Record frames in the journal's valid prefix before compaction.
    pub frames_before: u64,
    /// Record frames after (one `Progress` per job with state, plus the
    /// done/reduction markers).
    pub frames_after: u64,
    /// Bytes of the valid prefix before compaction.
    pub bytes_before: u64,
    /// Bytes of the compacted journal.
    pub bytes_after: u64,
}

/// Compacts the journal at `path`: folds every superseded `Progress`
/// frame into **one frame per job** (plus the done markers and the
/// reduction records), so a journal that grew by one frame per
/// checkpoint cadence interval shrinks to the size of its live state.
/// Resuming from the compacted journal is **byte-identical** to
/// resuming from the original — replay of either produces the same
/// per-job high-water marks and partial outputs.
///
/// Crash safety (`DESIGN.md` §11): the compacted journal is written to
/// a sibling `*.compact-tmp` file, fsync'd, and atomically renamed over
/// the original ([`spe_persist::journal::promote`]). A kill at *any*
/// point leaves either the untouched original (plus a stray tmp file
/// the next compaction overwrites) or the complete compacted journal —
/// never a mixture. The writer lock is held across scan, rewrite, and
/// rename, so no concurrent resume can append between them.
///
/// # Errors
///
/// Returns [`CheckpointError::Journal`] when the journal (or its tmp
/// sibling) cannot be read or written, [`CheckpointError::Decode`] /
/// [`CheckpointError::Foreign`] when its records do not decode — a
/// journal this build cannot replay must not be rewritten by it.
pub fn compact_journal(path: impl AsRef<Path>) -> Result<CompactStats, CheckpointError> {
    compact_inner(path.as_ref(), true)
}

/// [`compact_journal`] that stops **just before the atomic rename** —
/// the fault-injection suites use it as a deterministic
/// "killed during compaction" state: the original journal is intact and
/// still resumable, the completed tmp file is stray.
#[doc(hidden)]
pub fn compact_journal_abandoned(path: impl AsRef<Path>) -> Result<CompactStats, CheckpointError> {
    compact_inner(path.as_ref(), false)
}

fn compact_inner(path: &Path, promote: bool) -> Result<CompactStats, CheckpointError> {
    let telemetry = spe_telemetry::global();
    let timer = spe_telemetry::Timer::start(&*telemetry);
    let result = compact_scan_rewrite(path, promote);
    if telemetry.enabled() {
        let detail = match &result {
            Ok(s) => format!(
                "frames {}->{} bytes {}->{}",
                s.frames_before, s.frames_after, s.bytes_before, s.bytes_after
            ),
            Err(_) => "failed".to_owned(),
        };
        telemetry.span(
            spe_telemetry::names::JOURNAL_COMPACT,
            &detail,
            timer.stop_nanos(),
        );
    }
    result
}

fn compact_scan_rewrite(path: &Path, promote: bool) -> Result<CompactStats, CheckpointError> {
    let mut iter = JournalIter::open_locked(path)?;
    let header = iter.header().to_vec();
    let mut replay = Replay::new(&header)?;
    let mut frames_before = 0u64;
    for rec in &mut iter {
        replay.apply(&rec?)?;
        frames_before += 1;
    }
    let bytes_before = iter.valid_len();
    let tmp = match path.file_name() {
        Some(name) => {
            let mut t = name.to_os_string();
            t.push(".compact-tmp");
            path.with_file_name(t)
        }
        None => {
            return Err(CheckpointError::Foreign(
                "journal path has no file name to derive the compaction tmp from".into(),
            ))
        }
    };
    // The header bytes are copied verbatim — compaction must never
    // re-encode the manifest, or a build with a drifted encoder could
    // silently rewrite what the campaign pinned.
    let mut out = Journal::create(&tmp, &header)?;
    let mut frames_after = 0u64;
    for (i, job) in replay.jobs.iter().enumerate() {
        if !job.is_empty() {
            out.append(&encode_progress(i, job.emitted, &job.partial))?;
            frames_after += 1;
        }
        if job.done {
            out.append(&encode_job_done(i))?;
            frames_after += 1;
        }
    }
    if replay.campaign_done {
        out.append(&encode_campaign_done())?;
        frames_after += 1;
    }
    if let Some(options) = &replay.reduction_options {
        out.append(&encode_reduction_options(options))?;
        frames_after += 1;
    }
    // Reduced records re-land in finding order (the HashMap dropped the
    // original append order; any order replays identically, a fixed one
    // keeps compaction deterministic).
    let mut reduced: Vec<_> = replay.reduced.iter().collect();
    reduced.sort_by_key(|&(&idx, _)| idx);
    for (&idx, (signature, witness)) in reduced {
        out.append(&encode_reduced(idx as usize, signature, witness))?;
        frames_after += 1;
    }
    drop(out); // every append was fsync'd; release the tmp writer lock
    let bytes_after = std::fs::metadata(&tmp)
        .map_err(|e| {
            CheckpointError::Journal(JournalError::Io {
                op: "stat",
                path: tmp.clone(),
                source: e,
            })
        })?
        .len();
    if promote {
        spe_persist::journal::promote(&tmp, path)?;
    }
    // `iter` still holds the original journal's writer lock; dropped
    // only now, after the rename (or abandonment) is complete.
    drop(iter);
    Ok(CompactStats {
        frames_before,
        frames_after,
        bytes_before,
        bytes_after,
    })
}

// ---------------------------------------------------------------------
// Checkpointed reduction stage.
// ---------------------------------------------------------------------

/// [`crate::reduction::reduce_findings`] with per-finding checkpoints
/// appended to the campaign's journal at `path`.
///
/// Witnesses recorded by an earlier (killed) reduction pass are replayed
/// instead of recomputed; only missing findings fan out over the worker
/// pool, each committing a `Reduced` frame as it lands. Since every
/// witness is a pure function of its finding, the attached report —
/// including the fingerprint/trigger dedup links — is byte-identical to
/// an uninterrupted [`crate::reduction::reduce_findings`] at any worker
/// count and any kill/resume history. A reducer that panics on one
/// finding records it as irreducible with a stderr warning instead of
/// killing the fan-out (`DESIGN.md` §11).
///
/// # Errors
///
/// Returns the same error classes as [`resume_campaign`]; the report is
/// left unmodified on error.
pub fn reduce_findings_checkpointed(
    report: &mut CampaignReport,
    options: &ReductionOptions,
    workers: usize,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    reduce_findings_checkpointed_oracle(report, options, workers, path.as_ref(), Oracle::Direct)
}

/// [`reduce_findings_checkpointed`] against a pluggable backend: the
/// journal's manifest must have been recorded under the same backend id
/// and configuration hash as `backend`, mirroring
/// [`resume_campaign_with_backend`]'s refusal — reduction replays the
/// oracle per candidate shrink, so a different backend would attach
/// witnesses no uninterrupted run could produce.
///
/// # Errors
///
/// As [`reduce_findings_checkpointed`], plus the backend-mismatch
/// refusal above.
pub fn reduce_findings_checkpointed_with_backend(
    report: &mut CampaignReport,
    options: &ReductionOptions,
    workers: usize,
    path: impl AsRef<Path>,
    backend: &dyn CompilerBackend,
) -> Result<(), CheckpointError> {
    reduce_findings_checkpointed_oracle(
        report,
        options,
        workers,
        path.as_ref(),
        Oracle::Backend(backend),
    )
}

fn reduce_findings_checkpointed_oracle(
    report: &mut CampaignReport,
    options: &ReductionOptions,
    workers: usize,
    path: &Path,
    oracle: Oracle<'_>,
) -> Result<(), CheckpointError> {
    let mut iter = JournalIter::open_locked(path)?;
    let mut replayed = Replay::new(iter.header())?;
    replayed.drain(&mut iter)?;
    replayed.manifest.check_backend(&oracle)?;
    // Replayed witnesses were computed under the recorded options; a
    // resumed pass under different options would attach a mixture that
    // matches *no* uninterrupted run — reject it, mirroring how the
    // campaign manifest pins the `CampaignConfig`.
    if let Some(recorded) = &replayed.reduction_options {
        if recorded != options {
            return Err(CheckpointError::Foreign(format!(
                "journal reduction ran under {recorded:?}, resume passed {options:?}"
            )));
        }
    }
    let jobs = report.findings.len();
    // Replayed witnesses must belong to *this* report's findings: every
    // record's index and recorded signature are checked, so a journal
    // from a different campaign (or a differently filtered report) is
    // rejected instead of silently mis-attaching witnesses.
    let mut slots: Vec<Option<Option<ReducedWitness>>> = vec![None; jobs];
    for (&idx, (signature, witness)) in &replayed.reduced {
        let finding = report.findings.get(idx as usize).ok_or_else(|| {
            CheckpointError::Foreign(format!("reduced finding {idx} out of {jobs}"))
        })?;
        if finding.signature != *signature {
            return Err(CheckpointError::Foreign(format!(
                "reduced record {idx} signed {signature:?}, report has {:?}",
                finding.signature
            )));
        }
        slots[idx as usize] = Some(witness.clone());
    }
    let missing: Vec<usize> = (0..jobs).filter(|&i| slots[i].is_none()).collect();
    if !missing.is_empty() {
        // The scan's lock carries into the appender, as on resume.
        let mut journal = iter.into_appender()?;
        if replayed.reduction_options.is_none() {
            journal.append(&encode_reduction_options(options))?;
        }
        let journal = Mutex::new(journal);
        let failure: Mutex<Option<CheckpointError>> = Mutex::new(None);
        let stop = AtomicBool::new(false);
        let fresh: Mutex<Vec<(usize, Option<ReducedWitness>)>> = Mutex::new(Vec::new());
        let workers = workers.clamp(1, missing.len());
        let queue = WorkQueue::new(missing, workers);
        let findings = &report.findings;
        std::thread::scope(|scope| {
            for w in 0..workers {
                let queue = &queue;
                let journal = &journal;
                let failure = &failure;
                let stop = &stop;
                let fresh = &fresh;
                scope.spawn(move || {
                    while let Some(i) = queue.pop(w) {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        let witness = reduce_one_isolated(&findings[i], options, oracle);
                        let frame = encode_reduced(i, &findings[i].signature, &witness);
                        if let Err(e) = journal.lock().expect("poisoned").append(&frame) {
                            let mut slot = failure.lock().expect("poisoned");
                            if slot.is_none() {
                                *slot = Some(e.into());
                            }
                            stop.store(true, Ordering::Relaxed);
                            return;
                        }
                        fresh.lock().expect("poisoned").push((i, witness));
                    }
                });
            }
        });
        if let Some(e) = failure.into_inner().expect("poisoned") {
            return Err(e);
        }
        for (i, witness) in fresh.into_inner().expect("poisoned") {
            slots[i] = Some(witness);
        }
    }
    let witnesses = slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.unwrap_or_else(|| {
                // Unreachable by construction (every missing slot was
                // either filled or the pool returned Err) — but one
                // unaccounted finding must degrade to "unreduced", not
                // kill the pipeline.
                eprintln!(
                    "spe-harness: warning: finding {i} was neither replayed nor reduced; \
                     leaving it without a witness"
                );
                None
            })
        })
        .collect();
    attach_and_dedup(report, witnesses);
    Ok(())
}
