//! Checkpointable, resumable campaigns over an `spe-persist` journal.
//!
//! [`crate::run_campaign_parallel`] is a one-shot in-memory run: a crash
//! or preemption loses everything, which is untenable for the paper's
//! multi-day enumeration budgets (Table 2). This module makes every
//! campaign **checkpointable and resumable with byte-identical final
//! reports** (`DESIGN.md` §9):
//!
//! * [`run_campaign_checkpointed`] runs the familiar work-stealing
//!   campaign, but each worker periodically appends its (file, shard)
//!   progress — the emission-index high-water mark plus the candidate
//!   [`Finding`]s and counters accrued since the last checkpoint — as a
//!   checksummed, fsync'd record frame in an [`spe_persist::Journal`];
//! * [`resume_campaign`] rebuilds the per-job state by replaying the
//!   journal's valid prefix (a torn tail frame from the crash is
//!   detected and dropped), re-deals only unfinished jobs into the
//!   work-stealing queue, and **re-seeds each shard at its recorded
//!   high-water mark** through
//!   [`spe_core::ShardedEnumerator::enumerate_shard_resumed_prepared`] —
//!   the exact-unranking `skip_to` machinery, so no variant before the
//!   mark is ever re-enumerated;
//! * [`reduce_findings_checkpointed`] extends the same journal through
//!   the post-campaign reduction stage, recording one witness per
//!   finding so a resumed pipeline re-reduces only what was lost.
//!
//! **Resume determinism.** Enumeration order is globally fixed
//! (file-major, emission-index order), every per-variant computation is
//! a pure function of `(file, variant, config)`, and a `Progress` record
//! commits a high-water mark *together with* exactly the candidates of
//! the variants it covers — one atomic frame. Replayed prefix +
//! recomputed suffix therefore reproduces precisely the uninterrupted
//! per-job outputs, and [`crate::run_campaign`]'s deterministic
//! (file, shard)-ordered merge does the rest: the final report is
//! byte-identical to a never-interrupted run, at any worker count, no
//! matter where (or how often) the campaign was killed. `DESIGN.md` §9
//! spells the argument out.

use crate::steal::WorkQueue;
use crate::{
    degraded_finding, merge_outputs, prepare_file, CampaignConfig, CampaignReport, Finding,
    FindingKind, Oracle, ShardOutput,
};
use crate::reduction::{attach_and_dedup, reduce_one_oracle, ReducedWitness, ReductionOptions};
use spe_simcc::backend::CompilerBackend;
use spe_core::{Algorithm, Skeleton, VariantSpace};
use spe_corpus::TestFile;
use spe_persist::{DecodeError, Decoder, Encoder, Journal, JournalError, JournalReader};
use spe_simcc::{bugs, Compiler, CompilerId};
use std::collections::HashMap;
use std::fmt;
use std::ops::ControlFlow;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Errors of checkpointed runs and resumes.
#[derive(Debug)]
pub enum CheckpointError {
    /// The journal could not be created, appended, or read.
    Journal(JournalError),
    /// A record or the manifest failed to decode (foreign or damaged
    /// journal whose frames are nonetheless checksum-valid).
    Decode(DecodeError),
    /// The journal is internally consistent but names entities this
    /// build does not know (compiler family, bug id, algorithm tag) or
    /// violates the campaign schema (job index out of range).
    Foreign(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Journal(e) => write!(f, "{e}"),
            CheckpointError::Decode(e) => write!(f, "journal record: {e}"),
            CheckpointError::Foreign(what) => write!(f, "foreign journal: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<JournalError> for CheckpointError {
    fn from(e: JournalError) -> CheckpointError {
        CheckpointError::Journal(e)
    }
}

impl From<DecodeError> for CheckpointError {
    fn from(e: DecodeError) -> CheckpointError {
        CheckpointError::Decode(e)
    }
}

/// Options of a checkpointed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointOptions {
    /// Variants a worker processes on one shard between `Progress`
    /// records. Smaller = less recomputation after a crash, more fsync
    /// traffic; `DESIGN.md` §9 discusses the cadence trade-off.
    pub every: u64,
    /// Simulated preemption for tests and demos: once this many variants
    /// have been processed across all workers *in this run*, workers
    /// abort without flushing their in-memory tail — exactly what a
    /// `SIGKILL` between checkpoints leaves behind. `None` runs to
    /// completion.
    pub stop_after: Option<u64>,
}

impl Default for CheckpointOptions {
    fn default() -> Self {
        CheckpointOptions {
            every: 512,
            stop_after: None,
        }
    }
}

/// Outcome of a checkpointed run: either a finished report or an
/// interruption whose state lives in the journal.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignStatus {
    /// The campaign ran to completion; the report is byte-identical to
    /// the equivalent uninterrupted [`crate::run_campaign_parallel`].
    Complete(CampaignReport),
    /// [`CheckpointOptions::stop_after`] fired mid-campaign. Resume from
    /// the journal with [`resume_campaign`].
    Interrupted,
}

impl CampaignStatus {
    /// The completed report, `None` when interrupted.
    pub fn into_report(self) -> Option<CampaignReport> {
        match self {
            CampaignStatus::Complete(r) => Some(r),
            CampaignStatus::Interrupted => None,
        }
    }

    /// Whether the run was cut short.
    pub fn is_interrupted(&self) -> bool {
        matches!(self, CampaignStatus::Interrupted)
    }
}

// ---------------------------------------------------------------------
// Record schema (payloads inside `spe-persist` frames; DESIGN.md §9).
// ---------------------------------------------------------------------

const REC_PROGRESS: u8 = 1;
const REC_JOB_DONE: u8 = 2;
const REC_CAMPAIGN_DONE: u8 = 3;
const REC_REDUCED: u8 = 4;
const REC_REDUCTION_OPTIONS: u8 = 5;

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::Paper,
    Algorithm::Canonical,
    Algorithm::Orbit,
    Algorithm::Naive,
];

fn algorithm_tag(a: Algorithm) -> u8 {
    ALGORITHMS.iter().position(|&x| x == a).expect("known") as u8
}

/// Re-interns a journal bug id: against the seeded-defect registry when
/// it names a known defect (the in-memory type is `&'static str`),
/// otherwise through the process-wide interner — external backends
/// record triage classes (crash-signature lines, signal names) as bug
/// ids, which no registry can enumerate up front.
fn intern_bug_id(id: &str) -> Result<&'static str, CheckpointError> {
    static IDS: OnceLock<Vec<&'static str>> = OnceLock::new();
    Ok(IDS
        .get_or_init(|| bugs::registry().iter().map(|b| b.id).collect())
        .iter()
        .copied()
        .find(|&known| known == id)
        .unwrap_or_else(|| spe_simcc::backend::intern(id)))
}

/// As [`intern_bug_id`]: the built-in simulator families keep their
/// canonical statics, external families go through the interner.
fn intern_family(family: &str, version: u32) -> Result<CompilerId, CheckpointError> {
    match family {
        "gcc-sim" => Ok(CompilerId::gcc(version)),
        "clang-sim" => Ok(CompilerId::clang(version)),
        other => Ok(CompilerId {
            family: spe_simcc::backend::intern(other),
            version,
        }),
    }
}

fn encode_finding(enc: &mut Encoder, f: &Finding) {
    enc.u8(match f.kind {
        FindingKind::Crash => 0,
        FindingKind::WrongCode => 1,
        FindingKind::Performance => 2,
        FindingKind::BackendDegraded => 3,
    });
    enc.str(f.compiler.family).u32(f.compiler.version).u8(f.opt);
    enc.str(&f.signature).opt_str(f.bug_id);
    enc.str(&f.file).str(&f.reproducer);
}

fn decode_finding(dec: &mut Decoder) -> Result<Finding, CheckpointError> {
    let kind = match dec.u8()? {
        0 => FindingKind::Crash,
        1 => FindingKind::WrongCode,
        2 => FindingKind::Performance,
        3 => FindingKind::BackendDegraded,
        _ => return Err(CheckpointError::Foreign("finding kind tag".into())),
    };
    let family = dec.str()?;
    let compiler = intern_family(&family, dec.u32()?)?;
    let opt = dec.u8()?;
    let signature = dec.str()?;
    let bug_id = match dec.opt_str()? {
        Some(id) => Some(intern_bug_id(&id)?),
        None => None,
    };
    Ok(Finding {
        kind,
        compiler,
        opt,
        signature,
        bug_id,
        file: dec.str()?,
        reproducer: dec.str()?,
        // Candidates are checkpointed pre-merge: dedup links and reduced
        // witnesses are recomputed deterministically downstream.
        duplicate_of: None,
        reduced: None,
        fingerprint_duplicate_of: None,
    })
}

/// Flat encoding of the full [`ReductionOptions`], pinned in the journal
/// before the first `Reduced` record: witnesses depend on the oracle
/// fuel and the reducer limits, so a resumed pass must run under the
/// options that produced the replayed witnesses or the mixed result
/// would match *no* uninterrupted run.
fn encode_reduction_options(options: &ReductionOptions) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.u8(REC_REDUCTION_OPTIONS)
        .u64(options.fuel)
        .usize(options.reduce.max_oracle_calls)
        .usize(options.reduce.max_rounds)
        .bool(options.reduce.canonicalize);
    enc.finish()
}

fn encode_witness(enc: &mut Encoder, w: &ReducedWitness) {
    enc.str(&w.source)
        .str(&w.fingerprint)
        .str(&w.trigger)
        .usize(w.original_bytes)
        .usize(w.reduced_bytes)
        .usize(w.oracle_calls);
}

fn decode_witness(dec: &mut Decoder) -> Result<ReducedWitness, CheckpointError> {
    Ok(ReducedWitness {
        source: dec.str()?,
        fingerprint: dec.str()?,
        trigger: dec.str()?,
        original_bytes: dec.usize()?,
        reduced_bytes: dec.usize()?,
        oracle_calls: dec.usize()?,
    })
}

/// The journal header: everything needed to resume with **no inputs
/// besides the journal path and the oracle backend** — the full corpus,
/// the campaign configuration, the job decomposition, and the identity
/// (id + configuration hash) of the backend that produced the recorded
/// observations. Resume compares that identity against the backend it
/// is handed and **refuses a mismatch**: replayed frames mixed with a
/// different oracle's recomputed suffix would match *no* uninterrupted
/// run.
struct Manifest {
    config: CampaignConfig,
    shards_per_file: usize,
    files: Vec<TestFile>,
    /// [`spe_simcc::backend::CompilerBackend::id`] of the recording oracle.
    backend_id: String,
    /// [`spe_simcc::backend::CompilerBackend::config_hash`] of the same.
    backend_hash: u64,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.usize(self.config.compilers.len());
        for cc in &self.config.compilers {
            enc.str(cc.id().family).u32(cc.id().version).u8(cc.opt());
        }
        enc.usize(self.config.budget)
            .u8(algorithm_tag(self.config.algorithm))
            .bool(self.config.check_wrong_code)
            .u64(self.config.fuel)
            .str(&self.backend_id)
            .u64(self.backend_hash)
            .usize(self.shards_per_file)
            .usize(self.files.len());
        for f in &self.files {
            enc.str(&f.name).str(&f.source);
        }
        enc.finish()
    }

    fn decode(bytes: &[u8]) -> Result<Manifest, CheckpointError> {
        let mut dec = Decoder::new(bytes);
        let mut compilers = Vec::new();
        for _ in 0..dec.usize()? {
            let family = dec.str()?;
            let id = intern_family(&family, dec.u32()?)?;
            compilers.push(Compiler::new(id, dec.u8()?));
        }
        let budget = dec.usize()?;
        let algorithm = *ALGORITHMS
            .get(dec.u8()? as usize)
            .ok_or_else(|| CheckpointError::Foreign("algorithm tag".into()))?;
        let check_wrong_code = dec.bool()?;
        let fuel = dec.u64()?;
        let backend_id = dec.str()?;
        let backend_hash = dec.u64()?;
        let shards_per_file = dec.usize()?;
        let mut files = Vec::new();
        for _ in 0..dec.usize()? {
            files.push(TestFile {
                name: dec.str()?,
                source: dec.str()?,
            });
        }
        dec.expect_empty()?;
        Ok(Manifest {
            config: CampaignConfig {
                compilers,
                budget,
                algorithm,
                check_wrong_code,
                fuel,
            },
            shards_per_file,
            files,
            backend_id,
            backend_hash,
        })
    }

    /// Fails with a clear [`CheckpointError::Foreign`] when the journal
    /// was written under a different backend id or configuration hash
    /// than `oracle` — the "refuse, don't silently diverge" gate of
    /// every resume path (campaign and reduction).
    fn check_backend(&self, oracle: &Oracle<'_>) -> Result<(), CheckpointError> {
        let (id, hash) = (oracle.backend_id(), oracle.config_hash());
        if self.backend_id != id {
            return Err(CheckpointError::Foreign(format!(
                "journal was recorded under backend {:?}, resume was handed {:?}; \
                 resume with the matching backend (resume_campaign_with_backend)",
                self.backend_id, id
            )));
        }
        if self.backend_hash != hash {
            return Err(CheckpointError::Foreign(format!(
                "journal was recorded under backend {:?} with config hash {:#018x}, \
                 the handed backend hashes {:#018x}; its configuration differs",
                self.backend_id, self.backend_hash, hash
            )));
        }
        Ok(())
    }
}

/// Replayed per-(file, shard) state: the committed high-water mark and
/// the accumulated partial output.
#[derive(Debug, Default)]
struct JobState {
    /// Variants of this shard already covered by committed checkpoints.
    emitted: u64,
    /// Accumulated output of those variants, in emission order.
    partial: ShardOutput,
    /// Whether the job finished in an earlier run.
    done: bool,
}

/// Everything replayed from a journal.
struct Replayed {
    manifest: Manifest,
    jobs: Vec<JobState>,
    campaign_done: bool,
    /// Per-finding reduction results recorded so far, keyed by finding
    /// index and carrying the finding's signature (verified on replay so
    /// a witness can never attach to a different campaign's finding);
    /// the witness is `None` when the finding proved irreducible.
    reduced: HashMap<u32, (String, Option<ReducedWitness>)>,
    /// The options the recorded reduction pass ran under (`None` until a
    /// reduction stage wrote to this journal); a resumed pass must match.
    reduction_options: Option<ReductionOptions>,
}

fn replay(header: &[u8], records: &[Vec<u8>]) -> Result<Replayed, CheckpointError> {
    let manifest = Manifest::decode(header)?;
    let job_count = manifest.files.len() * manifest.shards_per_file;
    let mut jobs: Vec<JobState> = (0..job_count).map(|_| JobState::default()).collect();
    let mut campaign_done = false;
    let mut reduced = HashMap::new();
    let mut reduction_options = None;
    for rec in records {
        let mut dec = Decoder::new(rec);
        match dec.u8()? {
            REC_PROGRESS => {
                let job = dec.u32()? as usize;
                let state = jobs.get_mut(job).ok_or_else(|| {
                    CheckpointError::Foreign(format!("job {job} out of {job_count}"))
                })?;
                state.emitted = dec.u64()?;
                let mut delta = ShardOutput {
                    file_processed: dec.bool()?,
                    variants_tested: dec.u64()?,
                    variants_ub_skipped: dec.u64()?,
                    ..ShardOutput::default()
                };
                for _ in 0..dec.usize()? {
                    delta.candidates.push(decode_finding(&mut dec)?);
                }
                dec.expect_empty()?;
                state.partial.absorb(delta);
            }
            REC_JOB_DONE => {
                let job = dec.u32()? as usize;
                jobs.get_mut(job)
                    .ok_or_else(|| {
                        CheckpointError::Foreign(format!("job {job} out of {job_count}"))
                    })?
                    .done = true;
                dec.expect_empty()?;
            }
            REC_CAMPAIGN_DONE => {
                campaign_done = true;
                dec.expect_empty()?;
            }
            REC_REDUCED => {
                let finding = dec.u32()?;
                let signature = dec.str()?;
                let witness = if dec.bool()? {
                    Some(decode_witness(&mut dec)?)
                } else {
                    None
                };
                dec.expect_empty()?;
                reduced.insert(finding, (signature, witness));
            }
            REC_REDUCTION_OPTIONS => {
                let options = ReductionOptions {
                    fuel: dec.u64()?,
                    reduce: spe_reduce::ReduceConfig {
                        max_oracle_calls: dec.usize()?,
                        max_rounds: dec.usize()?,
                        canonicalize: dec.bool()?,
                    },
                };
                dec.expect_empty()?;
                reduction_options = Some(options);
            }
            _ => return Err(CheckpointError::Foreign("record tag".into())),
        }
    }
    Ok(Replayed {
        manifest,
        jobs,
        campaign_done,
        reduced,
        reduction_options,
    })
}

// ---------------------------------------------------------------------
// The checkpointed campaign driver.
// ---------------------------------------------------------------------

/// Runs a campaign writing per-(file, shard) checkpoints into a fresh
/// journal at `path` (any existing file is replaced).
///
/// The work decomposition is `files × workers` jobs, exactly as
/// [`crate::run_campaign_parallel`]; the completed report is
/// byte-identical to it (and to the serial [`crate::run_campaign`]) for
/// every worker count. The journal's manifest records the corpus,
/// configuration and decomposition, so [`resume_campaign`] needs only
/// the path.
///
/// # Errors
///
/// Returns [`CheckpointError::Journal`] when the journal cannot be
/// written (the campaign is aborted at the first failed append — no
/// checkpoint is ever half-committed).
pub fn run_campaign_checkpointed(
    files: &[TestFile],
    config: &CampaignConfig,
    workers: usize,
    path: impl AsRef<Path>,
    options: &CheckpointOptions,
) -> Result<CampaignStatus, CheckpointError> {
    run_campaign_checkpointed_oracle(files, config, workers, path, options, Oracle::Direct)
}

/// [`run_campaign_checkpointed`] with the oracle dispatched through
/// `backend` instead of the in-process simulator. The manifest records
/// the backend's id and configuration hash, and every resume of the
/// journal must present a matching backend
/// ([`resume_campaign_with_backend`]) or is refused.
///
/// A job whose backend reports a machinery failure
/// ([`spe_simcc::backend::BackendError`], as opposed to a compiler
/// verdict) is **quarantined**: a [`FindingKind::BackendDegraded`]
/// finding carrying the failing variant is committed, the job is marked
/// done, and the campaign continues — a flaky backend degrades coverage
/// visibly instead of hanging or poisoning the run.
///
/// # Errors
///
/// As [`run_campaign_checkpointed`].
pub fn run_campaign_checkpointed_with_backend(
    files: &[TestFile],
    config: &CampaignConfig,
    workers: usize,
    path: impl AsRef<Path>,
    options: &CheckpointOptions,
    backend: &dyn CompilerBackend,
) -> Result<CampaignStatus, CheckpointError> {
    run_campaign_checkpointed_oracle(files, config, workers, path, options, Oracle::Backend(backend))
}

fn run_campaign_checkpointed_oracle(
    files: &[TestFile],
    config: &CampaignConfig,
    workers: usize,
    path: impl AsRef<Path>,
    options: &CheckpointOptions,
    oracle: Oracle<'_>,
) -> Result<CampaignStatus, CheckpointError> {
    let workers = workers.max(1);
    let manifest = Manifest {
        config: config.clone(),
        shards_per_file: workers,
        files: files.to_vec(),
        backend_id: oracle.backend_id(),
        backend_hash: oracle.config_hash(),
    };
    let journal = Journal::create(path, &manifest.encode())?;
    let jobs = (0..manifest.files.len() * manifest.shards_per_file)
        .map(|_| JobState::default())
        .collect();
    drive(&manifest, jobs, journal, workers, options, oracle)
}

/// Resumes the campaign whose journal lives at `path`.
///
/// The journal's valid prefix is replayed (a torn tail frame from the
/// crash is truncated), finished jobs keep their recorded outputs,
/// and unfinished jobs are re-dealt into the work-stealing queue with
/// their shards re-seeded at the committed emission-index high-water
/// marks via exact unranking — work before a mark is never re-enumerated,
/// work after it is recomputed (identically, by determinism of the
/// enumeration). `workers` only sizes the thread pool; the job
/// decomposition is fixed by the manifest, and the completed report is
/// byte-identical to an uninterrupted run regardless of either. A resumed
/// run may itself be interrupted ([`CheckpointOptions::stop_after`]) and
/// resumed again, any number of times.
///
/// # Errors
///
/// Returns [`CheckpointError::Journal`] when the file is not a
/// resumable journal, [`CheckpointError::Decode`] /
/// [`CheckpointError::Foreign`] when its records do not decode against
/// this build's schema and registries — including a journal recorded
/// under a **different oracle backend** than the in-process simulator
/// (use [`resume_campaign_with_backend`] for those).
pub fn resume_campaign(
    path: impl AsRef<Path>,
    workers: usize,
    options: &CheckpointOptions,
) -> Result<CampaignStatus, CheckpointError> {
    resume_campaign_oracle(path.as_ref(), workers, options, Oracle::Direct)
}

/// [`resume_campaign`] for journals written by
/// [`run_campaign_checkpointed_with_backend`]: `backend` must match the
/// manifest's recorded backend id *and* configuration hash, otherwise
/// the resume is refused with [`CheckpointError::Foreign`] — replayed
/// frames mixed with a different oracle's recomputed suffix would match
/// no uninterrupted run.
///
/// # Errors
///
/// As [`resume_campaign`], plus the backend-mismatch refusal above.
pub fn resume_campaign_with_backend(
    path: impl AsRef<Path>,
    backend: &dyn CompilerBackend,
    workers: usize,
    options: &CheckpointOptions,
) -> Result<CampaignStatus, CheckpointError> {
    resume_campaign_oracle(path.as_ref(), workers, options, Oracle::Backend(backend))
}

fn resume_campaign_oracle(
    path: &Path,
    workers: usize,
    options: &CheckpointOptions,
    oracle: Oracle<'_>,
) -> Result<CampaignStatus, CheckpointError> {
    let contents = JournalReader::read(path)?;
    let replayed = replay(&contents.header, &contents.records)?;
    replayed.manifest.check_backend(&oracle)?;
    if replayed.campaign_done {
        // Nothing to recompute: fold the recorded outputs directly.
        let outputs = replayed.jobs.into_iter().map(|j| j.partial).collect();
        return Ok(CampaignStatus::Complete(merge_outputs(outputs)));
    }
    // `open_append_with` reuses the scan above instead of re-reading.
    let journal = Journal::open_append_with(path, &contents)?;
    drive(
        &replayed.manifest,
        replayed.jobs,
        journal,
        workers.max(1),
        options,
        oracle,
    )
}

/// Shared driver of fresh and resumed checkpointed campaigns: deals the
/// unfinished jobs into the work-stealing queue, streams each from its
/// high-water mark with periodic checkpoint appends, and merges recorded
/// and fresh outputs in deterministic job order.
///
/// A [`spe_simcc::backend::BackendError`] from the oracle quarantines
/// the job: the degraded finding is committed together with the job's
/// completion record, so a resume never re-runs the job against the
/// same failing backend.
fn drive(
    manifest: &Manifest,
    jobs: Vec<JobState>,
    journal: Journal,
    workers: usize,
    options: &CheckpointOptions,
    oracle: Oracle<'_>,
) -> Result<CampaignStatus, CheckpointError> {
    let files = &manifest.files;
    let config = &manifest.config;
    let shards_per_file = manifest.shards_per_file;
    let every = options.every.max(1);
    let pending: Vec<usize> = (0..jobs.len()).filter(|&i| !jobs[i].done).collect();
    let queue = WorkQueue::new(pending, workers);
    let journal = Mutex::new(journal);
    let failure: Mutex<Option<CheckpointError>> = Mutex::new(None);
    let stop = AtomicBool::new(false);
    let processed = AtomicU64::new(0);
    // Continuations (outputs of this run) per job; folded with the
    // replayed partials afterwards.
    let continuations: Mutex<Vec<Option<ShardOutput>>> =
        Mutex::new((0..jobs.len()).map(|_| None).collect());
    let prepared: Vec<OnceLock<Option<(Skeleton, VariantSpace)>>> =
        (0..files.len()).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let queue = &queue;
            let journal = &journal;
            let failure = &failure;
            let stop = &stop;
            let processed = &processed;
            let continuations = &continuations;
            let prepared = &prepared;
            let jobs = &jobs;
            scope.spawn(move || {
                let mut buf = String::new();
                while let Some(i) = queue.pop(w) {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let (file_idx, shard) = (i / shards_per_file, i % shards_per_file);
                    let file = &files[file_idx];
                    let skip = jobs[i].emitted;
                    let enumerator = crate::campaign_enumerator(config, shards_per_file);
                    let space = prepared[file_idx]
                        .get_or_init(|| prepare_file(file, shards_per_file, config));
                    // Output since the last committed checkpoint (the
                    // journal delta) and since the start of this run
                    // (the in-memory continuation).
                    let mut delta = ShardOutput {
                        file_processed: shard == 0 && space.is_some() && skip == 0,
                        ..ShardOutput::default()
                    };
                    let mut cont = ShardOutput::default();
                    let mut emitted = skip;
                    let mut last_commit = skip;
                    let mut killed = false;
                    let mut io_failed = false;
                    if let Some((sk, space)) = space {
                        enumerator.enumerate_shard_resumed_prepared(space, shard, skip, &mut |v| {
                            if stop.load(Ordering::Relaxed) {
                                killed = true;
                                return ControlFlow::Break(());
                            }
                            v.render_into(sk, &mut buf);
                            if let Err(e) = oracle.process_variant(file, &buf, config, &mut delta)
                            {
                                // Backend machinery failure: quarantine
                                // the job (degraded finding + JobDone
                                // below) and let the campaign continue.
                                delta
                                    .candidates
                                    .push(degraded_finding(file, shard, &buf, config, &e));
                                return ControlFlow::Break(());
                            }
                            emitted += 1;
                            if let Some(limit) = options.stop_after {
                                if processed.fetch_add(1, Ordering::Relaxed) + 1 >= limit {
                                    // Simulated kill: drop the
                                    // uncommitted delta on the floor.
                                    stop.store(true, Ordering::Relaxed);
                                    killed = true;
                                    return ControlFlow::Break(());
                                }
                            }
                            if emitted - last_commit == every {
                                match commit(journal, i, emitted, &mut delta, &mut cont) {
                                    Ok(()) => last_commit = emitted,
                                    Err(e) => {
                                        fail(failure, stop, e);
                                        io_failed = true;
                                        return ControlFlow::Break(());
                                    }
                                }
                            }
                            ControlFlow::Continue(())
                        });
                    }
                    if killed || io_failed {
                        return;
                    }
                    // Commit the tail delta (skipped when nothing accrued
                    // since the last checkpoint — an empty `Progress`
                    // replays as a no-op, so eliding it saves an fsync
                    // without changing resume semantics) and the job's
                    // completion.
                    let dirty = emitted != last_commit
                        || delta.file_processed
                        || delta.variants_tested != 0
                        || !delta.candidates.is_empty();
                    let mut enc = Encoder::new();
                    enc.u8(REC_JOB_DONE).u32(i as u32);
                    let finish = if dirty {
                        commit(journal, i, emitted, &mut delta, &mut cont)
                    } else {
                        Ok(())
                    }
                    .and_then(|()| append(journal, enc.finish()));
                    if let Err(e) = finish {
                        fail(failure, stop, e);
                        return;
                    }
                    continuations.lock().expect("poisoned")[i] = Some(cont);
                }
            });
        }
    });
    if let Some(e) = failure.into_inner().expect("poisoned") {
        return Err(e);
    }
    if stop.load(Ordering::Relaxed) {
        return Ok(CampaignStatus::Interrupted);
    }
    let mut journal = journal.into_inner().expect("poisoned");
    let mut enc = Encoder::new();
    enc.u8(REC_CAMPAIGN_DONE);
    journal.append(&enc.finish())?;
    let continuations = continuations.into_inner().expect("poisoned");
    let outputs = jobs
        .into_iter()
        .zip(continuations)
        .map(|(job, cont)| fold_outputs(job.partial, cont))
        .collect();
    Ok(CampaignStatus::Complete(merge_outputs(outputs)))
}

/// Appends a `Progress` frame committing `[last mark, emitted)` — the
/// high-water mark plus exactly the candidates and counters of the
/// variants it covers, in one atomic frame — then drains the delta into
/// the run's continuation output.
fn commit(
    journal: &Mutex<Journal>,
    job: usize,
    emitted: u64,
    delta: &mut ShardOutput,
    cont: &mut ShardOutput,
) -> Result<(), CheckpointError> {
    let mut enc = Encoder::new();
    enc.u8(REC_PROGRESS)
        .u32(job as u32)
        .u64(emitted)
        .bool(delta.file_processed)
        .u64(delta.variants_tested)
        .u64(delta.variants_ub_skipped)
        .usize(delta.candidates.len());
    for f in &delta.candidates {
        encode_finding(&mut enc, f);
    }
    append(journal, enc.finish())?;
    cont.absorb(std::mem::take(delta));
    Ok(())
}

fn append(journal: &Mutex<Journal>, payload: Vec<u8>) -> Result<(), CheckpointError> {
    journal
        .lock()
        .expect("poisoned")
        .append(&payload)
        .map_err(CheckpointError::from)
}

fn fail(failure: &Mutex<Option<CheckpointError>>, stop: &AtomicBool, e: CheckpointError) {
    let mut slot = failure.lock().expect("poisoned");
    if slot.is_none() {
        *slot = Some(e);
    }
    stop.store(true, Ordering::Relaxed);
}

/// Folds a job's replayed prefix with this run's continuation: the
/// prefix's candidates precede the continuation's, preserving global
/// emission order.
fn fold_outputs(mut partial: ShardOutput, cont: Option<ShardOutput>) -> ShardOutput {
    if let Some(cont) = cont {
        partial.absorb(cont);
    }
    partial
}

// ---------------------------------------------------------------------
// Checkpointed reduction stage.
// ---------------------------------------------------------------------

/// [`crate::reduction::reduce_findings`] with per-finding checkpoints
/// appended to the campaign's journal at `path`.
///
/// Witnesses recorded by an earlier (killed) reduction pass are replayed
/// instead of recomputed; only missing findings fan out over the worker
/// pool, each committing a `Reduced` frame as it lands. Since every
/// witness is a pure function of its finding, the attached report —
/// including the fingerprint/trigger dedup links — is byte-identical to
/// an uninterrupted [`crate::reduction::reduce_findings`] at any worker
/// count and any kill/resume history.
///
/// # Errors
///
/// Returns the same error classes as [`resume_campaign`]; the report is
/// left unmodified on error.
pub fn reduce_findings_checkpointed(
    report: &mut CampaignReport,
    options: &ReductionOptions,
    workers: usize,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    reduce_findings_checkpointed_oracle(report, options, workers, path.as_ref(), Oracle::Direct)
}

/// [`reduce_findings_checkpointed`] against a pluggable backend: the
/// journal's manifest must have been recorded under the same backend id
/// and configuration hash as `backend`, mirroring
/// [`resume_campaign_with_backend`]'s refusal — reduction replays the
/// oracle per candidate shrink, so a different backend would attach
/// witnesses no uninterrupted run could produce.
///
/// # Errors
///
/// As [`reduce_findings_checkpointed`], plus the backend-mismatch
/// refusal above.
pub fn reduce_findings_checkpointed_with_backend(
    report: &mut CampaignReport,
    options: &ReductionOptions,
    workers: usize,
    path: impl AsRef<Path>,
    backend: &dyn CompilerBackend,
) -> Result<(), CheckpointError> {
    reduce_findings_checkpointed_oracle(
        report,
        options,
        workers,
        path.as_ref(),
        Oracle::Backend(backend),
    )
}

fn reduce_findings_checkpointed_oracle(
    report: &mut CampaignReport,
    options: &ReductionOptions,
    workers: usize,
    path: &Path,
    oracle: Oracle<'_>,
) -> Result<(), CheckpointError> {
    let contents = JournalReader::read(path)?;
    let replayed = replay(&contents.header, &contents.records)?;
    replayed.manifest.check_backend(&oracle)?;
    // Replayed witnesses were computed under the recorded options; a
    // resumed pass under different options would attach a mixture that
    // matches *no* uninterrupted run — reject it, mirroring how the
    // campaign manifest pins the `CampaignConfig`.
    if let Some(recorded) = &replayed.reduction_options {
        if recorded != options {
            return Err(CheckpointError::Foreign(format!(
                "journal reduction ran under {recorded:?}, resume passed {options:?}"
            )));
        }
    }
    let jobs = report.findings.len();
    // Replayed witnesses must belong to *this* report's findings: every
    // record's index and recorded signature are checked, so a journal
    // from a different campaign (or a differently filtered report) is
    // rejected instead of silently mis-attaching witnesses.
    let mut slots: Vec<Option<Option<ReducedWitness>>> = vec![None; jobs];
    for (&idx, (signature, witness)) in &replayed.reduced {
        let finding = report.findings.get(idx as usize).ok_or_else(|| {
            CheckpointError::Foreign(format!("reduced finding {idx} out of {jobs}"))
        })?;
        if finding.signature != *signature {
            return Err(CheckpointError::Foreign(format!(
                "reduced record {idx} signed {signature:?}, report has {:?}",
                finding.signature
            )));
        }
        slots[idx as usize] = Some(witness.clone());
    }
    let missing: Vec<usize> = (0..jobs).filter(|&i| slots[i].is_none()).collect();
    if !missing.is_empty() {
        let mut journal = Journal::open_append_with(path, &contents)?;
        if replayed.reduction_options.is_none() {
            journal.append(&encode_reduction_options(options))?;
        }
        let journal = Mutex::new(journal);
        let failure: Mutex<Option<CheckpointError>> = Mutex::new(None);
        let stop = AtomicBool::new(false);
        let fresh: Mutex<Vec<(usize, Option<ReducedWitness>)>> = Mutex::new(Vec::new());
        let workers = workers.clamp(1, missing.len());
        let queue = WorkQueue::new(missing, workers);
        let findings = &report.findings;
        std::thread::scope(|scope| {
            for w in 0..workers {
                let queue = &queue;
                let journal = &journal;
                let failure = &failure;
                let stop = &stop;
                let fresh = &fresh;
                scope.spawn(move || {
                    while let Some(i) = queue.pop(w) {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        let witness = reduce_one_oracle(&findings[i], options, oracle);
                        let mut enc = Encoder::new();
                        enc.u8(REC_REDUCED).u32(i as u32).str(&findings[i].signature);
                        match &witness {
                            Some(w) => {
                                enc.bool(true);
                                encode_witness(&mut enc, w);
                            }
                            None => {
                                enc.bool(false);
                            }
                        }
                        if let Err(e) = append(journal, enc.finish()) {
                            fail(failure, stop, e);
                            return;
                        }
                        fresh.lock().expect("poisoned").push((i, witness));
                    }
                });
            }
        });
        if let Some(e) = failure.into_inner().expect("poisoned") {
            return Err(e);
        }
        for (i, witness) in fresh.into_inner().expect("poisoned") {
            slots[i] = Some(witness);
        }
    }
    let witnesses = slots
        .into_iter()
        .map(|s| s.expect("every finding replayed or reduced"))
        .collect();
    attach_and_dedup(report, witnesses);
    Ok(())
}
