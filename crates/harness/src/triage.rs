//! Triage: aggregating campaign findings into the paper's Table 4 and
//! Figure 10 shapes, using the seeded-bug registry metadata.

use crate::{CampaignReport, Finding, FindingKind};
use spe_simcc::bugs::{registry, BugSpec, Priority};

/// One family's row of Table 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table4Row {
    /// Compiler family.
    pub family: String,
    /// Unique-signature reports.
    pub reported: usize,
    /// Reports whose underlying defect is fixed in a later version.
    pub fixed: usize,
    /// Reports that duplicate an earlier report's root cause.
    pub duplicate: usize,
    /// Reports rejected as invalid (always 0 here: the UB oracle is
    /// exact, unlike the paper's manual inspection).
    pub invalid: usize,
    /// Reports reopened after an incorrect fix (not modeled; 0).
    pub reopened: usize,
    /// Crash reports.
    pub crash: usize,
    /// Wrong-code reports.
    pub wrong_code: usize,
    /// Performance reports.
    pub performance: usize,
}

/// Builds Table 4 rows for the given families.
pub fn table4(report: &CampaignReport, families: &[&str]) -> Vec<Table4Row> {
    let regs = registry();
    families
        .iter()
        .map(|family| {
            // Quarantined-job markers are infrastructure audit records,
            // not compiler bug reports: Table 4 counts only verdicts.
            let findings: Vec<&Finding> = report
                .for_family(family)
                .filter(|f| {
                    !matches!(
                        f.kind,
                        FindingKind::BackendDegraded | FindingKind::JobPanicked
                    )
                })
                .collect();
            let fixed = findings
                .iter()
                .filter(|f| {
                    f.bug_id
                        .and_then(|id| regs.iter().find(|b| b.id == id))
                        .is_some_and(|b| b.fixed.is_some())
                })
                .count();
            Table4Row {
                family: family.to_string(),
                reported: findings.len(),
                fixed,
                duplicate: findings.iter().filter(|f| f.duplicate_of.is_some()).count(),
                invalid: 0,
                reopened: 0,
                crash: findings
                    .iter()
                    .filter(|f| f.kind == FindingKind::Crash)
                    .count(),
                wrong_code: findings
                    .iter()
                    .filter(|f| f.kind == FindingKind::WrongCode)
                    .count(),
                performance: findings
                    .iter()
                    .filter(|f| f.kind == FindingKind::Performance)
                    .count(),
            }
        })
        .collect()
}

/// Figure 10 data for one family: reported/fixed counts per category.
#[derive(Debug, Clone, Default)]
pub struct Figure10 {
    /// (a) bug priorities P1..P4-5: `(reported, fixed)` per bucket.
    pub priorities: Vec<(String, usize, usize)>,
    /// (b) optimization levels O0..O3.
    pub opt_levels: Vec<(String, usize, usize)>,
    /// (c) affected versions (cumulative buckets like the paper's
    /// Earlier / 5.X / 6.X / Trunk).
    pub versions: Vec<(String, usize, usize)>,
    /// (d) components.
    pub components: Vec<(String, usize, usize)>,
}

/// The distinct root-cause bugs behind a family's findings.
pub fn root_causes<'r>(report: &CampaignReport, family: &str) -> Vec<&'r BugSpec> {
    let regs: &'static Vec<BugSpec> = {
        // registry() allocates; leak one copy for 'static metadata refs.
        use std::sync::OnceLock;
        static REGS: OnceLock<Vec<BugSpec>> = OnceLock::new();
        REGS.get_or_init(registry)
    };
    let mut ids: Vec<&'static str> = report
        .for_family(family)
        .filter(|f| f.duplicate_of.is_none())
        .filter_map(|f| f.bug_id)
        .collect();
    ids.sort();
    ids.dedup();
    ids.iter()
        .filter_map(|id| regs.iter().find(|b| b.id == *id))
        .collect()
}

/// Builds Figure 10 histograms for one family over the given version
/// timeline (e.g. [`spe_simcc::bugs::GCC_VERSIONS`]).
pub fn figure10(report: &CampaignReport, family: &str, versions: &[u32]) -> Figure10 {
    let bugs = root_causes(report, family);
    let fixed = |b: &&BugSpec| b.fixed.is_some();

    let mut priorities = Vec::new();
    for (label, prio) in [
        ("P1", vec![Priority::P1]),
        ("P2", vec![Priority::P2]),
        ("P3", vec![Priority::P3]),
        ("P4-5", vec![Priority::P4, Priority::P5]),
    ] {
        let subset: Vec<&&BugSpec> = bugs.iter().filter(|b| prio.contains(&b.priority)).collect();
        priorities.push((
            label.to_string(),
            subset.len(),
            subset.iter().filter(|b| fixed(b)).count(),
        ));
    }

    let mut opt_levels = Vec::new();
    for level in 0u8..=3 {
        let subset: Vec<&&BugSpec> = bugs.iter().filter(|b| b.min_opt <= level).collect();
        opt_levels.push((
            format!("-O{level}"),
            subset.len(),
            subset.iter().filter(|b| fixed(b)).count(),
        ));
    }

    let mut out_versions = Vec::new();
    for &v in versions {
        let subset: Vec<&&BugSpec> = bugs.iter().filter(|b| b.live_in(v)).collect();
        out_versions.push((
            format!("v{v}"),
            subset.len(),
            subset.iter().filter(|b| fixed(b)).count(),
        ));
    }

    let mut components = Vec::new();
    let mut names: Vec<&'static str> = bugs.iter().map(|b| b.component.name()).collect();
    names.sort();
    names.dedup();
    for name in names {
        let subset: Vec<&&BugSpec> = bugs.iter().filter(|b| b.component.name() == name).collect();
        components.push((
            name.to_string(),
            subset.len(),
            subset.iter().filter(|b| fixed(b)).count(),
        ));
    }

    Figure10 {
        priorities,
        opt_levels,
        versions: out_versions,
        components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_campaign, CampaignConfig};
    use spe_core::Algorithm;
    use spe_corpus::seeds;
    use spe_simcc::bugs::GCC_VERSIONS;
    use spe_simcc::{Compiler, CompilerId};

    fn campaign() -> CampaignReport {
        run_campaign(
            &seeds::all(),
            &CampaignConfig {
                compilers: vec![
                    Compiler::new(CompilerId::gcc(700), 0),
                    Compiler::new(CompilerId::gcc(700), 3),
                    Compiler::new(CompilerId::clang(390), 3),
                ],
                budget: 200,
                algorithm: Algorithm::Paper,
                check_wrong_code: true,
                fuel: 20_000,
            },
        )
    }

    #[test]
    fn table4_accounts_add_up() {
        let report = campaign();
        let rows = table4(&report, &["gcc-sim", "clang-sim"]);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(
                row.crash + row.wrong_code + row.performance,
                row.reported,
                "classification partitions reports: {row:?}"
            );
            assert!(row.fixed <= row.reported);
            assert!(row.duplicate <= row.reported);
        }
        let gcc = &rows[0];
        assert!(gcc.reported > 0, "the seed programs expose gcc bugs");
    }

    #[test]
    fn table4_ignores_quarantined_backend_jobs() {
        let mut report = campaign();
        let before = table4(&report, &["gcc-sim", "clang-sim"]);
        report.findings.push(Finding {
            kind: FindingKind::BackendDegraded,
            compiler: CompilerId::gcc(700),
            opt: 0,
            signature: "backend degraded: x.c shard 0: cannot launch cc".to_string(),
            bug_id: None,
            file: "x.c".to_string(),
            reproducer: "int main() { return 0; }".to_string(),
            duplicate_of: None,
            reduced: None,
            fingerprint_duplicate_of: None,
        });
        assert_eq!(
            table4(&report, &["gcc-sim", "clang-sim"]),
            before,
            "quarantine markers are not bug reports"
        );
    }

    #[test]
    fn table4_ignores_panicked_jobs() {
        let mut report = campaign();
        let before = table4(&report, &["gcc-sim", "clang-sim"]);
        report.findings.push(Finding {
            kind: FindingKind::JobPanicked,
            compiler: CompilerId::gcc(700),
            opt: 0,
            signature: "job panicked: x.c shard 2: index out of bounds".to_string(),
            bug_id: None,
            file: "x.c".to_string(),
            reproducer: "int main() { return 0; }".to_string(),
            duplicate_of: None,
            reduced: None,
            fingerprint_duplicate_of: None,
        });
        assert_eq!(
            table4(&report, &["gcc-sim", "clang-sim"]),
            before,
            "panic quarantine markers are not bug reports"
        );
    }

    #[test]
    fn figure10_counts_are_consistent() {
        let report = campaign();
        let fig = figure10(&report, "gcc-sim", GCC_VERSIONS);
        let total_bugs = root_causes(&report, "gcc-sim").len();
        // -O3 is affected by every bug with min_opt <= 3 (all of them).
        assert_eq!(fig.opt_levels.last().expect("O3 present").1, total_bugs);
        // Priorities partition the bug set.
        let prio_total: usize = fig.priorities.iter().map(|(_, r, _)| r).sum();
        assert_eq!(prio_total, total_bugs);
        // Components partition the bug set.
        let comp_total: usize = fig.components.iter().map(|(_, r, _)| r).sum();
        assert_eq!(comp_total, total_bugs);
        // More bugs affect trunk than the oldest version (long latency
        // plus newly introduced ones).
        let first = fig.versions.first().expect("versions");
        let last = fig.versions.last().expect("versions");
        assert!(last.1 >= first.1);
    }
}
