//! The supervised campaign orchestrator: **one** worker-pool/merge loop
//! behind every parallel and checkpointed entry point.
//!
//! Historically the crate spelled the pool invariants twice — once in
//! the in-memory parallel campaign, once in the checkpointed driver —
//! pinned together only by byte-identity tests. This module is the
//! single loop both were collapsed into (`DESIGN.md` §11): a
//! work-stealing pool over the `files × shards` job space, with an
//! **optional checkpoint sink** (an `spe-persist` journal) and three
//! supervision layers the duplicated loops never had:
//!
//! * **Panic isolation** — each (file, shard) job runs under
//!   [`std::panic::catch_unwind`]. A panicking job is rolled back to its
//!   last fully-processed variant, quarantined as a durable
//!   [`crate::FindingKind::JobPanicked`] finding (committed together
//!   with the job's completion record, so a resume skips it), and the
//!   pool carries on — one poisoned variant cannot take down a
//!   multi-day campaign or wedge its siblings.
//! * **Time-based checkpoint cadence** — in addition to the historical
//!   every-N-variants cadence, a job whose variants are slow (an
//!   external compiler at -O3) commits at least every
//!   [`FaultPolicy::checkpoint_interval`], bounding recomputation after
//!   a crash by wall-clock time instead of variant count.
//! * **Journal-fault tolerance** — a failed checkpoint append (ENOSPC,
//!   EIO) is retried with bounded exponential backoff
//!   ([`FaultPolicy::max_append_retries`] / [`FaultPolicy::retry_backoff`]);
//!   if the journal stays unwritable the run **degrades to
//!   checkpoint-less in-memory completion** with a recorded
//!   [`Outcome::warnings`] entry instead of aborting — the journal keeps
//!   its last committed state and remains resumable.
//!
//! The full failure taxonomy — compiler *verdict* vs backend *machinery
//! error* vs worker *panic* vs *journal fault*, and which layer absorbs
//! each — is laid out in `DESIGN.md` §11. Determinism is unchanged from
//! §9: outputs are folded in fixed (file, shard) order whatever the
//! completion order, so reports stay byte-identical across worker
//! counts and kill/resume histories; the identity suites
//! (`tests/backend_identity.rs`, `tests/checkpoint_resume.rs`) and the
//! injected-fault suite (`tests/orchestrator_faults.rs`) pin all of it.

use crate::checkpoint::{
    encode_campaign_done, encode_job_done, encode_progress, CampaignStatus, CheckpointError,
    CheckpointOptions, JobState,
};
use crate::steal::WorkQueue;
use crate::{
    degraded_finding, merge_outputs, panicked_finding, prepare_file, CampaignConfig,
    CampaignReport, Oracle, ShardOutput,
};
use spe_corpus::TestFile;
use spe_persist::{Journal, JournalError};
use spe_simcc::backend::CompilerBackend;
use spe_telemetry::{names, Sink as TelemetrySink, Timer};
use std::any::Any;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// How the orchestrator responds to infrastructure faults — checkpoint
/// cadence under slow oracles and retry/degradation behavior when the
/// journal itself fails. Orthogonal to [`CheckpointOptions`], which
/// describes *what* a checkpointed run records; this describes *how
/// hard the orchestrator fights to record it*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Wall-clock checkpoint cadence: a job with uncommitted progress
    /// older than this commits at the next variant boundary, even if
    /// the count-based [`CheckpointOptions::every`] has not elapsed —
    /// so slow-oracle campaigns lose bounded *time*, not unbounded
    /// variant recomputation, to a crash. `None` disables the
    /// time-based trigger (count-only cadence).
    pub checkpoint_interval: Option<Duration>,
    /// How many times a failed journal append is retried before the run
    /// degrades to checkpoint-less completion.
    pub max_append_retries: u32,
    /// Backoff before the first retry; doubled per subsequent retry
    /// (transient ENOSPC/EIO conditions — a log rotation, a burst of
    /// writes — often clear within milliseconds).
    pub retry_backoff: Duration,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            checkpoint_interval: Some(Duration::from_secs(5)),
            max_append_retries: 4,
            retry_backoff: Duration::from_millis(10),
        }
    }
}

/// What a supervised run produced: the campaign status plus every
/// degradation the orchestrator absorbed instead of aborting on.
#[derive(Debug)]
pub struct Outcome {
    /// Completion or interruption, exactly as the thin wrappers return.
    pub status: CampaignStatus,
    /// Human-readable records of absorbed faults (e.g. checkpointing
    /// disabled after exhausted journal retries). Empty on a clean run.
    /// Deliberately *not* part of the [`CampaignReport`]: reports are
    /// compared byte-for-byte across runs, and infrastructure weather
    /// must never make two equal campaigns unequal.
    pub warnings: Vec<String>,
}

impl Outcome {
    /// The completed report, `None` when interrupted.
    pub fn into_report(self) -> Option<CampaignReport> {
        self.status.into_report()
    }
}

/// Everything one supervised run needs. Borrowed, not owned: resume
/// paths hand the manifest's corpus straight through without cloning.
pub(crate) struct Spec<'a> {
    pub(crate) files: &'a [TestFile],
    pub(crate) config: &'a CampaignConfig,
    /// Shards each file's variant space is cut into — fixed by the
    /// journal manifest on resume, `workers` on fresh runs.
    pub(crate) shards_per_file: usize,
    /// Per-job replayed state: fresh defaults on a first run, the
    /// journal's committed high-water marks and partial outputs on a
    /// resume. Jobs marked done are not re-dealt.
    pub(crate) jobs: Vec<JobState>,
    pub(crate) workers: usize,
    /// Count-based checkpoint cadence ([`CheckpointOptions::every`]).
    pub(crate) every: u64,
    /// Simulated-kill budget ([`CheckpointOptions::stop_after`]).
    pub(crate) stop_after: Option<u64>,
    /// The checkpoint sink; `None` runs the pool purely in memory.
    pub(crate) journal: Option<Journal>,
    pub(crate) oracle: Oracle<'a>,
    pub(crate) policy: FaultPolicy,
}

/// The checkpoint sink: serializes journal appends, retries transient
/// failures per the policy, and — when the journal stays unwritable —
/// flips to degraded mode so the rest of the campaign completes in
/// memory with a recorded warning.
struct Sink<'a> {
    journal: Option<Mutex<Journal>>,
    degraded: AtomicBool,
    policy: &'a FaultPolicy,
    warnings: &'a Mutex<Vec<String>>,
    telemetry: &'a dyn TelemetrySink,
}

impl Sink<'_> {
    /// Whether appends currently reach the journal.
    fn active(&self) -> bool {
        self.journal.is_some() && !self.degraded.load(Ordering::Relaxed)
    }

    /// Appends one frame with bounded-backoff retry; on exhaustion,
    /// degrades the sink (once, with a warning) instead of failing the
    /// campaign.
    fn append(&self, what: &str, payload: &[u8]) {
        let Some(journal) = &self.journal else { return };
        if self.degraded.load(Ordering::Relaxed) {
            return;
        }
        let mut backoff = self.policy.retry_backoff;
        let mut attempt = 0u32;
        loop {
            // Hold the journal lock only for the append itself; backoff
            // sleeps must not serialize the other workers' commits.
            let result = journal.lock().expect("poisoned").append(payload);
            match result {
                Ok(()) => return,
                Err(e @ JournalError::Io { .. }) if attempt < self.policy.max_append_retries => {
                    attempt += 1;
                    let _ = e;
                    self.telemetry.counter(names::JOURNAL_RETRIES, 1);
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
                Err(e) => {
                    if !self.degraded.swap(true, Ordering::Relaxed) {
                        self.telemetry.event(names::JOURNAL_DEGRADED, what);
                        self.warnings.lock().expect("poisoned").push(format!(
                            "checkpointing disabled: {what} failed after {attempt} retries: {e}; \
                             the campaign continues in memory and the journal stays resumable \
                             at its last committed state"
                        ));
                    }
                    return;
                }
            }
        }
    }

    /// Commits a `Progress` frame for `[last mark, emitted)` — the
    /// high-water mark plus exactly the candidates and counters of the
    /// variants it covers, one atomic frame — then drains the delta
    /// into the run's in-memory continuation. The drain happens whether
    /// or not the append reached the journal: the report never depends
    /// on checkpoint health.
    fn commit(&self, job: usize, emitted: u64, delta: &mut ShardOutput, cont: &mut ShardOutput) {
        if self.active() {
            let timer = Timer::start(self.telemetry);
            self.append("progress checkpoint", &encode_progress(job, emitted, delta));
            if self.telemetry.enabled() {
                self.telemetry
                    .span(names::ORCH_CHECKPOINT, "", timer.stop_nanos());
            }
        }
        cont.absorb(std::mem::take(delta));
    }
}

/// Extracts a printable message from a [`catch_unwind`] payload.
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// The one supervised worker-pool/merge loop (`DESIGN.md` §11). Every
/// public campaign entry point — parallel, checkpointed, resumed, with
/// or without a backend — is a thin wrapper over this function.
pub(crate) fn run(spec: Spec<'_>) -> Outcome {
    let Spec {
        files,
        config,
        shards_per_file,
        jobs,
        workers,
        every,
        stop_after,
        journal,
        oracle,
        policy,
    } = spec;
    let every = every.max(1);
    // One global-sink read per run; workers share the borrow. All
    // recording is write-only (nothing read back), so instrumented
    // runs stay byte-identical to `NullSink` runs.
    let telemetry_handle = spe_telemetry::global();
    let telemetry: &dyn TelemetrySink = &*telemetry_handle;
    let run_timer = Timer::start(telemetry);
    let deal_timer = Timer::start(telemetry);
    let pending: Vec<usize> = (0..jobs.len()).filter(|&i| !jobs[i].done).collect();
    let dealt = pending.len();
    let queue = WorkQueue::new(pending, workers);
    if telemetry.enabled() {
        telemetry.gauge(names::ORCH_JOBS, i64::try_from(jobs.len()).unwrap_or(i64::MAX));
        telemetry.span(
            names::ORCH_DEAL,
            &format!("jobs={dealt} workers={workers}"),
            deal_timer.stop_nanos(),
        );
    }
    let warnings: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let sink = Sink {
        journal: journal.map(Mutex::new),
        degraded: AtomicBool::new(false),
        policy: &policy,
        warnings: &warnings,
        telemetry,
    };
    let stop = AtomicBool::new(false);
    let processed = AtomicU64::new(0);
    // Continuations (outputs of this run) per job; folded with the
    // replayed partials afterwards.
    let continuations: Mutex<Vec<Option<ShardOutput>>> =
        Mutex::new((0..jobs.len()).map(|_| None).collect());
    // Per-file skeleton + materialized variant space, computed once by
    // whichever worker reaches the file first and shared by the rest.
    let prepared: Vec<OnceLock<Option<(spe_core::Skeleton, spe_core::VariantSpace)>>> =
        (0..files.len()).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let queue = &queue;
            let sink = &sink;
            let stop = &stop;
            let processed = &processed;
            let continuations = &continuations;
            let prepared = &prepared;
            let jobs = &jobs;
            scope.spawn(move || {
                let mut buf = String::new();
                while let Some((i, stolen)) = queue.pop_from(w) {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    if telemetry.enabled() {
                        if stolen {
                            telemetry.counter(names::ORCH_STEALS, 1);
                        }
                        telemetry.gauge(
                            names::ORCH_QUEUE_DEPTH,
                            i64::try_from(queue.len()).unwrap_or(i64::MAX),
                        );
                    }
                    let job_timer = Timer::start(telemetry);
                    let (file_idx, shard) = (i / shards_per_file, i % shards_per_file);
                    let file = &files[file_idx];
                    let skip = jobs[i].emitted;
                    let space = prepared[file_idx]
                        .get_or_init(|| prepare_file(file, shards_per_file, config));
                    // Output since the last committed checkpoint (the
                    // journal delta) and since the start of this run
                    // (the in-memory continuation).
                    let mut delta = ShardOutput {
                        file_processed: shard == 0 && space.is_some() && skip == 0,
                        ..ShardOutput::default()
                    };
                    let mut cont = ShardOutput::default();
                    let mut emitted = skip;
                    let mut last_commit = skip;
                    let mut last_commit_at = Instant::now();
                    let mut killed = false;
                    // Rollback point for panic isolation: `delta`'s
                    // state after the last fully-processed variant (and
                    // after any drain). A panic mid-variant truncates
                    // back to it, so the quarantined job commits only
                    // whole variants — deterministic under resume.
                    let mut rollback = (0usize, 0u64, 0u64);
                    let panic_payload = if let Some((sk, space)) = space {
                        let enumerator = crate::campaign_enumerator(config, shards_per_file);
                        // Per-job incremental session (None on the
                        // round-trip paths): built lazily from the job's
                        // first variant inside the panic guard, dropped
                        // at job end — cached AST state cannot outlive
                        // the job or leak into a quarantined sibling.
                        let mut session = oracle.session(sk);
                        catch_unwind(AssertUnwindSafe(|| {
                            enumerator.enumerate_shard_resumed_prepared(
                                space,
                                shard,
                                skip,
                                &mut |variant| {
                                    if stop.load(Ordering::Relaxed) {
                                        killed = true;
                                        return ControlFlow::Break(());
                                    }
                                    variant.render_into(sk, &mut buf);
                                    let result = match session.as_mut() {
                                        Some(sess) => sess.process_variant(
                                            variant, file, &buf, config, &mut delta, telemetry,
                                        ),
                                        None => oracle.process_variant(
                                            file, &buf, config, &mut delta, telemetry,
                                        ),
                                    };
                                    if let Err(e) = result {
                                        // Backend machinery failure:
                                        // quarantine the job (degraded
                                        // finding + JobDone below) and
                                        // let the campaign continue.
                                        delta.candidates.push(degraded_finding(
                                            file, shard, &buf, config, &e,
                                        ));
                                        return ControlFlow::Break(());
                                    }
                                    emitted += 1;
                                    rollback = (
                                        delta.candidates.len(),
                                        delta.variants_tested,
                                        delta.variants_ub_skipped,
                                    );
                                    if let Some(limit) = stop_after {
                                        if processed.fetch_add(1, Ordering::Relaxed) + 1 >= limit {
                                            // Simulated kill: drop the
                                            // uncommitted delta on the
                                            // floor.
                                            stop.store(true, Ordering::Relaxed);
                                            telemetry
                                                .event(names::ORCH_KILLED, "stop_after reached");
                                            killed = true;
                                            return ControlFlow::Break(());
                                        }
                                    }
                                    let count_due = emitted - last_commit >= every;
                                    let time_due = emitted > last_commit
                                        && sink.policy.checkpoint_interval.is_some_and(|interval| {
                                            last_commit_at.elapsed() >= interval
                                        });
                                    if count_due || time_due {
                                        sink.commit(i, emitted, &mut delta, &mut cont);
                                        last_commit = emitted;
                                        last_commit_at = Instant::now();
                                        rollback = (0, 0, 0);
                                    }
                                    ControlFlow::Continue(())
                                },
                            );
                        }))
                        .err()
                    } else {
                        None
                    };
                    if let Some(payload) = panic_payload {
                        // Roll back any half-processed variant, then
                        // quarantine: the panic marker is committed with
                        // the job's completion record, so a resume skips
                        // this job instead of re-tripping the panic.
                        delta.candidates.truncate(rollback.0);
                        delta.variants_tested = rollback.1;
                        delta.variants_ub_skipped = rollback.2;
                        delta.candidates.push(panicked_finding(
                            file,
                            shard,
                            &buf,
                            config,
                            panic_message(payload.as_ref()),
                        ));
                        telemetry.counter(names::ORCH_PANICS, 1);
                    }
                    if killed {
                        return;
                    }
                    // Commit the tail delta (skipped when nothing
                    // accrued since the last checkpoint — an empty
                    // `Progress` replays as a no-op, so eliding it saves
                    // an fsync without changing resume semantics) and
                    // the job's completion.
                    let dirty = emitted != last_commit
                        || delta.file_processed
                        || delta.variants_tested != 0
                        || !delta.candidates.is_empty();
                    if dirty {
                        sink.commit(i, emitted, &mut delta, &mut cont);
                    }
                    sink.append("job completion record", &encode_job_done(i));
                    continuations.lock().expect("poisoned")[i] = Some(cont);
                    if telemetry.enabled() {
                        telemetry.span(
                            names::ORCH_JOB,
                            &format!("file={file_idx} shard={shard}"),
                            job_timer.stop_nanos(),
                        );
                    }
                    telemetry.counter(names::ORCH_JOBS_DONE, 1);
                }
            });
        }
    });
    if stop.load(Ordering::Relaxed) {
        if telemetry.enabled() {
            telemetry.span(names::ORCH_RUN, "interrupted", run_timer.stop_nanos());
        }
        return Outcome {
            status: CampaignStatus::Interrupted,
            warnings: warnings.into_inner().expect("poisoned"),
        };
    }
    sink.append("campaign completion record", &encode_campaign_done());
    let continuations = continuations.into_inner().expect("poisoned");
    let outputs = jobs
        .into_iter()
        .zip(continuations)
        .map(|(job, cont)| {
            let mut out = job.partial;
            if let Some(cont) = cont {
                out.absorb(cont);
            }
            out
        })
        .collect();
    let merge_timer = Timer::start(telemetry);
    let report = merge_outputs(outputs);
    if telemetry.enabled() {
        telemetry.span(names::ORCH_MERGE, "", merge_timer.stop_nanos());
        telemetry.span(names::ORCH_RUN, "complete", run_timer.stop_nanos());
    }
    Outcome {
        status: CampaignStatus::Complete(report),
        warnings: warnings.into_inner().expect("poisoned"),
    }
}

/// A supervised in-memory campaign: [`crate::run_campaign_parallel`]
/// with the [`Outcome`] (and its absorbed-fault warnings) exposed.
/// Always completes — there is no checkpoint sink to fail and no
/// simulated-kill budget.
pub fn campaign(
    files: &[TestFile],
    config: &CampaignConfig,
    workers: usize,
    policy: &FaultPolicy,
) -> Outcome {
    campaign_oracle(files, config, workers, Oracle::Incremental, *policy)
}

/// [`campaign`] with the oracle dispatched through a
/// [`CompilerBackend`].
pub fn campaign_with_backend(
    files: &[TestFile],
    config: &CampaignConfig,
    backend: &dyn CompilerBackend,
    workers: usize,
    policy: &FaultPolicy,
) -> Outcome {
    campaign_oracle(files, config, workers, Oracle::Backend(backend), *policy)
}

pub(crate) fn campaign_oracle(
    files: &[TestFile],
    config: &CampaignConfig,
    workers: usize,
    oracle: Oracle<'_>,
    policy: FaultPolicy,
) -> Outcome {
    let workers = workers.max(1);
    run(Spec {
        files,
        config,
        shards_per_file: workers,
        jobs: (0..files.len() * workers).map(|_| JobState::default()).collect(),
        workers,
        every: u64::MAX,
        stop_after: None,
        journal: None,
        oracle,
        policy,
    })
}

/// A supervised checkpointed campaign:
/// [`crate::checkpoint::run_campaign_checkpointed`] with an explicit
/// [`FaultPolicy`] and the [`Outcome`] exposed.
///
/// # Errors
///
/// Returns [`CheckpointError::Journal`] when the journal cannot be
/// *created*. Append failures after that no longer abort the run — they
/// degrade it (see [`FaultPolicy`]).
pub fn campaign_checkpointed(
    files: &[TestFile],
    config: &CampaignConfig,
    workers: usize,
    path: impl AsRef<Path>,
    options: &CheckpointOptions,
    policy: &FaultPolicy,
) -> Result<Outcome, CheckpointError> {
    crate::checkpoint::run_checkpointed_supervised(
        files,
        config,
        workers,
        path.as_ref(),
        options,
        Oracle::Incremental,
        *policy,
    )
}

/// [`campaign_checkpointed`] with the oracle dispatched through a
/// [`CompilerBackend`].
///
/// # Errors
///
/// As [`campaign_checkpointed`].
pub fn campaign_checkpointed_with_backend(
    files: &[TestFile],
    config: &CampaignConfig,
    workers: usize,
    path: impl AsRef<Path>,
    options: &CheckpointOptions,
    backend: &dyn CompilerBackend,
    policy: &FaultPolicy,
) -> Result<Outcome, CheckpointError> {
    crate::checkpoint::run_checkpointed_supervised(
        files,
        config,
        workers,
        path.as_ref(),
        options,
        Oracle::Backend(backend),
        *policy,
    )
}

/// A supervised resume: [`crate::checkpoint::resume_campaign`] with an
/// explicit [`FaultPolicy`] and the [`Outcome`] exposed. The journal is
/// replayed **streamingly** ([`spe_persist::JournalIter`]) — resume
/// memory is bounded by the live per-job state, not the journal size.
///
/// # Errors
///
/// As [`crate::checkpoint::resume_campaign`].
pub fn resume(
    path: impl AsRef<Path>,
    workers: usize,
    options: &CheckpointOptions,
    policy: &FaultPolicy,
) -> Result<Outcome, CheckpointError> {
    crate::checkpoint::resume_supervised(
        path.as_ref(),
        workers,
        options,
        Oracle::Incremental,
        *policy,
    )
}

/// [`resume`] for journals recorded under a [`CompilerBackend`]; the
/// backend must match the manifest's recorded identity or the resume is
/// refused.
///
/// # Errors
///
/// As [`crate::checkpoint::resume_campaign_with_backend`].
pub fn resume_with_backend(
    path: impl AsRef<Path>,
    backend: &dyn CompilerBackend,
    workers: usize,
    options: &CheckpointOptions,
    policy: &FaultPolicy,
) -> Result<Outcome, CheckpointError> {
    crate::checkpoint::resume_supervised(
        path.as_ref(),
        workers,
        options,
        Oracle::Backend(backend),
        *policy,
    )
}
