//! A shared work-stealing queue for campaign worker pools.
//!
//! Jobs are dealt into per-worker deques up front (contiguous runs, so a
//! worker drains one file's shards back-to-back and keeps its prepared
//! variant space hot); each worker pops from the **front** of its own
//! deque and, when empty, steals from the **back** of a victim's — the
//! jobs its owner would reach last. Compared with a single shared cursor,
//! skew from one slow job no longer serializes the tail: whoever runs dry
//! takes work from whoever has the most left.
//!
//! Completion order does not affect campaign results — outputs are folded
//! in deterministic job order afterwards — so stealing is free to be
//! opportunistic.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A fixed set of jobs distributed over per-worker stealable deques.
///
/// # Examples
///
/// ```
/// use spe_harness::steal::WorkQueue;
///
/// let q = WorkQueue::new(vec!['a', 'b', 'c'], 2);
/// let mut got = Vec::new();
/// while let Some(job) = q.pop(0) {
///     got.push(job);
/// }
/// got.sort();
/// assert_eq!(got, vec!['a', 'b', 'c']); // worker 0 drained its own deque, then stole
/// assert_eq!(q.pop(1), None);
/// ```
#[derive(Debug)]
pub struct WorkQueue<T> {
    deques: Vec<Mutex<VecDeque<T>>>,
}

impl<T> WorkQueue<T> {
    /// Deals `jobs` into `workers` deques in contiguous near-even runs
    /// (job order is preserved within and across deques).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(jobs: Vec<T>, workers: usize) -> WorkQueue<T> {
        assert!(workers > 0, "at least one worker is required");
        let total = jobs.len();
        let mut deques: Vec<Mutex<VecDeque<T>>> = Vec::with_capacity(workers);
        let mut jobs = jobs.into_iter();
        for w in 0..workers {
            // Near-even contiguous cut, same arithmetic as shard ranges.
            let start = total * w / workers;
            let end = total * (w + 1) / workers;
            deques.push(Mutex::new(jobs.by_ref().take(end - start).collect()));
        }
        WorkQueue { deques }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Takes the next job for `worker`: the front of its own deque, or —
    /// once that is empty — the back of the first non-empty victim,
    /// scanning round-robin from its right neighbour. Returns `None` only
    /// when every deque is empty.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= self.workers()`.
    pub fn pop(&self, worker: usize) -> Option<T> {
        self.pop_from(worker).map(|(job, _)| job)
    }

    /// [`WorkQueue::pop`], also reporting whether the job was stolen
    /// from a victim's deque rather than popped from the worker's own
    /// (the signal behind the orchestrator's steal counter).
    ///
    /// # Panics
    ///
    /// Panics if `worker >= self.workers()`.
    pub fn pop_from(&self, worker: usize) -> Option<(T, bool)> {
        assert!(worker < self.deques.len(), "worker {worker} out of range");
        if let Some(job) = self.deques[worker].lock().expect("poisoned").pop_front() {
            return Some((job, false));
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            if let Some(job) = self.deques[victim].lock().expect("poisoned").pop_back() {
                return Some((job, true));
            }
        }
        None
    }

    /// Jobs currently queued across all deques (jobs already popped and
    /// in flight are not counted). Takes each deque lock briefly, so
    /// callers gate this behind an enabled telemetry sink.
    pub fn len(&self) -> usize {
        self.deques
            .iter()
            .map(|d| d.lock().expect("poisoned").len())
            .sum()
    }

    /// Whether no jobs remain queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_job_is_popped_exactly_once_single_worker() {
        let q = WorkQueue::new((0..10).collect(), 1);
        let mut got = Vec::new();
        while let Some(j) = q.pop(0) {
            got.push(j);
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn owner_pops_its_own_contiguous_run_first() {
        let q = WorkQueue::new((0..8).collect(), 4);
        // Worker 2's run is [4, 5]; it must see those before stealing.
        assert_eq!(q.pop(2), Some(4));
        assert_eq!(q.pop(2), Some(5));
        // Now it steals from a neighbour's back.
        let stolen = q.pop(2).expect("work remains");
        assert!(stolen != 4 && stolen != 5);
    }

    #[test]
    fn stealing_takes_from_the_victims_back() {
        let q = WorkQueue::new((0..6).collect(), 2);
        // Worker 1 drains its own run [3, 4, 5], then steals worker 0's
        // back job (2) while worker 0 would pop 0 next.
        assert_eq!(q.pop(1), Some(3));
        assert_eq!(q.pop(1), Some(4));
        assert_eq!(q.pop(1), Some(5));
        assert_eq!(q.pop(1), Some(2), "steal takes the victim's back");
        assert_eq!(q.pop(0), Some(0), "owner still pops its front");
    }

    #[test]
    fn pop_from_flags_steals_and_len_tracks_remaining() {
        let q = WorkQueue::new((0..4).collect::<Vec<i32>>(), 2);
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop_from(0), Some((0, false)), "own front is not a steal");
        assert_eq!(q.pop_from(0), Some((1, false)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_from(0), Some((3, true)), "victim's back is a steal");
        assert_eq!(q.pop_from(1), Some((2, false)));
        assert!(q.is_empty());
        assert_eq!(q.pop_from(0), None);
    }

    #[test]
    fn more_workers_than_jobs_still_covers_everything() {
        let q = WorkQueue::new(vec![7usize, 8], 5);
        let mut got: Vec<usize> = (0..5).filter_map(|w| q.pop(w)).collect();
        got.sort();
        assert_eq!(got, vec![7, 8]);
        for w in 0..5 {
            assert_eq!(q.pop(w), None);
        }
    }

    #[test]
    fn concurrent_workers_partition_the_jobs() {
        let jobs = 200usize;
        let q = WorkQueue::new((0..jobs).collect(), 8);
        let seen = Mutex::new(HashSet::new());
        let popped = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for w in 0..8 {
                let q = &q;
                let seen = &seen;
                let popped = &popped;
                scope.spawn(move || {
                    while let Some(j) = q.pop(w) {
                        assert!(seen.lock().expect("poisoned").insert(j), "job {j} duplicated");
                        popped.fetch_add(1, Ordering::Relaxed);
                        if j % 7 == 0 {
                            std::thread::yield_now(); // uneven job cost
                        }
                    }
                });
            }
        });
        assert_eq!(popped.into_inner(), jobs);
    }
}
