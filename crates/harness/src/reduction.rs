//! Post-campaign test-case reduction and fingerprint deduplication.
//!
//! A [`crate::CampaignReport`] fresh out of [`crate::run_campaign`]
//! carries, for every unique-signature finding, the **first raw
//! reproducer** — often a whole corpus file of which a single statement
//! matters. This stage (the pipeline step between campaign merge and
//! report emission; see `DESIGN.md` §7) makes the findings actionable:
//!
//! 1. every finding's reproducer is shrunk with the `spe-reduce`
//!    hierarchical reducer, under the oracle *"the same `simcc`
//!    configuration still observes the same [`crate::FindingKind`] and
//!    bug id"* ([`reproduces`]);
//! 2. each reduced witness is canonicalized and fingerprinted, and a
//!    second dedup pass marks findings whose fingerprints collide
//!    ([`Finding::fingerprint_duplicate_of`]) — catching
//!    distinct-signature duplicates of one root cause (the same bug
//!    reported from several optimization levels or corpus files) without
//!    consulting the seeded-bug registry, the way the paper's authors
//!    manually folded Table 3/4 reports into root causes;
//! 3. a **trigger-aware** fold then catches what the fingerprint pass
//!    structurally cannot: duplicates from different corpus files that
//!    ddmin to *different* minimal programs of one root cause. Each
//!    witness carries a [`ReducedWitness::trigger`] signature — the
//!    observed divergence class from [`spe_simcc::Compiler::observe`]
//!    (ICE signature, wrong-code [`spe_simcc::Divergence`] class, or
//!    slow-compile) plus the witness's bug-site statement-kind shape
//!    ([`spe_reduce::stmts::stmt_kind_signature`]) — and findings that
//!    are still unmerged but share a trigger fold into the first root
//!    with that trigger.
//!
//! Reduction jobs fan out over the same work-stealing
//! [`crate::steal::WorkQueue`] the parallel campaign uses; since each
//! job is a pure deterministic function of its finding, the report is
//! **byte-identical for every worker count** — witnesses are written into
//! per-finding slots and both dedup folds walk them in finding order.
//! For long campaigns the stage is also checkpointable: see
//! [`crate::checkpoint::reduce_findings_checkpointed`] and `DESIGN.md`
//! §9.

use crate::steal::WorkQueue;
use crate::{CampaignReport, Finding, FindingKind, Oracle};
use spe_minic::ast::Program;
use spe_reduce::stmts::stmt_kind_signature;
use spe_reduce::{reduce, ReduceConfig};
use spe_simcc::backend::CompilerBackend;
use spe_simcc::{Compiler, Divergence, Observation};
use std::collections::HashMap;
use std::sync::Mutex;

/// A finding's reduced witness plus reduction bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReducedWitness {
    /// The reduced, canonicalized reproducer (never larger than the raw
    /// one; still reproduces the finding under its configuration).
    pub source: String,
    /// Structural fingerprint of the witness (α-invariant, hex).
    pub fingerprint: String,
    /// Trigger signature: observed divergence class (`|`-joined with)
    /// the witness's statement-kind shape. Coarser than the fingerprint;
    /// the second dedup fold keys on it.
    pub trigger: String,
    /// Byte size of the raw first reproducer.
    pub original_bytes: usize,
    /// Byte size of [`ReducedWitness::source`].
    pub reduced_bytes: usize,
    /// Oracle invocations the reduction spent.
    pub oracle_calls: usize,
}

impl ReducedWitness {
    /// How many times smaller the witness is than the raw reproducer.
    pub fn shrink_ratio(&self) -> f64 {
        self.original_bytes as f64 / self.reduced_bytes.max(1) as f64
    }
}

/// Options of the reduction stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionOptions {
    /// Interpreter/VM fuel for wrong-code oracle re-checks; use the
    /// campaign's [`crate::CampaignConfig::fuel`] so the oracle agrees
    /// with what the campaign observed.
    pub fuel: u64,
    /// Reducer limits.
    pub reduce: ReduceConfig,
}

impl Default for ReductionOptions {
    fn default() -> Self {
        ReductionOptions {
            fuel: 50_000,
            reduce: ReduceConfig::default(),
        }
    }
}

/// Whether an observation still certifies `finding`: same
/// [`FindingKind`], same bug id (for wrong code, an unattributed
/// finding — `bug_id == None` — must stay unattributed). Shared by the
/// direct and backend-dispatched reduction oracles.
fn verdict_matches(finding: &Finding, obs: &Observation) -> bool {
    match finding.kind {
        FindingKind::Crash => obs.ice.as_ref().map(|ice| ice.bug_id) == finding.bug_id,
        FindingKind::Performance => match finding.bug_id {
            Some(bug) => obs.ice.is_none() && obs.slow_compile.contains(&bug),
            None => obs.ice.is_none() && !obs.slow_compile.is_empty(),
        },
        FindingKind::WrongCode => {
            obs.wrong_code
                && match finding.bug_id {
                    Some(bug) => obs.miscompiled_by.contains(&bug),
                    None => obs.miscompiled_by.is_empty(),
                }
        }
        // Quarantine markers record infrastructure failing on a variant
        // (backend machinery, or a panicking worker), not a compiler
        // verdict: no observation certifies them.
        FindingKind::BackendDegraded | FindingKind::JobPanicked => false,
    }
}

/// Observes `p` under `finding`'s compiler configuration through the
/// given oracle. `None` when a backend reports machinery failure
/// mid-reduction — the candidate shrink is conservatively treated as
/// non-reproducing, so reduction never commits a witness it could not
/// re-check.
fn observe_oracle(finding: &Finding, p: &Program, fuel: u64, oracle: Oracle<'_>) -> Option<Observation> {
    let cc = Compiler::new(finding.compiler, finding.opt);
    let wrong_code_fuel = (finding.kind == FindingKind::WrongCode).then_some(fuel);
    match oracle {
        // Reduction probes arbitrary shrunken programs, not variants of
        // one skeleton — there is nothing for the incremental cache to
        // splice, so both in-process paths observe directly.
        Oracle::Direct | Oracle::Incremental => Some(cc.observe(p, wrong_code_fuel)),
        Oracle::Backend(b) => b
            .observe_config(&spe_minic::print_program(p), cc, wrong_code_fuel)
            .ok(),
    }
}

/// Whether `p` still reproduces `finding` under the finding's compiler
/// configuration: same [`FindingKind`], same bug id (for wrong code, an
/// unattributed finding — `bug_id == None` — must stay unattributed).
pub fn reproduces(finding: &Finding, p: &Program, fuel: u64) -> bool {
    reproduces_oracle(finding, p, fuel, Oracle::Direct)
}

fn reproduces_oracle(finding: &Finding, p: &Program, fuel: u64, oracle: Oracle<'_>) -> bool {
    observe_oracle(finding, p, fuel, oracle).is_some_and(|obs| verdict_matches(finding, &obs))
}

/// The trigger signature of a reduced witness: the divergence class the
/// finding's compiler configuration observes on it, joined with its
/// statement-kind shape. Two different minimal programs of one root
/// cause typically agree on both; two distinct bugs rarely agree on the
/// pair — which is what makes the key safe to merge on. The key is
/// deliberately coarse (that is its job: folding what the exact
/// fingerprint cannot), so like the paper's manual root-cause folding
/// it trades a residual over-merge risk for recall; the tests pin its
/// agreement with the ground-truth registry on the covered corpora.
fn trigger_signature(finding: &Finding, p: &Program, fuel: u64, oracle: Oracle<'_>) -> String {
    let class = match observe_oracle(finding, p, fuel, oracle) {
        Some(obs) => match finding.kind {
            FindingKind::Crash => obs.ice.as_ref().map_or("ice", |ice| ice.signature),
            FindingKind::WrongCode => obs.divergence.map_or("wrong-code", Divergence::label),
            FindingKind::Performance => "slow-compile",
            FindingKind::BackendDegraded => "backend-degraded",
            FindingKind::JobPanicked => "job-panicked",
        },
        // Backend machinery failed on the final witness; the class is
        // unknown, and an unknown class must never fold with a known one.
        None => "unobserved",
    };
    format!("{class}|{}", stmt_kind_signature(p))
}

/// Reduces one finding's reproducer; `None` when the reproducer does not
/// reproduce under re-check (never the case for campaign-produced
/// findings), fails to parse, or the finding is a
/// [`FindingKind::BackendDegraded`] / [`FindingKind::JobPanicked`]
/// quarantine marker (its "reproducer" is the variant the
/// infrastructure failed on — there is no verdict to preserve, so
/// nothing to reduce).
pub(crate) fn reduce_one_oracle(
    finding: &Finding,
    options: &ReductionOptions,
    oracle: Oracle<'_>,
) -> Option<ReducedWitness> {
    if matches!(
        finding.kind,
        FindingKind::BackendDegraded | FindingKind::JobPanicked
    ) {
        return None;
    }
    let mut pred = |p: &Program| reproduces_oracle(finding, p, options.fuel, oracle);
    let reduction = reduce(&finding.reproducer, &options.reduce, &mut pred).ok()?;
    let witness = spe_minic::parse(&reduction.witness).ok()?;
    Some(ReducedWitness {
        trigger: trigger_signature(finding, &witness, options.fuel, oracle),
        source: reduction.witness,
        fingerprint: reduction.fingerprint.to_string(),
        original_bytes: reduction.original_bytes,
        reduced_bytes: reduction.reduced_bytes,
        oracle_calls: reduction.oracle_calls,
    })
}

/// [`reduce_one_oracle`] under panic isolation: a reducer (or oracle)
/// panic on one malformed finding records that finding as irreducible
/// with a stderr warning instead of killing the whole fan-out
/// (`DESIGN.md` §11). Deterministic — a given finding either always
/// panics or never does — so reports stay byte-identical across worker
/// counts and kill/resume histories.
pub(crate) fn reduce_one_isolated(
    finding: &Finding,
    options: &ReductionOptions,
    oracle: Oracle<'_>,
) -> Option<ReducedWitness> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        reduce_one_oracle(finding, options, oracle)
    })) {
        Ok(witness) => witness,
        Err(payload) => {
            eprintln!(
                "spe-harness: warning: reduction of finding {:?} panicked ({}); \
                 recording it as irreducible and continuing",
                finding.signature,
                crate::orchestrate::panic_message(payload.as_ref())
            );
            None
        }
    }
}

/// Runs the reduction stage over every finding of `report`, fanning jobs
/// across `workers` threads of a work-stealing pool, then applies the
/// fingerprint dedup pass. The resulting report is byte-identical for
/// every worker count.
pub fn reduce_findings(report: &mut CampaignReport, options: &ReductionOptions, workers: usize) {
    reduce_findings_oracle(report, options, workers, Oracle::Direct);
}

/// [`reduce_findings`] with the re-check oracle dispatched through
/// `backend`: every candidate shrink is re-observed by
/// [`CompilerBackend::observe_config`] on the printed program, so
/// witnesses are certified by the same oracle that found them. Use the
/// backend the campaign ran under — a different one would re-check a
/// different compiler.
pub fn reduce_findings_with_backend(
    report: &mut CampaignReport,
    options: &ReductionOptions,
    workers: usize,
    backend: &dyn CompilerBackend,
) {
    reduce_findings_oracle(report, options, workers, Oracle::Backend(backend));
}

fn reduce_findings_oracle(
    report: &mut CampaignReport,
    options: &ReductionOptions,
    workers: usize,
    oracle: Oracle<'_>,
) {
    let jobs = report.findings.len();
    if jobs == 0 {
        return;
    }
    let telemetry = spe_telemetry::global();
    let pass_timer = spe_telemetry::Timer::start(&*telemetry);
    let workers = workers.clamp(1, jobs);
    let slots: Mutex<Vec<Option<ReducedWitness>>> = Mutex::new(vec![None; jobs]);
    if workers == 1 {
        let mut slots = slots.lock().expect("poisoned");
        for (i, f) in report.findings.iter().enumerate() {
            slots[i] = reduce_one_isolated(f, options, oracle);
        }
        drop(slots);
    } else {
        let queue = WorkQueue::new((0..jobs).collect(), workers);
        let findings = &report.findings;
        std::thread::scope(|scope| {
            for w in 0..workers {
                let queue = &queue;
                let slots = &slots;
                scope.spawn(move || {
                    while let Some(i) = queue.pop(w) {
                        // Reduction is a pure function of the finding, so
                        // completion order cannot affect the report.
                        let witness = reduce_one_isolated(&findings[i], options, oracle);
                        slots.lock().expect("poisoned")[i] = witness;
                    }
                });
            }
        });
    }
    let slots = slots.into_inner().expect("poisoned");
    attach_and_dedup(report, slots);
    if telemetry.enabled() {
        telemetry.span(
            spe_telemetry::names::REDUCE_PASS,
            &format!("findings={jobs} workers={workers}"),
            pass_timer.stop_nanos(),
        );
    }
}

/// Attaches witnesses in finding order and runs both ground-truth-free
/// dedup folds:
///
/// 1. **fingerprint** — the first finding with a given `(family, kind,
///    fingerprint)` key is the root; later ones get
///    [`Finding::fingerprint_duplicate_of`];
/// 2. **trigger** — findings still unmerged after pass 1 fold into the
///    first root sharing their `(family, kind, trigger)` key, catching
///    cross-file duplicates whose witnesses ddmin to *different* minimal
///    programs of one root cause (different fingerprints, same observed
///    divergence class and bug-site statement shape).
pub(crate) fn attach_and_dedup(report: &mut CampaignReport, witnesses: Vec<Option<ReducedWitness>>) {
    let mut seen: HashMap<(String, FindingKind, String), String> = HashMap::new();
    for (finding, witness) in report.findings.iter_mut().zip(witnesses) {
        finding.reduced = witness;
        finding.fingerprint_duplicate_of = None;
        let Some(reduced) = &finding.reduced else {
            continue;
        };
        let key = (
            finding.compiler.family.to_string(),
            finding.kind,
            reduced.fingerprint.clone(),
        );
        match seen.get(&key) {
            Some(first) if *first != finding.signature => {
                finding.fingerprint_duplicate_of = Some(first.clone());
            }
            Some(_) => {}
            None => {
                seen.insert(key, finding.signature.clone());
            }
        }
    }
    // Second fold: trigger-aware merging of the roots pass 1 left apart.
    let mut trigger_roots: HashMap<(String, FindingKind, String), String> = HashMap::new();
    for finding in report.findings.iter_mut() {
        if finding.fingerprint_duplicate_of.is_some() {
            continue;
        }
        let Some(reduced) = &finding.reduced else {
            continue;
        };
        let key = (
            finding.compiler.family.to_string(),
            finding.kind,
            reduced.trigger.clone(),
        );
        match trigger_roots.get(&key) {
            Some(first) if *first != finding.signature => {
                finding.fingerprint_duplicate_of = Some(first.clone());
            }
            Some(_) => {}
            None => {
                trigger_roots.insert(key, finding.signature.clone());
            }
        }
    }
}

impl CampaignReport {
    /// Findings surviving the fingerprint dedup pass — the corrected
    /// root-cause count the paper reaches by manual triage (Table 3/4's
    /// "Duplicate" folding), derived here without ground-truth bug ids.
    pub fn corrected_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.fingerprint_duplicate_of.is_none())
    }

    /// Number of findings the fingerprint pass folded into an earlier
    /// root cause.
    pub fn fingerprint_duplicates(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.fingerprint_duplicate_of.is_some())
            .count()
    }

    /// Mean shrink ratio (raw reproducer bytes / witness bytes) over all
    /// reduced findings; `None` until the reduction stage ran.
    pub fn mean_shrink_ratio(&self) -> Option<f64> {
        let ratios: Vec<f64> = self
            .findings
            .iter()
            .filter_map(|f| f.reduced.as_ref())
            .map(ReducedWitness::shrink_ratio)
            .collect();
        if ratios.is_empty() {
            return None;
        }
        Some(ratios.iter().sum::<f64>() / ratios.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_campaign, CampaignConfig};
    use spe_core::Algorithm;
    use spe_corpus::seeds;
    use spe_simcc::CompilerId;

    fn campaign() -> (CampaignReport, CampaignConfig) {
        let config = CampaignConfig {
            compilers: vec![
                Compiler::new(CompilerId::gcc(700), 0),
                Compiler::new(CompilerId::gcc(700), 2),
                Compiler::new(CompilerId::gcc(700), 3),
                Compiler::new(CompilerId::clang(390), 3),
            ],
            budget: 200,
            algorithm: Algorithm::Paper,
            check_wrong_code: true,
            fuel: 20_000,
        };
        (run_campaign(&seeds::all(), &config), config)
    }

    #[test]
    fn every_finding_gains_a_reproducing_witness() {
        let (mut report, config) = campaign();
        assert!(!report.findings.is_empty());
        reduce_findings(
            &mut report,
            &ReductionOptions {
                fuel: config.fuel,
                ..ReductionOptions::default()
            },
            4,
        );
        for f in &report.findings {
            let reduced = f.reduced.as_ref().unwrap_or_else(|| {
                panic!("finding {:?} has no witness", f.signature);
            });
            assert!(reduced.reduced_bytes <= reduced.original_bytes);
            let p = spe_minic::parse(&reduced.source).expect("witness parses");
            spe_minic::analyze(&p).expect("witness scope-checks");
            assert!(
                reproduces(f, &p, config.fuel),
                "witness for {:?} no longer reproduces:\n{}",
                f.signature,
                reduced.source
            );
        }
    }

    #[test]
    fn fingerprint_pass_merges_cross_opt_duplicates() {
        // gcc trunk at -O2 and -O3 exposes the same alias bug through the
        // same variant, under two different wrong-code signatures; the
        // fingerprint pass must fold them without looking at bug ids.
        let (mut report, config) = campaign();
        reduce_findings(
            &mut report,
            &ReductionOptions {
                fuel: config.fuel,
                ..ReductionOptions::default()
            },
            2,
        );
        let merged: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.fingerprint_duplicate_of.is_some())
            .collect();
        assert!(
            !merged.is_empty(),
            "expected at least one fingerprint merge"
        );
        for f in &merged {
            let first_sig = f.fingerprint_duplicate_of.as_ref().expect("merged");
            assert_ne!(
                first_sig, &f.signature,
                "fingerprint dedup merges distinct-signature findings"
            );
            // The merge agrees with the ground-truth registry.
            let root = report
                .findings
                .iter()
                .find(|g| &g.signature == first_sig)
                .expect("root finding exists");
            assert_eq!(root.bug_id, f.bug_id, "merge matches ground truth");
        }
        assert!(report.corrected_findings().count() < report.findings.len());
    }

    #[test]
    fn trigger_fold_merges_cross_file_duplicates_with_distinct_witnesses() {
        // The fingerprint pass cannot fold two findings whose witnesses
        // ddmin to *different* minimal programs of one root cause (the
        // ROADMAP's remaining reduction refinement). The trigger-aware
        // fold must: on these corpora a bug reached from two files
        // reduces to structurally distinct witnesses that share their
        // divergence class + statement shape. Every fold must still
        // agree with the ground-truth registry.
        use spe_corpus::{generate, CorpusConfig};
        for seed in [2u64, 4] {
            let files = generate(&CorpusConfig { files: 6, seed });
            let config = CampaignConfig {
                compilers: vec![
                    Compiler::new(CompilerId::gcc(700), 0),
                    Compiler::new(CompilerId::gcc(700), 2),
                    Compiler::new(CompilerId::gcc(700), 3),
                    Compiler::new(CompilerId::clang(390), 3),
                ],
                budget: 80,
                algorithm: Algorithm::Paper,
                check_wrong_code: true,
                fuel: 15_000,
            };
            let mut report = run_campaign(&files, &config);
            reduce_findings(
                &mut report,
                &ReductionOptions {
                    fuel: config.fuel,
                    ..ReductionOptions::default()
                },
                4,
            );
            let mut cross_file_distinct_witness = 0;
            for f in &report.findings {
                let Some(root_sig) = &f.fingerprint_duplicate_of else {
                    continue;
                };
                let root = report
                    .findings
                    .iter()
                    .find(|g| &g.signature == root_sig)
                    .expect("root exists");
                assert_eq!(f.bug_id, root.bug_id, "fold agrees with ground truth");
                let (a, b) = (
                    f.reduced.as_ref().expect("witness"),
                    root.reduced.as_ref().expect("witness"),
                );
                if f.file != root.file && a.fingerprint != b.fingerprint {
                    assert_eq!(a.trigger, b.trigger, "folded via the trigger key");
                    cross_file_distinct_witness += 1;
                }
            }
            assert!(
                cross_file_distinct_witness >= 1,
                "seed {seed}: no cross-file distinct-witness fold happened"
            );
        }
    }

    #[test]
    fn reduction_is_identical_for_every_worker_count() {
        let (report, config) = campaign();
        let options = ReductionOptions {
            fuel: config.fuel,
            ..ReductionOptions::default()
        };
        let mut serial = report.clone();
        reduce_findings(&mut serial, &options, 1);
        for workers in [2usize, 4, 16] {
            let mut parallel = report.clone();
            reduce_findings(&mut parallel, &options, workers);
            assert_eq!(parallel, serial, "{workers} workers diverged");
        }
    }

    #[test]
    fn witnesses_shrink_substantially() {
        let (mut report, config) = campaign();
        reduce_findings(
            &mut report,
            &ReductionOptions {
                fuel: config.fuel,
                ..ReductionOptions::default()
            },
            4,
        );
        let mean = report.mean_shrink_ratio().expect("reduced");
        assert!(mean >= 1.5, "mean shrink on tiny seed files: {mean:.2}");
    }
}
