//! Multi-host campaign partitioning with deterministic journal merge
//! (`DESIGN.md` §14) — the step from "resumable process" to
//! "fleet-sized campaign service".
//!
//! The SPE variant space is exactly countable, which makes it exactly
//! partitionable: a [`FleetPlan`] flattens the (file × shard) job space
//! file-major into `0..jobs` and deals it across `n_hosts` by
//! [`spe_combinatorics::even_ranges`] — pure index arithmetic, nothing
//! materialized. Within a job, the shard boundaries and the `skip_to`
//! exact-unranking machinery already make any emission-index sub-range
//! independently enumerable, so **no host touches any variant outside
//! its slice**.
//!
//! * [`run_host`] runs one host's slice through the supervised
//!   orchestrator ([`crate::orchestrate`]) into a host-scoped journal
//!   whose manifest pins `(fleet_id, n_hosts, host_id)` next to the
//!   backend identity — every supervision layer (panic quarantine,
//!   checkpoint cadence, journal-fault degradation) applies per host
//!   unchanged. A killed host resumes with [`resume_host`], on any
//!   worker count, any number of times.
//! * [`merge_journals`] streams every host journal
//!   ([`spe_persist::JournalSet`]), validates that the manifests
//!   describe one fleet (refusing mixed fleets, duplicate host ids, and
//!   missing hosts with an error naming the gap), and folds the
//!   replayed Progress/JobDone/quarantine frames into one
//!   [`CampaignReport`] **byte-identical** to an uninterrupted
//!   single-host run of the same configuration.
//!
//! **Why the merge is deterministic.** Host `h` owns the contiguous job
//! range `even_ranges(jobs, n_hosts)[h]`; the ranges partition the job
//! space exactly (each job owned by exactly one host), and each owned
//! job's replayed [`ShardOutput`](crate::checkpoint) equals the
//! uninterrupted in-memory output of that job by the §9 resume
//! argument. The merge reassembles the full per-job output vector in
//! job order and folds it through the same `merge_outputs` every other
//! entry point uses — so finding order, dedup decisions and counters
//! cannot depend on host count, per-host worker counts, completion
//! order, or kill/resume history. The distributed-identity suite
//! (`tests/fleet_identity.rs`, `tests/fleet_faults.rs`) pins
//! `merge(fleet(N)) ≡ serial` for N ∈ {1, 2, 3, 8} across worker
//! counts, host-death/resume cycles, and randomized corpora.

use crate::checkpoint::{
    CampaignStatus, CheckpointError, CheckpointOptions, FleetStamp, JobState, Manifest, Replay,
};
use crate::orchestrate::{self, FaultPolicy, Outcome, Spec};
use crate::{merge_outputs, CampaignConfig, CampaignReport, Oracle, OraclePath};
use spe_combinatorics::even_ranges;
use spe_corpus::TestFile;
use spe_persist::{Journal, JournalError, JournalSet, TailCorruption};
use spe_simcc::backend::CompilerBackend;
use spe_telemetry::{names, Timer};
use std::fmt;
use std::ops::Range;
use std::path::{Path, PathBuf};

/// How a fleet campaign's (file × shard) job space is dealt across
/// hosts. The plan is pure data: every host (and the merge) derives the
/// same slices from `(n_hosts, shards_per_file)` and the corpus size,
/// so there is no coordinator and nothing to gossip — a host needs only
/// the corpus, the config, the plan, and its own id.
///
/// `shards_per_file` fixes the job decomposition **independently of any
/// host's worker count** (unlike single-host entry points, where the
/// two coincide): hosts with different core counts run the same job
/// space, and the merged report is byte-identical to a single-host run
/// whose `workers == shards_per_file`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetPlan {
    /// Caller-chosen campaign identity, stamped into every host journal;
    /// [`merge_journals`] refuses journals from different fleets.
    pub fleet_id: u64,
    /// Hosts the job space is dealt across.
    pub n_hosts: usize,
    /// Shards each file's variant space is cut into (the job
    /// decomposition `files × shards_per_file`).
    pub shards_per_file: usize,
}

impl FleetPlan {
    /// A plan for `n_hosts` hosts over a `files × shards_per_file` job
    /// space; both counts are clamped to at least 1.
    pub fn new(fleet_id: u64, n_hosts: usize, shards_per_file: usize) -> FleetPlan {
        FleetPlan {
            fleet_id,
            n_hosts: n_hosts.max(1),
            shards_per_file: shards_per_file.max(1),
        }
    }

    /// Total jobs for a corpus of `files` files.
    pub fn job_count(&self, files: usize) -> usize {
        files * self.shards_per_file.max(1)
    }

    /// The contiguous job range host `host_id` owns — the only jobs it
    /// enumerates, journals, or reports.
    ///
    /// # Panics
    ///
    /// Panics when `host_id >= n_hosts`.
    pub fn host_jobs(&self, host_id: usize, files: usize) -> Range<usize> {
        even_ranges(self.job_count(files), self.n_hosts.max(1))[host_id].clone()
    }

    /// The host that owns `job` (inverse of [`FleetPlan::host_jobs`]).
    /// `None` when `job` is out of range.
    pub fn owner_of(&self, job: usize, files: usize) -> Option<usize> {
        even_ranges(self.job_count(files), self.n_hosts.max(1))
            .iter()
            .position(|r| r.contains(&job))
    }

    fn stamp(&self, host_id: usize) -> FleetStamp {
        FleetStamp {
            fleet_id: self.fleet_id,
            n_hosts: self.n_hosts.max(1) as u32,
            host_id: host_id as u32,
        }
    }
}

/// Errors of [`merge_journals`]: everything that makes a set of host
/// journals *not* one complete, consistent fleet. Each variant names
/// the offending journal (and host) so an operator can fetch or repair
/// exactly what is missing.
#[derive(Debug)]
pub enum FleetError {
    /// A journal failed to open, read, or replay (wraps the underlying
    /// [`CheckpointError`], which names the path).
    Checkpoint(CheckpointError),
    /// No paths were given.
    NoJournals,
    /// The journal's manifest has no fleet stamp — it was written by a
    /// single-host entry point, not [`run_host`].
    NotAFleetJournal {
        /// The offending journal.
        path: PathBuf,
    },
    /// The journal belongs to a different fleet (different `fleet_id`,
    /// host count, configuration, corpus, decomposition, or backend)
    /// than the first journal in the set.
    MixedFleets {
        /// The offending journal.
        path: PathBuf,
        /// What disagreed.
        detail: String,
    },
    /// Two journals claim the same host id.
    DuplicateHost {
        /// The claimed host id.
        host: usize,
        /// The first journal claiming it.
        first: PathBuf,
        /// The second journal claiming it.
        second: PathBuf,
    },
    /// The set covers fewer hosts than the fleet has; the report would
    /// silently miss those hosts' slices.
    MissingHosts {
        /// Host ids with no journal in the set, ascending.
        missing: Vec<usize>,
        /// The fleet's host count.
        n_hosts: usize,
    },
    /// A host's journal records an unfinished job in its slice — the
    /// host was killed and never resumed to completion.
    HostIncomplete {
        /// The unfinished host.
        host: usize,
        /// Its journal.
        path: PathBuf,
        /// The first unfinished job index.
        job: usize,
    },
    /// A host's journal records state for a job outside its slice —
    /// the journal and its fleet stamp disagree.
    ForeignJob {
        /// The offending host.
        host: usize,
        /// Its journal.
        path: PathBuf,
        /// The out-of-slice job index.
        job: usize,
    },
    /// A host's journal has a torn or corrupt tail. A single-host
    /// resume would truncate and recompute the lost frames, but a merge
    /// cannot recompute another host's work — the journal must be
    /// repaired (resume it on its host, or re-run the slice) first.
    TailCorruption {
        /// The offending host.
        host: usize,
        /// Its journal.
        path: PathBuf,
        /// Where and why validation stopped.
        corruption: TailCorruption,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Checkpoint(e) => write!(f, "{e}"),
            FleetError::NoJournals => write!(f, "fleet merge needs at least one host journal"),
            FleetError::NotAFleetJournal { path } => write!(
                f,
                "{} is not a fleet host journal (its manifest carries no fleet stamp); \
                 only journals written by fleet::run_host can be merged",
                path.display()
            ),
            FleetError::MixedFleets { path, detail } => {
                write!(f, "{} belongs to a different fleet: {detail}", path.display())
            }
            FleetError::DuplicateHost {
                host,
                first,
                second,
            } => write!(
                f,
                "host {host} appears twice: {} and {}",
                first.display(),
                second.display()
            ),
            FleetError::MissingHosts { missing, n_hosts } => {
                let gaps: Vec<String> = missing.iter().map(|h| h.to_string()).collect();
                write!(
                    f,
                    "fleet of {n_hosts} hosts is missing the journal{} for host{} {}",
                    if missing.len() == 1 { "" } else { "s" },
                    if missing.len() == 1 { "" } else { "s" },
                    gaps.join(", ")
                )
            }
            FleetError::HostIncomplete { host, path, job } => write!(
                f,
                "host {host} ({}) has not finished job {job} of its slice; \
                 resume it to completion (fleet::resume_host) before merging",
                path.display()
            ),
            FleetError::ForeignJob { host, path, job } => write!(
                f,
                "host {host} ({}) records state for job {job}, which is outside its slice",
                path.display()
            ),
            FleetError::TailCorruption {
                host,
                path,
                corruption,
            } => write!(
                f,
                "host {host} journal {} has an invalid tail: {corruption}; \
                 resume that host (which truncates and recomputes the torn frames) before merging",
                path.display()
            ),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<CheckpointError> for FleetError {
    fn from(e: CheckpointError) -> FleetError {
        FleetError::Checkpoint(e)
    }
}

impl From<JournalError> for FleetError {
    fn from(e: JournalError) -> FleetError {
        FleetError::Checkpoint(CheckpointError::Journal(e))
    }
}

/// Per-host provenance of a merged fleet report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostSummary {
    /// The host's id in the plan.
    pub host_id: usize,
    /// The journal the host's slice was replayed from.
    pub path: PathBuf,
    /// The job range the host owned.
    pub jobs: Range<usize>,
    /// Record frames replayed from its journal.
    pub frames: u64,
    /// Variants the host tested.
    pub variants_tested: u64,
    /// Candidate findings the host committed (pre-dedup).
    pub candidates: usize,
}

/// A merged fleet campaign: the byte-identical report plus the per-host
/// provenance `spe_report::fleet_provenance_table` renders.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedFleet {
    /// The fleet identity every journal pinned.
    pub fleet_id: u64,
    /// Hosts in the plan (== `hosts.len()`).
    pub n_hosts: usize,
    /// Total jobs in the (file × shard) space.
    pub job_count: usize,
    /// The merged report, byte-identical to an uninterrupted
    /// single-host run with `workers == shards_per_file`.
    pub report: CampaignReport,
    /// Per-host provenance, ascending by host id.
    pub hosts: Vec<HostSummary>,
}

/// Runs host `host_id`'s slice of the fleet campaign into a fresh
/// host-scoped journal at `path` (any existing file is replaced).
///
/// The journal's manifest pins the corpus, configuration, decomposition
/// and backend identity — exactly as a single-host checkpointed run —
/// plus the fleet stamp `(fleet_id, n_hosts, host_id)`. Only the jobs
/// of [`FleetPlan::host_jobs`]`(host_id)` are dealt to the worker pool;
/// `workers` sizes that pool and nothing else, so hosts of one fleet
/// may use different worker counts freely.
///
/// A completed host returns [`CampaignStatus::Complete`] with its
/// **partial** report (its slice only — meaningful for monitoring, not
/// a campaign result); the campaign result comes from
/// [`merge_journals`] over all hosts. An interrupted host (kill,
/// [`CheckpointOptions::stop_after`]) resumes with [`resume_host`].
///
/// # Errors
///
/// [`CheckpointError::Journal`] when the journal cannot be created,
/// [`CheckpointError::Foreign`] when `host_id` is out of the plan's
/// range.
pub fn run_host(
    plan: &FleetPlan,
    host_id: usize,
    files: &[TestFile],
    config: &CampaignConfig,
    workers: usize,
    path: impl AsRef<Path>,
    options: &CheckpointOptions,
) -> Result<CampaignStatus, CheckpointError> {
    run_host_with_path(
        plan,
        host_id,
        files,
        config,
        workers,
        path,
        options,
        OraclePath::default(),
    )
}

/// [`run_host`] on an explicit [`OraclePath`]. As with single-host
/// campaigns, both paths share one backend identity: hosts of one
/// fleet may mix paths and the merged report is unchanged.
///
/// # Errors
///
/// As [`run_host`].
#[allow(clippy::too_many_arguments)]
pub fn run_host_with_path(
    plan: &FleetPlan,
    host_id: usize,
    files: &[TestFile],
    config: &CampaignConfig,
    workers: usize,
    path: impl AsRef<Path>,
    options: &CheckpointOptions,
    oracle_path: OraclePath,
) -> Result<CampaignStatus, CheckpointError> {
    run_host_oracle(
        plan,
        host_id,
        files,
        config,
        workers,
        path.as_ref(),
        options,
        oracle_path.oracle(),
        FaultPolicy::default(),
    )
    .map(warn_and_unwrap)
}

/// [`run_host`] with the oracle dispatched through `backend`; the
/// journal pins the backend's id and configuration hash, and resumes
/// must present a matching backend
/// ([`crate::checkpoint::resume_campaign_with_backend`]).
///
/// # Errors
///
/// As [`run_host`].
#[allow(clippy::too_many_arguments)]
pub fn run_host_with_backend(
    plan: &FleetPlan,
    host_id: usize,
    files: &[TestFile],
    config: &CampaignConfig,
    workers: usize,
    path: impl AsRef<Path>,
    options: &CheckpointOptions,
    backend: &dyn CompilerBackend,
) -> Result<CampaignStatus, CheckpointError> {
    run_host_oracle(
        plan,
        host_id,
        files,
        config,
        workers,
        path.as_ref(),
        options,
        Oracle::Backend(backend),
        FaultPolicy::default(),
    )
    .map(warn_and_unwrap)
}

/// Resumes an interrupted host from its journal — identical to
/// [`crate::checkpoint::resume_campaign`] (host journals **are**
/// campaign journals; the fleet stamp rides in the manifest), re-dealt
/// on any worker count, resumable any number of times. The slice is
/// recovered from the stamp, so nothing but the path is needed.
///
/// # Errors
///
/// As [`crate::checkpoint::resume_campaign`], plus
/// [`CheckpointError::Foreign`] when the journal records state outside
/// its host's slice.
pub fn resume_host(
    path: impl AsRef<Path>,
    workers: usize,
    options: &CheckpointOptions,
) -> Result<CampaignStatus, CheckpointError> {
    crate::checkpoint::resume_campaign(path, workers, options)
}

/// [`resume_host`] for journals written by [`run_host_with_backend`].
///
/// # Errors
///
/// As [`crate::checkpoint::resume_campaign_with_backend`].
pub fn resume_host_with_backend(
    path: impl AsRef<Path>,
    backend: &dyn CompilerBackend,
    workers: usize,
    options: &CheckpointOptions,
) -> Result<CampaignStatus, CheckpointError> {
    crate::checkpoint::resume_campaign_with_backend(path, backend, workers, options)
}

/// Merges one fleet's host journals into the campaign report —
/// **byte-identical** to an uninterrupted single-host run of the same
/// corpus, configuration and `shards_per_file`, including
/// `BackendDegraded`/`JobPanicked` quarantines and all dedup folds
/// (the trigger-aware reduction folds then run over the merged finding
/// set exactly as over a single-host report).
///
/// Order of `paths` does not matter; hosts are folded in host-id order.
///
/// # Errors
///
/// See [`FleetError`]: mixed fleets, duplicate host ids, and missing
/// hosts are refused with errors naming the gap; a torn-tail host
/// journal is triaged as [`FleetError::TailCorruption`] naming the
/// offending host.
pub fn merge_journals<P: AsRef<Path>>(paths: &[P]) -> Result<CampaignReport, FleetError> {
    merge_journals_detailed(paths).map(|m| m.report)
}

/// [`merge_journals`] with the per-host provenance kept
/// ([`MergedFleet`]).
///
/// # Errors
///
/// As [`merge_journals`].
pub fn merge_journals_detailed<P: AsRef<Path>>(paths: &[P]) -> Result<MergedFleet, FleetError> {
    let telemetry = spe_telemetry::global();
    let timer = Timer::start(&*telemetry);
    let result = merge_inner(paths);
    if telemetry.enabled() {
        match &result {
            Ok(m) => {
                telemetry.counter(names::FLEET_HOSTS_MERGED, m.hosts.len() as u64);
                telemetry.counter(
                    names::FLEET_FRAMES_MERGED,
                    m.hosts.iter().map(|h| h.frames).sum(),
                );
                telemetry.span(
                    names::FLEET_MERGE,
                    &format!(
                        "fleet={:#x} hosts={} jobs={}",
                        m.fleet_id, m.n_hosts, m.job_count
                    ),
                    timer.stop_nanos(),
                );
            }
            Err(_) => telemetry.span(names::FLEET_MERGE, "failed", timer.stop_nanos()),
        }
    }
    result
}

fn merge_inner<P: AsRef<Path>>(paths: &[P]) -> Result<MergedFleet, FleetError> {
    if paths.is_empty() {
        return Err(FleetError::NoJournals);
    }
    let mut set = JournalSet::open(paths)?;
    // Decode every manifest and validate fleet agreement before folding
    // any records: a merge must refuse a bad set, not half-apply it.
    let mut manifests = Vec::with_capacity(set.len());
    for i in 0..set.len() {
        let manifest = Manifest::decode(set.header(i))?;
        let stamp = manifest.fleet.ok_or_else(|| FleetError::NotAFleetJournal {
            path: set.path(i).to_path_buf(),
        })?;
        manifests.push((manifest, stamp));
    }
    let stamp0 = manifests[0].1;
    // Everything but `host_id` must agree byte-for-byte: re-encode each
    // manifest with the host id normalized and compare. Deterministic
    // encoding makes this one comparison cover the compilers, budget,
    // algorithm, fuel, backend identity, decomposition, corpus,
    // fleet id, and host count at once.
    let normalized_key = |m: &mut Manifest| {
        m.fleet = m.fleet.map(|s| FleetStamp { host_id: 0, ..s });
        m.encode()
    };
    let key0 = normalized_key(&mut manifests[0].0);
    for (i, (manifest, stamp)) in manifests.iter_mut().enumerate().skip(1) {
        if stamp.fleet_id != stamp0.fleet_id || stamp.n_hosts != stamp0.n_hosts {
            return Err(FleetError::MixedFleets {
                path: set.path(i).to_path_buf(),
                detail: format!(
                    "it pins fleet {:#018x} with {} hosts; {} pins fleet {:#018x} with {} hosts",
                    stamp.fleet_id,
                    stamp.n_hosts,
                    set.path(0).display(),
                    stamp0.fleet_id,
                    stamp0.n_hosts
                ),
            });
        }
        if normalized_key(manifest) != key0 {
            return Err(FleetError::MixedFleets {
                path: set.path(i).to_path_buf(),
                detail: format!(
                    "same fleet id, but its manifest (configuration, corpus, decomposition, \
                     or backend) differs from {}",
                    set.path(0).display()
                ),
            });
        }
    }
    let n_hosts = stamp0.n_hosts as usize;
    let mut journal_of_host: Vec<Option<usize>> = vec![None; n_hosts];
    for (i, (_, stamp)) in manifests.iter().enumerate() {
        // decode() validated host_id < n_hosts.
        let h = stamp.host_id as usize;
        if let Some(first) = journal_of_host[h] {
            return Err(FleetError::DuplicateHost {
                host: h,
                first: set.path(first).to_path_buf(),
                second: set.path(i).to_path_buf(),
            });
        }
        journal_of_host[h] = Some(i);
    }
    let missing: Vec<usize> = (0..n_hosts).filter(|&h| journal_of_host[h].is_none()).collect();
    if !missing.is_empty() {
        return Err(FleetError::MissingHosts { missing, n_hosts });
    }
    let job_count = manifests[0].0.files.len() * manifests[0].0.shards_per_file;
    let ranges = even_ranges(job_count, n_hosts);
    let mut jobs: Vec<JobState> = (0..job_count).map(|_| JobState::default()).collect();
    let mut hosts = Vec::with_capacity(n_hosts);
    for (h, owned) in ranges.into_iter().enumerate() {
        let i = journal_of_host[h].expect("no host is missing");
        let mut replay = Replay::new(set.header(i))?;
        let mut frames = 0u64;
        for rec in set.records(i) {
            replay.apply(&rec.map_err(CheckpointError::Journal)?)?;
            frames += 1;
        }
        // A single-host resume truncates a torn tail and recomputes the
        // lost work; a merge cannot recompute another host's slice, so
        // any invalid tail is fatal here — named, not silently dropped.
        if let Some(&corruption) = set.corruption(i) {
            return Err(FleetError::TailCorruption {
                host: h,
                path: set.path(i).to_path_buf(),
                corruption,
            });
        }
        for (j, job) in replay.jobs.iter().enumerate() {
            if owned.contains(&j) {
                if !job.done {
                    return Err(FleetError::HostIncomplete {
                        host: h,
                        path: set.path(i).to_path_buf(),
                        job: j,
                    });
                }
            } else if job.done || !job.is_empty() {
                return Err(FleetError::ForeignJob {
                    host: h,
                    path: set.path(i).to_path_buf(),
                    job: j,
                });
            }
        }
        let mut variants_tested = 0u64;
        let mut candidates = 0usize;
        for j in owned.clone() {
            let state = std::mem::take(&mut replay.jobs[j]);
            variants_tested += state.partial.variants_tested;
            candidates += state.partial.candidates.len();
            jobs[j] = state;
        }
        hosts.push(HostSummary {
            host_id: h,
            path: set.path(i).to_path_buf(),
            jobs: owned,
            frames,
            variants_tested,
            candidates,
        });
    }
    // Reassembled in job order, folded by the one merge definition every
    // campaign entry point shares — byte-identity follows (§14).
    let report = merge_outputs(jobs.into_iter().map(|j| j.partial).collect());
    Ok(MergedFleet {
        fleet_id: stamp0.fleet_id,
        n_hosts,
        job_count,
        report,
        hosts,
    })
}

/// Re-marks every job outside the stamped host's slice as done (the
/// pre-marking [`run_host`] applied on the first run, which journals do
/// not record), and refuses journals whose replayed state contradicts
/// the stamp. Called by every resume of a fleet journal.
pub(crate) fn mark_foreign_jobs_done(
    jobs: &mut [JobState],
    stamp: FleetStamp,
) -> Result<(), CheckpointError> {
    let owned = even_ranges(jobs.len(), stamp.n_hosts as usize)
        .into_iter()
        .nth(stamp.host_id as usize)
        .expect("decode validated host_id < n_hosts");
    for (j, job) in jobs.iter_mut().enumerate() {
        if owned.contains(&j) {
            continue;
        }
        if job.done || !job.is_empty() {
            return Err(CheckpointError::Foreign(format!(
                "fleet journal of host {} records state for job {j}, \
                 which is outside its slice {owned:?}",
                stamp.host_id
            )));
        }
        job.done = true;
    }
    Ok(())
}

/// Prints absorbed-fault warnings to stderr and unwraps the status —
/// the same shim the single-host wrappers use.
fn warn_and_unwrap(outcome: Outcome) -> CampaignStatus {
    for w in &outcome.warnings {
        eprintln!("spe-harness: warning: {w}");
    }
    outcome.status
}

#[allow(clippy::too_many_arguments)]
fn run_host_oracle(
    plan: &FleetPlan,
    host_id: usize,
    files: &[TestFile],
    config: &CampaignConfig,
    workers: usize,
    path: &Path,
    options: &CheckpointOptions,
    oracle: Oracle<'_>,
    policy: FaultPolicy,
) -> Result<Outcome, CheckpointError> {
    let n_hosts = plan.n_hosts.max(1);
    if host_id >= n_hosts {
        return Err(CheckpointError::Foreign(format!(
            "host {host_id} is out of the plan's {n_hosts} hosts"
        )));
    }
    let shards_per_file = plan.shards_per_file.max(1);
    let manifest = Manifest {
        config: config.clone(),
        shards_per_file,
        files: files.to_vec(),
        backend_id: oracle.backend_id(),
        backend_hash: oracle.config_hash(),
        fleet: Some(plan.stamp(host_id)),
    };
    let journal = Journal::create(path, &manifest.encode())?;
    let job_count = files.len() * shards_per_file;
    let owned = even_ranges(job_count, n_hosts)[host_id].clone();
    let telemetry = spe_telemetry::global();
    let timer = Timer::start(&*telemetry);
    if telemetry.enabled() {
        telemetry.gauge(
            names::FLEET_JOBS_OWNED,
            i64::try_from(owned.len()).unwrap_or(i64::MAX),
        );
    }
    // Jobs outside the slice are pre-marked done: the pool never deals
    // them, no frames are written for them, and their empty partials
    // contribute nothing to the host's partial report.
    let jobs = (0..job_count)
        .map(|j| JobState {
            done: !owned.contains(&j),
            ..JobState::default()
        })
        .collect();
    let outcome = orchestrate::run(Spec {
        files,
        config,
        shards_per_file,
        jobs,
        workers: workers.max(1),
        every: options.every,
        stop_after: options.stop_after,
        journal: Some(journal),
        oracle,
        policy,
    });
    if telemetry.enabled() {
        telemetry.span(
            names::FLEET_HOST_RUN,
            &format!(
                "fleet={:#x} host={host_id}/{n_hosts} jobs={}",
                plan.fleet_id,
                owned.len()
            ),
            timer.stop_nanos(),
        );
    }
    Ok(outcome)
}
