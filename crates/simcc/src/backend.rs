//! Pluggable compiler backends behind the differential oracle.
//!
//! [`crate::Compiler::observe`] is the single oracle entry point the
//! campaign harness, the checkpointed driver and the test-case reducer
//! share: *"what does this compiler configuration do on this program?"*.
//! This module abstracts **who answers** that question behind the
//! [`CompilerBackend`] trait, so the same campaign machinery can drive
//!
//! * the in-process `simcc` simulator ([`SimccBackend`], the default —
//!   byte-identical to the direct [`crate::Compiler::observe`] path, as
//!   pinned by `tests/backend_identity.rs`), or
//! * **external compiler binaries** through the `spe-subproc` crate's
//!   subprocess backend (process pool, per-job timeouts, exit-code /
//!   signal / stderr triage, sandboxed scratch dirs — `DESIGN.md` §10).
//!
//! Backends are discovered through a [`BackendRegistry`] keyed on the
//! backend's stable [`CompilerBackend::id`]: adding a backend is one
//! implementing type plus one [`BackendRegistry::register`] call (the
//! Trident lowering idiom — one trait, one factory, one registration).
//! Checkpoint journals record the id together with
//! [`CompilerBackend::config_hash`], so a resumed campaign can *refuse*
//! to continue under a different oracle instead of silently diverging.
//!
//! # Verdicts vs. failures
//!
//! A backend answers with an [`Observation`] whenever the compiler under
//! test *answered* — even by crashing, hanging past a timeout, or
//! emitting garbage: those are **verdicts** (findings about the
//! compiler), triaged into the observation's ICE / divergence /
//! slow-compile classes. [`BackendError`] is reserved for failures of
//! the backend **machinery itself** (a binary that cannot be spawned, a
//! scratch directory that cannot be written): the campaign quarantines
//! the affected (file, shard) job as a `BackendDegraded` finding and
//! carries on, rather than wedging or panicking.

use crate::{Compiler, Observation};
use std::collections::HashSet;
use std::fmt;
use std::sync::Mutex;
use std::sync::OnceLock;

/// A failure of the backend machinery itself — *not* a compiler verdict.
///
/// See the [module docs](self) for the verdict/failure distinction; the
/// campaign maps persistent `BackendError`s onto quarantined
/// `BackendDegraded` findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError {
    /// Human-readable description of what broke (spawn failure, scratch
    /// I/O error, configuration mismatch, …).
    pub what: String,
}

impl BackendError {
    /// Builds an error from anything displayable.
    pub fn new(what: impl fmt::Display) -> BackendError {
        BackendError {
            what: what.to_string(),
        }
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "backend failure: {}", self.what)
    }
}

impl std::error::Error for BackendError {}

/// The oracle abstraction: observes what compiler configurations do on
/// rendered program variants.
///
/// Implementations must be thread-safe — campaign workers call
/// [`CompilerBackend::observe_variant`] concurrently from the
/// work-stealing pool. A backend that shells out should bound its own
/// concurrency (see `spe-subproc`'s process pool).
pub trait CompilerBackend: Send + Sync {
    /// Stable identifier recorded in checkpoint-journal manifests
    /// (`"simcc"`, `"spe-subproc"`, …). Resume compares it and refuses a
    /// journal written under a different backend.
    fn id(&self) -> &str;

    /// FNV-1a hash of the backend-specific configuration (command lines,
    /// timeouts, execution mode, …). Recorded next to [`Self::id`] in
    /// journal manifests: two backends with the same id but different
    /// configurations would observe differently, so resume refuses a
    /// hash mismatch too. Must be stable across processes — hash only
    /// deterministic configuration, never addresses or times.
    fn config_hash(&self) -> u64;

    /// Observes one `(source, compiler configuration)` pair — the
    /// granularity of the reduction oracle's re-checks.
    ///
    /// With `wrong_code_fuel: Some(fuel)` the differential wrong-code
    /// fields of the [`Observation`] are filled (reference interpreter
    /// at `fuel`, compiled execution at `4 * fuel`, mirroring
    /// [`crate::Compiler::observe`]); with `None` only compile-time
    /// verdicts are observed.
    ///
    /// # Errors
    ///
    /// [`BackendError`] only for machinery failures; compiler crashes,
    /// hangs and garbage are verdicts, returned as observations.
    fn observe_config(
        &self,
        source: &str,
        cc: Compiler,
        wrong_code_fuel: Option<u64>,
    ) -> Result<Observation, BackendError>;

    /// Observes one rendered variant under every configuration in
    /// `compilers`, returning one [`Observation`] per configuration in
    /// order — or an **empty** vector when the variant is not a testable
    /// program for this backend (e.g. it does not parse), in which case
    /// the campaign skips it without counting it as tested.
    ///
    /// The default implementation loops [`Self::observe_config`];
    /// backends amortize per-variant work here (the in-process backend
    /// parses once and evaluates the reference interpreter once for all
    /// configurations, exactly like the direct campaign path).
    ///
    /// # Errors
    ///
    /// As [`Self::observe_config`].
    fn observe_variant(
        &self,
        source: &str,
        compilers: &[Compiler],
        wrong_code_fuel: Option<u64>,
    ) -> Result<Vec<Observation>, BackendError> {
        compilers
            .iter()
            .map(|cc| self.observe_config(source, *cc, wrong_code_fuel))
            .collect()
    }
}

/// The in-process `simcc` backend: [`crate::Compiler::observe`] behind
/// the trait. The default oracle of every campaign entry point, with
/// **zero behavior change** relative to the direct path — the
/// per-variant fast path below is the same parse-once /
/// reference-once sequence, pinned byte-identical by
/// `tests/backend_identity.rs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimccBackend;

/// The registry id (and manifest backend id) of [`SimccBackend`].
pub const SIMCC_BACKEND_ID: &str = "simcc";

/// The configuration hash of [`SimccBackend`] — the backend is a pure
/// function of the workspace build, so the hash is a constant (the
/// FNV-1a offset basis).
pub const SIMCC_CONFIG_HASH: u64 = 0xcbf2_9ce4_8422_2325;

impl CompilerBackend for SimccBackend {
    fn id(&self) -> &str {
        SIMCC_BACKEND_ID
    }

    fn config_hash(&self) -> u64 {
        SIMCC_CONFIG_HASH
    }

    fn observe_config(
        &self,
        source: &str,
        cc: Compiler,
        wrong_code_fuel: Option<u64>,
    ) -> Result<Observation, BackendError> {
        let telemetry = spe_telemetry::global();
        match spe_minic::parse(source) {
            Err(_) => {
                telemetry.counter(spe_telemetry::names::SIMCC_PARSE_REJECTS, 1);
                Ok(Observation {
                    unsupported: true,
                    ..Observation::default()
                })
            }
            Ok(p) => {
                telemetry.counter(spe_telemetry::names::SIMCC_OBSERVATIONS, 1);
                Ok(cc.observe(&p, wrong_code_fuel))
            }
        }
    }

    fn observe_variant(
        &self,
        source: &str,
        compilers: &[Compiler],
        wrong_code_fuel: Option<u64>,
    ) -> Result<Vec<Observation>, BackendError> {
        let telemetry = spe_telemetry::global();
        let Ok(prog) = spe_minic::parse(source) else {
            telemetry.counter(spe_telemetry::names::SIMCC_PARSE_REJECTS, 1);
            return Ok(Vec::new());
        };
        telemetry.counter(spe_telemetry::names::SIMCC_OBSERVATIONS, compilers.len() as u64);
        // Parse once, evaluate the reference interpreter at most once:
        // the same amortization (and the same evaluation order) as the
        // direct campaign path, so observations — including the
        // `reference_ub` skip flags — are identical to it.
        let mut reference: Option<Result<crate::interp::Execution, crate::interp::Ub>> = None;
        let mut out = Vec::with_capacity(compilers.len());
        for cc in compilers {
            out.push(match cc.compile(&prog) {
                Err(crate::CompileError::Ice(ice)) => Observation {
                    ice: Some(ice),
                    ..Observation::default()
                },
                Err(crate::CompileError::Unsupported(_)) => Observation {
                    unsupported: true,
                    ..Observation::default()
                },
                Ok(compiled) => {
                    let mut obs = Observation {
                        miscompiled_by: compiled.miscompiled_by.clone(),
                        slow_compile: compiled.slow_compile_bugs.clone(),
                        ..Observation::default()
                    };
                    if let Some(fuel) = wrong_code_fuel {
                        if reference.is_none() {
                            reference =
                                Some(crate::interp::run(&prog, crate::reference_limits(fuel)));
                        }
                        match reference.as_ref().expect("just set") {
                            Err(_) => obs.reference_ub = true,
                            Ok(expected) => {
                                obs.divergence =
                                    crate::divergence_from_reference(&compiled, expected, fuel);
                                obs.wrong_code = obs.divergence.is_some();
                            }
                        }
                    }
                    obs
                }
            });
        }
        Ok(out)
    }
}

/// A backend constructor: builds a boxed backend from an opaque options
/// string (each backend documents its own syntax; [`SimccBackend`]
/// ignores it).
pub type BackendFactory = fn(&str) -> Result<Box<dyn CompilerBackend>, BackendError>;

/// A factory registry of compiler backends, keyed on backend id.
///
/// Adding a backend to a tool is one registration:
///
/// ```
/// use spe_simcc::backend::{BackendRegistry, BackendError, CompilerBackend};
///
/// let mut registry = BackendRegistry::builtin(); // "simcc" pre-registered
/// registry
///     .register("null", |_opts| {
///         #[derive(Debug)]
///         struct Null;
///         impl CompilerBackend for Null {
///             fn id(&self) -> &str { "null" }
///             fn config_hash(&self) -> u64 { 0 }
///             fn observe_config(
///                 &self,
///                 _source: &str,
///                 _cc: spe_simcc::Compiler,
///                 _fuel: Option<u64>,
///             ) -> Result<spe_simcc::Observation, BackendError> {
///                 Ok(spe_simcc::Observation::default())
///             }
///         }
///         Ok(Box::new(Null))
///     })
///     .expect("fresh id");
/// let backend = registry.create("null", "").expect("registered");
/// assert_eq!(backend.id(), "null");
/// assert!(registry.ids().any(|id| id == "simcc"));
/// ```
#[derive(Default)]
pub struct BackendRegistry {
    entries: Vec<(&'static str, BackendFactory)>,
}

impl BackendRegistry {
    /// An empty registry.
    pub fn new() -> BackendRegistry {
        BackendRegistry::default()
    }

    /// A registry with the built-in [`SimccBackend`] registered under
    /// [`SIMCC_BACKEND_ID`].
    pub fn builtin() -> BackendRegistry {
        let mut r = BackendRegistry::new();
        r.register(SIMCC_BACKEND_ID, |_opts| Ok(Box::new(SimccBackend)))
            .expect("empty registry");
        r
    }

    /// Registers a factory under `id`.
    ///
    /// # Errors
    ///
    /// [`BackendError`] when `id` is already taken — ids are the resume
    /// compatibility key, so shadowing one would be a correctness bug.
    pub fn register(&mut self, id: &'static str, factory: BackendFactory) -> Result<(), BackendError> {
        if self.entries.iter().any(|(known, _)| *known == id) {
            return Err(BackendError::new(format!(
                "backend id {id:?} already registered"
            )));
        }
        self.entries.push((id, factory));
        Ok(())
    }

    /// Instantiates the backend registered under `id` with `options`.
    ///
    /// # Errors
    ///
    /// [`BackendError`] for an unknown id (the message lists the known
    /// ones) or when the factory rejects `options`.
    pub fn create(&self, id: &str, options: &str) -> Result<Box<dyn CompilerBackend>, BackendError> {
        match self.entries.iter().find(|(known, _)| *known == id) {
            Some((_, factory)) => factory(options),
            None => {
                let known: Vec<&str> = self.entries.iter().map(|(id, _)| *id).collect();
                Err(BackendError::new(format!(
                    "unknown backend {id:?} (registered: {known:?})"
                )))
            }
        }
    }

    /// The registered backend ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.iter().map(|(id, _)| *id)
    }
}

/// Interns a string, returning a `'static` reference that is pointer- and
/// content-stable for the life of the process.
///
/// External backends triage dynamic artifacts — crash signatures from
/// stderr, signal names, exit codes — into the `&'static str` slots of
/// [`crate::Ice`] and [`Observation`] that the in-process simulator
/// fills from its compile-time registry. Interning deduplicates, so the
/// leaked memory is bounded by the number of *distinct* triage strings
/// (small in practice: backends canonicalize before interning).
pub fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashSet::new()));
    let mut pool = pool.lock().expect("poisoned");
    match pool.get(s) {
        Some(known) => known,
        None => {
            let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
            pool.insert(leaked);
            leaked
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompilerId;

    #[test]
    fn simcc_backend_matches_direct_observe() {
        let srcs = [
            // Figure 3 crash on trunk gcc.
            "int d, e, b, c; int main(void) { e ? (d==0 ? b : c) : (d==0 ? b : c); return 0; }",
            // Figure 2 miscompile.
            "int a = 0; int main() { int *p = &a, *q = &a; *p = 1; *q = 2; return a; }",
            // UB variant.
            "int main() { int a = 0, b = 4; b = b / a; return b; }",
            // Clean program.
            "int main() { int a = 6, b = 7; return a * b; }",
        ];
        let backend = SimccBackend;
        let compilers = [
            Compiler::new(CompilerId::gcc(700), 0),
            Compiler::new(CompilerId::gcc(485), 2),
            Compiler::new(CompilerId::clang(390), 3),
        ];
        for src in srcs {
            for fuel in [None, Some(20_000)] {
                let p = spe_minic::parse(src).expect("parses");
                let direct: Vec<Observation> =
                    compilers.iter().map(|cc| cc.observe(&p, fuel)).collect();
                let batched = backend
                    .observe_variant(src, &compilers, fuel)
                    .expect("in-process backend never fails");
                assert_eq!(direct, batched, "{src} at fuel {fuel:?}");
                for (cc, want) in compilers.iter().zip(&direct) {
                    let got = backend.observe_config(src, *cc, fuel).expect("no failure");
                    assert_eq!(&got, want, "{src} under {}", cc.id());
                }
            }
        }
    }

    #[test]
    fn unparseable_variants_are_skipped_not_errors() {
        let backend = SimccBackend;
        let compilers = [Compiler::new(CompilerId::gcc(700), 2)];
        let obs = backend
            .observe_variant("int main( {", &compilers, None)
            .expect("skip, not a failure");
        assert!(obs.is_empty());
        let single = backend
            .observe_config("int main( {", compilers[0], None)
            .expect("skip, not a failure");
        assert!(single.unsupported);
    }

    #[test]
    fn registry_creates_and_rejects() {
        let registry = BackendRegistry::builtin();
        let backend = registry.create("simcc", "").expect("builtin");
        assert_eq!(backend.id(), SIMCC_BACKEND_ID);
        assert_eq!(backend.config_hash(), SIMCC_CONFIG_HASH);
        let err = match registry.create("no-such-backend", "") {
            Err(e) => e,
            Ok(_) => panic!("unknown id must not resolve"),
        };
        assert!(err.what.contains("simcc"), "error lists known ids: {err}");
        let mut registry = registry;
        let err = registry
            .register("simcc", |_| Ok(Box::new(SimccBackend)))
            .expect_err("duplicate id");
        assert!(err.what.contains("already registered"));
    }

    #[test]
    fn intern_is_stable_and_deduplicating() {
        let a = intern("signal 11 (SIGSEGV)");
        let b = intern(String::from("signal 11 (SIGSEGV)").as_str());
        assert_eq!(a, b);
        assert!(std::ptr::eq(a, b), "same allocation");
        assert_ne!(intern("signal 6 (SIGABRT)"), a);
    }
}
