//! The incremental oracle: splice-don't-reparse compilation.
//!
//! Consecutive SPE variants of one skeleton differ by a single odometer
//! digit — one hole bound to a different (already-declared) variable.
//! The round-trip oracle nevertheless pays print → lex → parse for every
//! variant, then rediscovers the program's structural facts once per
//! compiler configuration. This module caches the parsed AST once per
//! skeleton and *splices* each variant's name bindings directly into it,
//! the way `RenderTemplate` splices strings into a compiled template:
//!
//! * [`CachedOracle`] holds one parsed program plus a direct mutable
//!   handle to every hole's identifier. Observing a variant rewrites
//!   only the changed bindings (`O(changed)`, typically one string) and
//!   re-derives observations with **one** structural-fact scan shared
//!   across the whole compiler matrix — the round-trip path scans once
//!   per live bug per compiler.
//! * Pass-pipeline results (optimize + lower) are memoized *within* a
//!   variant across configurations that share an optimization level and
//!   triggered wrong-code set: `passes::optimize` reads nothing else
//!   from the configuration, so gcc-sim `-O0` and clang-sim `-O0`
//!   usually collapse to one pipeline execution, and so do their
//!   differential VM runs.
//!
//! # Why splicing is identity-preserving
//!
//! `spe_minic::parse` performs no name resolution (sema is the separate
//! `analyze` pass, used only during skeleton extraction), so parse
//! *structure* depends only on token kinds and punctuation — never on
//! how an identifier is spelled. Two renders of the same skeleton
//! differ only in identifier tokens at hole slots, and the parser
//! assigns `OccId`/`ExprId` in source order, which those substitutions
//! cannot change. Hence `parse(render(variant))` equals the cached
//! `parse(render(first_variant))` with the hole identifiers rewritten —
//! exactly what [`CachedOracle::observe_variant`] computes. The
//! `tests/oracle_identity.rs` suite pins this end to end: campaign
//! reports through this path are byte-identical to the round-trip
//! oracle at every worker count, including kill/resume cycles.
//!
//! # Contract in compile-only mode
//!
//! With `check_wrong_code == false` the campaign harness only consumes
//! an observation's `ice` and `slow_compile` fields, so the oracle runs
//! the optimize + lower pipeline *lazily* — only when a performance
//! defect fired and lowerability decides whether it is reportable. For
//! variants with no triggered performance bug the returned observation
//! leaves `unsupported` and `miscompiled_by` at their defaults even
//! when a full [`Compiler::observe`] would set them; every field the
//! harness reads in that mode is exact. With `check_wrong_code == true`
//! observations are field-for-field equal to [`Compiler::observe`].

use crate::bugs::{self, BugKind, BugSpec};
use crate::coverage::Coverage;
use crate::{
    divergence_from_image, interp, passes, reference_limits, vm, Compiler, Divergence, Ice,
    Observation,
};
use spe_minic::ast::{OccId, Program};

/// Cumulative cache-effectiveness counters of one [`CachedOracle`],
/// readable at any time via [`CachedOracle::stats`]. The campaign
/// harness turns per-variant deltas of these into the
/// `oracle_cache.*` telemetry counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Variants spliced through the delta path (only changed holes
    /// rewritten).
    pub splice_delta: u64,
    /// Variants that paid a full resplice of every hole: the first
    /// variant after construction or [`CachedOracle::reconfigure`],
    /// callers not supplying a delta, and post-panic self-heals.
    pub splice_full: u64,
    /// Pass-pipeline (optimize + lower) results served from the
    /// within-variant memo.
    pub pipeline_memo_hits: u64,
    /// Pass-pipeline executions that actually ran.
    pub pipeline_memo_misses: u64,
}

/// A parsed program with a raw mutable handle to each hole's
/// identifier, so a variant's bindings splice in without reprinting or
/// reparsing anything.
///
/// Safety argument for the `*mut String` slots: each points at the
/// `Ident::name` of one hole, collected from a single mutable walk at
/// construction. Those `String` objects live inside heap allocations
/// owned by the program's `Vec`/`Box` nodes, so moving the
/// `SplicedAst` (or the `Program` struct inside it) never moves them;
/// they stay valid because the AST is never structurally mutated after
/// construction — the only writes ever performed are through the slots
/// themselves, behind `&mut self`, which cannot overlap the shared
/// `&Program` reads ([`SplicedAst::program`]) the oracle performs
/// between splices.
struct SplicedAst {
    program: Program,
    /// Hole-indexed pointers to each hole's `Ident::name`.
    slots: Vec<*mut String>,
}

impl SplicedAst {
    /// Builds the spliceable AST; `hole_occs[h]` is the use-site
    /// occurrence filled by names`[h]`. Returns `None` when some hole
    /// occurrence has no identifier in the program (a caller bug — the
    /// oracle then falls back to round-trip processing).
    fn new(program: Program, hole_occs: &[OccId]) -> Option<SplicedAst> {
        let mut this = SplicedAst {
            program,
            slots: vec![std::ptr::null_mut(); hole_occs.len()],
        };
        let mut occ_to_hole = vec![usize::MAX; this.program.max_occ as usize];
        for (h, occ) in hole_occs.iter().enumerate() {
            *occ_to_hole.get_mut(occ.0 as usize)? = h;
        }
        let slots = &mut this.slots;
        this.program.for_each_ident_mut(&mut |id| {
            if let Some(&h) = occ_to_hole.get(id.occ.0 as usize) {
                if h != usize::MAX {
                    slots[h] = &mut id.name as *mut String;
                }
            }
        });
        if this.slots.iter().any(|p| p.is_null()) {
            return None;
        }
        Some(this)
    }

    /// The current program (the last spliced variant).
    fn program(&self) -> &Program {
        &self.program
    }

    /// Rebinds hole `hole` to `name`.
    fn set(&mut self, hole: usize, name: &str) {
        let slot = self.slots[hole];
        // SAFETY: see the struct-level argument; `&mut self` guarantees
        // no `&Program` reference is live across this write.
        unsafe {
            let s = &mut *slot;
            if s.as_str() != name {
                s.clear();
                s.push_str(name);
            }
        }
    }
}

/// Per-variant memo key: optimization level plus the ordered set of
/// triggered wrong-code defects — the only inputs `passes::optimize`
/// reads from a configuration.
type PipeKey = (u8, Vec<&'static str>);

/// Memoized outcome of one optimize + lower pipeline execution.
struct PipeEntry {
    /// `None` when lowering rejected the optimized program
    /// (`CompileError::Unsupported`).
    image: Option<vm::Image>,
    miscompiled_by: Vec<&'static str>,
    /// Differential verdict against this variant's reference execution,
    /// filled on first use (`None` = not yet computed).
    divergence: Option<Option<Divergence>>,
}

/// One compiler configuration with its live-bug set resolved once.
struct CompilerSlot {
    compiler: Compiler,
    live: Vec<BugSpec>,
}

/// The incremental oracle for one skeleton: a cached AST spliced per
/// variant plus within-variant pipeline memoization across the
/// compiler matrix.
///
/// Intended lifecycle (what the campaign harness does): build one per
/// (file, shard) job from the job's first rendered variant, feed every
/// subsequent variant through [`CachedOracle::observe_variant`] with
/// the hole delta, and drop it at the job boundary — so work stealing,
/// checkpoint/resume and panic quarantine see exactly the state they
/// would under the round-trip oracle.
///
/// The oracle is panic-self-healing: if a previous
/// [`CachedOracle::observe_variant`] unwound mid-splice (leaving some
/// holes rebound and others not), the next call detects it and
/// resplices every hole from scratch, ignoring the caller's delta.
pub struct CachedOracle {
    ast: SplicedAst,
    compilers: Vec<CompilerSlot>,
    check_wrong_code: bool,
    fuel: u64,
    /// Reused observation buffer, one entry per configuration.
    obs: Vec<Observation>,
    /// Reused per-variant pipeline memo.
    pipeline: Vec<(PipeKey, PipeEntry)>,
    /// Write-only coverage scratch for the passes (observations do not
    /// carry coverage).
    coverage: Coverage,
    /// True while an `observe_variant` call is running; still true on
    /// entry means the previous call panicked partway.
    in_flight: bool,
    stats: CacheStats,
}

impl CachedOracle {
    /// Builds an incremental oracle over `program` (the parse of a
    /// skeleton's rendered variant) whose hole `h` is the identifier at
    /// occurrence `hole_occs[h]`.
    ///
    /// Returns `None` if some hole occurrence is not an identifier use
    /// site of `program` — callers should fall back to the round-trip
    /// path (with sources rendered by `spe-skeleton` templates this
    /// cannot happen).
    pub fn new(
        program: Program,
        hole_occs: &[OccId],
        compilers: &[Compiler],
        check_wrong_code: bool,
        fuel: u64,
    ) -> Option<CachedOracle> {
        let mut this = CachedOracle {
            ast: SplicedAst::new(program, hole_occs)?,
            compilers: Vec::new(),
            check_wrong_code: false,
            fuel: 0,
            obs: Vec::new(),
            pipeline: Vec::new(),
            coverage: Coverage::new(),
            in_flight: false,
            stats: CacheStats::default(),
        };
        this.reconfigure(compilers, check_wrong_code, fuel);
        Some(this)
    }

    /// Number of holes the cached AST was built with; every
    /// [`CachedOracle::observe_variant`] call must supply exactly this
    /// many names.
    pub fn num_holes(&self) -> usize {
        self.ast.slots.len()
    }

    /// Cumulative cache-effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Re-points the oracle at a different campaign configuration
    /// (compiler matrix, wrong-code mode, fuel), evicting every
    /// memoized result: pipeline keys do not encode fuel or compiler
    /// versions, so results memoized under the old configuration must
    /// never serve the new one. The next variant pays a full resplice.
    pub fn reconfigure(&mut self, compilers: &[Compiler], check_wrong_code: bool, fuel: u64) {
        self.compilers = compilers
            .iter()
            .map(|&compiler| CompilerSlot {
                live: compiler.live_bugs(),
                compiler,
            })
            .collect();
        self.check_wrong_code = check_wrong_code;
        self.fuel = fuel;
        self.pipeline.clear();
        self.obs.clear();
        // Force the next splice to rewrite every hole: memoized results
        // are gone and the caller's delta baseline no longer applies.
        self.in_flight = true;
    }

    /// Observes one variant — `names[h]` is the spelling bound to hole
    /// `h` — and returns one [`Observation`] per configured compiler,
    /// in configuration order (the same shape
    /// `backend::CompilerBackend::observe_variant` returns).
    ///
    /// With `changed: Some(delta)` only the listed holes are respliced;
    /// the caller guarantees every other hole's binding is unchanged
    /// since the previous call (`spe_core::Variant::changed_holes_into`
    /// computes exactly this delta). `None` resplices every hole.
    ///
    /// # Panics
    ///
    /// Panics if `names` is shorter than [`CachedOracle::num_holes`] or
    /// a delta index is out of range; the oracle self-heals on the next
    /// call.
    pub fn observe_variant(&mut self, names: &[&str], changed: Option<&[usize]>) -> &[Observation] {
        let must_full = self.in_flight;
        self.in_flight = true;
        match changed {
            Some(delta) if !must_full => {
                for &h in delta {
                    self.ast.set(h, names[h]);
                }
                self.stats.splice_delta += 1;
            }
            _ => {
                let holes = self.ast.slots.len();
                for (h, name) in names.iter().enumerate().take(holes) {
                    self.ast.set(h, name);
                }
                self.stats.splice_full += 1;
            }
        }

        self.obs.clear();
        self.pipeline.clear();
        let prog = self.ast.program();
        // One structural scan serves every trigger of every compiler.
        let facts = bugs::scan_facts(prog);
        let check_wrong_code = self.check_wrong_code;
        let fuel = self.fuel;
        // The reference executes lazily, at most once per variant — the
        // same schedule as the harness's round-trip path.
        let mut reference: Option<Result<interp::Execution, interp::Ub>> = None;
        for slot in &self.compilers {
            let opt = slot.compiler.opt();
            let mut crash: Option<Ice> = None;
            let mut slow: Vec<&'static str> = Vec::new();
            let mut wc_ids: Vec<&'static str> = Vec::new();
            let mut wc_specs: Vec<&BugSpec> = Vec::new();
            for b in &slot.live {
                if !facts.matches(b.trigger) {
                    continue;
                }
                match b.kind {
                    BugKind::Crash(signature) => {
                        crash = Some(Ice {
                            bug_id: b.id,
                            signature,
                            pass: b.pass,
                        });
                        // First triggered crash wins, exactly like
                        // `Compiler::compile`; later performance /
                        // wrong-code matches are unobservable.
                        break;
                    }
                    BugKind::Performance => slow.push(b.id),
                    BugKind::WrongCode => {
                        wc_ids.push(b.id);
                        wc_specs.push(b);
                    }
                }
            }
            if let Some(ice) = crash {
                self.obs.push(Observation {
                    ice: Some(ice),
                    ..Observation::default()
                });
                continue;
            }
            if !check_wrong_code && slow.is_empty() {
                // Nothing the compile-only harness reads can differ
                // from default — skip the pipeline entirely (the
                // crash-only fast path that buys the 10×).
                self.obs.push(Observation::default());
                continue;
            }
            let idx = match self
                .pipeline
                .iter()
                .position(|(k, _)| k.0 == opt && k.1 == wc_ids)
            {
                Some(i) => {
                    self.stats.pipeline_memo_hits += 1;
                    i
                }
                None => {
                    self.stats.pipeline_memo_misses += 1;
                    let mut ctx = passes::PassCtx {
                        opt,
                        wrong_code: wc_specs,
                        coverage: &mut self.coverage,
                        miscompiled_by: Vec::new(),
                    };
                    let optimized = passes::optimize(prog, &mut ctx);
                    let entry = PipeEntry {
                        image: vm::lower(&optimized).ok(),
                        miscompiled_by: ctx.miscompiled_by,
                        divergence: None,
                    };
                    self.pipeline.push(((opt, wc_ids), entry));
                    self.pipeline.len() - 1
                }
            };
            let entry = &mut self.pipeline[idx].1;
            let Some(image) = &entry.image else {
                self.obs.push(Observation {
                    unsupported: true,
                    ..Observation::default()
                });
                continue;
            };
            let mut obs = Observation {
                miscompiled_by: entry.miscompiled_by.clone(),
                slow_compile: slow,
                ..Observation::default()
            };
            if check_wrong_code {
                if reference.is_none() {
                    reference = Some(interp::run(prog, reference_limits(fuel)));
                }
                match reference.as_ref().expect("just set") {
                    Err(_) => obs.reference_ub = true,
                    Ok(expected) => {
                        let divergence = match entry.divergence {
                            Some(d) => d,
                            None => {
                                let d = divergence_from_image(image, expected, fuel);
                                entry.divergence = Some(d);
                                d
                            }
                        };
                        obs.divergence = divergence;
                        obs.wrong_code = divergence.is_some();
                    }
                }
            }
            self.obs.push(obs);
        }
        self.in_flight = false;
        &self.obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompilerId;
    use spe_minic::parse;

    /// All identifier use-site occurrences of `p`, in walk order — the
    /// hole set a skeleton would extract when every use site is a hole.
    fn all_occs(p: &Program) -> Vec<OccId> {
        let mut occs = Vec::new();
        let mut q = p.clone();
        q.for_each_ident_mut(&mut |id| occs.push(id.occ));
        occs
    }

    /// Current hole spellings of `p`, in the same walk order.
    fn spellings(p: &Program) -> Vec<String> {
        let mut names = Vec::new();
        let mut q = p.clone();
        q.for_each_ident_mut(&mut |id| names.push(id.name.clone()));
        names
    }

    fn wc_compilers() -> Vec<Compiler> {
        vec![
            Compiler::new(CompilerId::gcc(485), 0),
            Compiler::new(CompilerId::gcc(485), 2),
            Compiler::new(CompilerId::clang(360), 0),
            Compiler::new(CompilerId::clang(360), 2),
        ]
    }

    /// Exhaustive cross-check on a pointerful skeleton: every hole
    /// respliced to every allowed name, one at a time and in pairs,
    /// must observe exactly what a fresh parse of the equivalent
    /// source observes (wrong-code mode — field-for-field equality).
    #[test]
    fn splice_matches_reparse_on_every_hole() {
        let base = "int a = 0, b = 0; int main() { int *p = &a, *q = &a; *p = 1; *q = 2; return a; }";
        let prog = parse(base).expect("parses");
        let holes = all_occs(&prog);
        let compilers = wc_compilers();
        let mut cache =
            CachedOracle::new(prog.clone(), &holes, &compilers, true, 50_000).expect("builds");
        let base_names = spellings(&prog);
        let pool = ["a", "b"];
        let fresh = |names: &[String]| -> Vec<Observation> {
            // Reference implementation: rewrite the AST by reparsing a
            // manually substituted source. Substitution by hole index
            // is exactly what the render template does.
            let mut q = parse(base).expect("parses");
            let mut i = 0;
            q.for_each_ident_mut(&mut |id| {
                id.name = names[i].clone();
                i += 1;
            });
            let printed = spe_minic::print_program(&q);
            let reparsed = parse(&printed).expect("reparses");
            compilers
                .iter()
                .map(|cc| cc.observe(&reparsed, Some(50_000)))
                .collect()
        };
        // One hole at a time, delta splice.
        let mut prev = base_names.clone();
        for h in 0..holes.len() {
            for cand in pool {
                let mut names = prev.clone();
                names[h] = cand.to_string();
                let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
                let changed: Vec<usize> = (0..holes.len())
                    .filter(|&i| names[i] != prev[i])
                    .collect();
                let got = cache.observe_variant(&refs, Some(&changed)).to_vec();
                assert_eq!(got, fresh(&names), "hole {h} -> {cand}");
                prev = names;
            }
        }
        assert!(cache.stats().splice_delta > 0);
        assert!(cache.stats().pipeline_memo_hits > 0, "O0 pair must collapse");
    }

    /// Replaying the same variant after unrelated observations yields
    /// identical results to the first visit and to a fresh oracle: no
    /// state leaks across `observe_variant` calls.
    #[test]
    fn observations_do_not_leak_across_variants() {
        let src = "int x, y, z, w, v; int main() { v = x + y * z - w + v; return 0; }";
        let prog = parse(src).expect("parses");
        let holes = all_occs(&prog);
        let compilers = wc_compilers();
        let mut cache =
            CachedOracle::new(prog.clone(), &holes, &compilers, true, 20_000).expect("builds");
        let n = holes.len();
        let v1: Vec<&str> = vec!["x"; n];
        let v2: Vec<&str> = vec!["v"; n];
        let first = cache.observe_variant(&v1, None).to_vec();
        let _ = cache.observe_variant(&v2, None).to_vec();
        let again = cache.observe_variant(&v1, None).to_vec();
        assert_eq!(first, again, "revisited variant diverged");
        let mut fresh =
            CachedOracle::new(prog, &holes, &compilers, true, 20_000).expect("builds");
        assert_eq!(fresh.observe_variant(&v1, None), &first[..]);
    }

    /// `reconfigure` must evict memoized pipeline/divergence results:
    /// the memo key does not encode fuel or compiler versions, so a
    /// stale entry would serve wrong verdicts under the new config.
    #[test]
    fn reconfigure_evicts_memoized_results() {
        // A loop that terminates but needs real fuel: with a tiny fuel
        // the reference hits the limit (UB-skip), flipping verdicts.
        let src = "int g = 2; int main() { int s = 0; for (int i = 0; i < 40; i++) s += g; return s; }";
        let prog = parse(src).expect("parses");
        let holes = all_occs(&prog);
        let compilers = wc_compilers();
        let mut cache =
            CachedOracle::new(prog.clone(), &holes, &compilers, true, 100_000).expect("builds");
        let names = spellings(&prog);
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let generous = cache.observe_variant(&refs, None).to_vec();
        assert!(generous.iter().all(|o| !o.reference_ub));

        cache.reconfigure(&compilers, true, 10);
        let starved = cache.observe_variant(&refs, None).to_vec();
        let mut fresh = CachedOracle::new(prog, &holes, &compilers, true, 10).expect("builds");
        assert_eq!(
            starved,
            fresh.observe_variant(&refs, None),
            "post-reconfigure observations must match a fresh oracle"
        );
        assert_ne!(generous, starved, "fuel change must be observable");

        // Narrowing the compiler matrix reshapes the observation vector.
        cache.reconfigure(&compilers[..1], true, 100_000);
        assert_eq!(cache.observe_variant(&refs, None).len(), 1);
    }

    /// A panicking splice (names slice shorter than the hole count)
    /// must not leak a half-spliced AST into the next observation: the
    /// oracle detects the unfinished call and resplices every hole.
    #[test]
    fn poisoned_splice_self_heals() {
        let src = "int a, b, c; int main() { a = b + c; return a; }";
        let prog = parse(src).expect("parses");
        let holes = all_occs(&prog);
        let compilers = wc_compilers();
        let mut cache =
            CachedOracle::new(prog.clone(), &holes, &compilers, true, 20_000).expect("builds");
        let n = holes.len();
        let good: Vec<&str> = vec!["b"; n];
        let expected = cache.observe_variant(&good, None).to_vec();

        // Poison: mutate some bindings, then panic mid-splice.
        let all: Vec<usize> = (0..n).collect();
        let short: Vec<&str> = vec!["c"; n - 1];
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.observe_variant(&short, Some(&all));
        }));
        assert!(poisoned.is_err(), "short names slice must panic");

        // Self-heal: the caller's delta claims nothing changed since
        // `good`, which is a lie after the partial splice — the oracle
        // must ignore it and resplice everything.
        let nothing_changed: Vec<usize> = Vec::new();
        let healed = cache.observe_variant(&good, Some(&nothing_changed)).to_vec();
        assert_eq!(healed, expected, "stale AST state leaked past a panic");
        let mut fresh = CachedOracle::new(prog, &holes, &compilers, true, 20_000).expect("builds");
        assert_eq!(fresh.observe_variant(&good, None), &expected[..]);
    }

    /// Compile-only mode: the fields the harness reads (`ice`,
    /// `slow_compile`, and `unsupported` whenever a performance defect
    /// fired) match `Compiler::observe` exactly.
    #[test]
    fn compile_only_mode_matches_observable_fields() {
        let srcs = [
            "int d, e, b, c; int main(void) { e ? (d==0 ? b : c) : (d==0 ? b : c); return 0; }",
            "int a; int main() { a = ((((((((a + 1) + 2) + 3) + 4) + 5) + 6) + 7) + 8); return 0; }",
            "int x, y; void f() { y = (x + 1) - (x + 1); }",
        ];
        let compilers = [
            Compiler::new(CompilerId::gcc(700), 0),
            Compiler::new(CompilerId::gcc(485), 1),
            Compiler::new(CompilerId::gcc(485), 3),
            Compiler::new(CompilerId::clang(390), 2),
        ];
        for src in srcs {
            let prog = parse(src).expect("parses");
            let holes = all_occs(&prog);
            let mut cache =
                CachedOracle::new(prog.clone(), &holes, &compilers, false, 10_000).expect("builds");
            let names = spellings(&prog);
            let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let got = cache.observe_variant(&refs, None).to_vec();
            for (cc, obs) in compilers.iter().zip(&got) {
                let full = cc.observe(&prog, None);
                assert_eq!(obs.ice, full.ice, "{src}");
                assert_eq!(obs.slow_compile, full.slow_compile, "{src}");
                if !full.slow_compile.is_empty() {
                    assert_eq!(obs.unsupported, full.unsupported, "{src}");
                }
                assert!(!obs.wrong_code && !obs.reference_ub);
            }
        }
    }
}
