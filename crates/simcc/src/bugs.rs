//! The injected-defect registry of the simulated compilers.
//!
//! Real GCC/Clang bugs are triggered by specific *structural patterns* in
//! the input — exactly the patterns skeletal program enumeration explores
//! by rewiring variable usage. Each [`BugSpec`] couples such a pattern
//! ([`Trigger`]) with bug-report metadata (component, priority, affected
//! versions and optimization levels) modeled on the paper's Figures 10
//! and 11 and Table 3. A compiler profile (name + version) activates the
//! subset of bugs live in that version, which is how the same campaign
//! code reproduces both the stable-release experiment (§5.2) and the
//! trunk experiment (§5.3).

use spe_minic::ast::*;

/// Compiler component a bug lives in (Figure 10(d) categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// C frontend.
    C,
    /// C++ frontend (simulated by struct-using inputs in mini-C).
    Cpp,
    /// Inter-procedural analysis.
    Ipa,
    /// Middle end.
    MiddleEnd,
    /// RTL optimizations.
    RtlOptimization,
    /// Backend/target code generation.
    Target,
    /// Tree-level optimizations.
    TreeOptimization,
}

impl Component {
    /// Display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            Component::C => "C",
            Component::Cpp => "C++",
            Component::Ipa => "IPA",
            Component::MiddleEnd => "Middle-end",
            Component::RtlOptimization => "RTL-optimization",
            Component::Target => "Target",
            Component::TreeOptimization => "Tree-optimization",
        }
    }
}

/// Bug priority (GCC bugzilla style; P3 is the default, P1 is
/// release-blocking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Priority {
    /// Release-blocking.
    P1,
    /// High.
    P2,
    /// Default.
    P3,
    /// Low.
    P4,
    /// Lowest.
    P5,
}

impl Priority {
    /// Short label ("P1" …).
    pub fn label(self) -> &'static str {
        match self {
            Priority::P1 => "P1",
            Priority::P2 => "P2",
            Priority::P3 => "P3",
            Priority::P4 => "P4",
            Priority::P5 => "P5",
        }
    }
}

/// What the bug does when triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugKind {
    /// Internal compiler error with the given signature.
    Crash(&'static str),
    /// Silent miscompilation (the passes apply a wrong transformation).
    WrongCode,
    /// Pathological compile time (the harness records it; compilation
    /// still succeeds).
    Performance,
}

/// Structural trigger patterns, evaluated on the (whole-program) AST.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// A ternary whose second and third operands are structurally
    /// identical (Figure 3 / GCC 69801).
    TernaryIdenticalArms,
    /// `x = x` self-assignment somewhere.
    SelfAssignment,
    /// `e - e` with structurally identical non-literal operands.
    SubSelf,
    /// One expression reads the same variable at least `n` times.
    SameVarTimes(u8),
    /// One expression reads at least `n` distinct variables.
    DistinctVars(u8),
    /// A `goto` jumping backward (label textually precedes it).
    BackwardGoto,
    /// A backward `goto` whose label sits inside a conditional while the
    /// goto is outside it, creating an irreducible loop (Figure 11(b)).
    GotoIntoBranch,
    /// Two pointer locals initialized with `&` of the same variable, each
    /// later stored through (Figure 2 / GCC 69951).
    AliasedPointerStores,
    /// An array index expression reading the same variable twice
    /// (Figure 12(b) vectorizer pattern).
    SelfIndexedArray,
    /// A local declaration after a label in a function with a backward
    /// goto (Figure 11(d) lifetime bug).
    DeclAfterLabelWithBackGoto,
    /// A `for` loop whose step decrements a variable read in an inner
    /// loop bound (Figure 11(c)).
    DecrementingOuterLoop,
    /// A shift whose amount is a variable.
    VariableShift,
    /// A comma expression used as a call argument.
    CommaInCall,
    /// Expression nesting depth at least `n`.
    DeepExpression(u8),
    /// The same variable appears on both sides of a division.
    DivBySelf,
    /// Any struct definition present (stands in for the C++-frontend bug
    /// population of the paper; half its reports were C++).
    UsesStruct,
    /// The address of a global is taken.
    AddrOfGlobal,
    /// A call appears inside a loop condition.
    CallInLoopCond,
}

/// A seeded compiler defect with report metadata.
#[derive(Debug, Clone)]
pub struct BugSpec {
    /// Stable identifier, e.g. `"gcc-69951"`.
    pub id: &'static str,
    /// Compiler family: `"gcc-sim"` or `"clang-sim"`.
    pub compiler: &'static str,
    /// Component of Figure 10(d).
    pub component: Component,
    /// Effect when triggered.
    pub kind: BugKind,
    /// Bugzilla priority.
    pub priority: Priority,
    /// Pass where the defect lives (coverage/crash site).
    pub pass: &'static str,
    /// Lowest optimization level at which it fires (0–3).
    pub min_opt: u8,
    /// First version containing the defect.
    pub introduced: u32,
    /// Version that fixed it (`None` = still present at trunk).
    pub fixed: Option<u32>,
    /// The structural trigger.
    pub trigger: Trigger,
}

impl BugSpec {
    /// Whether the bug is live in `version`.
    pub fn live_in(&self, version: u32) -> bool {
        self.introduced <= version && self.fixed.is_none_or(|f| version < f)
    }

    /// Whether the bug fires at `opt` for a program matching its trigger.
    pub fn fires_at(&self, opt: u8) -> bool {
        opt >= self.min_opt
    }

    /// All versions from `versions` affected by this bug.
    pub fn affected_versions(&self, versions: &[u32]) -> Vec<u32> {
        versions
            .iter()
            .copied()
            .filter(|&v| self.live_in(v))
            .collect()
    }
}

/// GCC-sim version numbers (440 = 4.4, 485 = 4.8.5, 500/520 = 5.x,
/// 600 = 6.x, 700 = trunk).
pub const GCC_VERSIONS: &[u32] = &[440, 485, 500, 520, 600, 700];
/// Clang-sim version numbers (350 = 3.5, 360 = 3.6, 370/380, 390 =
/// trunk).
pub const CLANG_VERSIONS: &[u32] = &[350, 360, 370, 380, 390];

/// The full registry of seeded defects.
pub fn registry() -> Vec<BugSpec> {
    use BugKind::*;
    use Component::*;
    use Priority::*;
    use Trigger::*;
    vec![
        // ---- GCC-sim: long-latent wrong code & crashes ---------------
        BugSpec { id: "gcc-69951", compiler: "gcc-sim", component: RtlOptimization, kind: WrongCode, priority: P2, pass: "alias", min_opt: 1, introduced: 440, fixed: None, trigger: AliasedPointerStores },
        BugSpec { id: "gcc-69801", compiler: "gcc-sim", component: MiddleEnd, kind: Crash("internal compiler error: in operand_equal_p, at fold-const.c:2838"), priority: P1, pass: "fold", min_opt: 0, introduced: 600, fixed: None, trigger: TernaryIdenticalArms },
        BugSpec { id: "gcc-69740", compiler: "gcc-sim", component: RtlOptimization, kind: Crash("internal compiler error: verify_loop_structure failed"), priority: P1, pass: "loop", min_opt: 2, introduced: 520, fixed: Some(700), trigger: GotoIntoBranch },
        BugSpec { id: "gcc-70138", compiler: "gcc-sim", component: TreeOptimization, kind: WrongCode, priority: P2, pass: "loop", min_opt: 3, introduced: 600, fixed: None, trigger: SelfIndexedArray },
        BugSpec { id: "gcc-lra-1281", compiler: "gcc-sim", component: RtlOptimization, kind: Crash("internal compiler error: in assign_by_spills, at lra-assigns.c:1281"), priority: P3, pass: "regalloc", min_opt: 2, introduced: 485, fixed: Some(600), trigger: DistinctVars(4) },
        BugSpec { id: "gcc-67619", compiler: "gcc-sim", component: MiddleEnd, kind: Crash("internal compiler error: in emit_eh_return, at except.c"), priority: P3, pass: "lower", min_opt: 1, introduced: 460, fixed: Some(700), trigger: BackwardGoto },
        BugSpec { id: "gcc-subself", compiler: "gcc-sim", component: TreeOptimization, kind: Crash("internal compiler error: in fold_binary_loc, tree check failed"), priority: P3, pass: "fold", min_opt: 1, introduced: 500, fixed: Some(600), trigger: SubSelf },
        BugSpec { id: "gcc-selfassign", compiler: "gcc-sim", component: TreeOptimization, kind: Crash("internal compiler error: in remove_redundant_stores, at tree-ssa-dse.c"), priority: P4, pass: "dce", min_opt: 2, introduced: 600, fixed: None, trigger: SelfAssignment },
        BugSpec { id: "gcc-samevar5", compiler: "gcc-sim", component: TreeOptimization, kind: Crash("internal compiler error: in build_reassoc_tree, at tree-ssa-reassoc.c"), priority: P3, pass: "fold", min_opt: 2, introduced: 520, fixed: None, trigger: SameVarTimes(4) },
        BugSpec { id: "gcc-struct-fe", compiler: "gcc-sim", component: Cpp, kind: Crash("internal compiler error: in dfs_walk_once, at cp/search.c"), priority: P3, pass: "sema", min_opt: 0, introduced: 440, fixed: None, trigger: UsesStruct },
        BugSpec { id: "gcc-divself", compiler: "gcc-sim", component: C, kind: Crash("internal compiler error: in c_fully_fold_internal, at c/c-fold.c"), priority: P3, pass: "fold", min_opt: 0, introduced: 600, fixed: None, trigger: DivBySelf },
        BugSpec { id: "gcc-deep-expr", compiler: "gcc-sim", component: MiddleEnd, kind: Performance, priority: P4, pass: "fold", min_opt: 1, introduced: 485, fixed: None, trigger: DeepExpression(8) },
        BugSpec { id: "gcc-addr-global", compiler: "gcc-sim", component: Ipa, kind: Crash("internal compiler error: in ipa_ref_referring, at ipa-ref.c"), priority: P3, pass: "sema", min_opt: 3, introduced: 520, fixed: Some(700), trigger: AddrOfGlobal },
        BugSpec { id: "gcc-call-loopcond", compiler: "gcc-sim", component: TreeOptimization, kind: Crash("internal compiler error: in estimate_numbers_of_iterations, at tree-ssa-loop-niter.c"), priority: P2, pass: "loop", min_opt: 3, introduced: 600, fixed: None, trigger: CallInLoopCond },
        BugSpec { id: "gcc-varshift", compiler: "gcc-sim", component: Target, kind: Crash("internal compiler error: output_operand: invalid shift operand"), priority: P3, pass: "emit", min_opt: 1, introduced: 485, fixed: Some(520), trigger: VariableShift },
        BugSpec { id: "gcc-decl-label", compiler: "gcc-sim", component: MiddleEnd, kind: Crash("internal compiler error: in expand_goto, at stmt.c"), priority: P3, pass: "lower", min_opt: 0, introduced: 440, fixed: Some(485), trigger: DeclAfterLabelWithBackGoto },
        BugSpec { id: "gcc-dec-outer", compiler: "gcc-sim", component: TreeOptimization, kind: Crash("internal compiler error: in vect_analyze_loop_form, at tree-vect-loop.c"), priority: P3, pass: "loop", min_opt: 3, introduced: 520, fixed: None, trigger: DecrementingOuterLoop },
        BugSpec { id: "gcc-comma-call", compiler: "gcc-sim", component: C, kind: Crash("internal compiler error: in convert_arguments, at c/c-typeck.c"), priority: P4, pass: "sema", min_opt: 0, introduced: 500, fixed: Some(520), trigger: CommaInCall },
        BugSpec { id: "gcc-distinct6", compiler: "gcc-sim", component: RtlOptimization, kind: Performance, priority: P5, pass: "regalloc", min_opt: 2, introduced: 440, fixed: None, trigger: DistinctVars(6) },
        BugSpec { id: "gcc-samevar6-wc", compiler: "gcc-sim", component: TreeOptimization, kind: WrongCode, priority: P2, pass: "ccp", min_opt: 2, introduced: 700, fixed: None, trigger: SameVarTimes(6) },
        // ---- Clang-sim -----------------------------------------------
        BugSpec { id: "clang-26973", compiler: "clang-sim", component: TreeOptimization, kind: Crash("Assertion `MRI->getVRegDef(reg) && \"Register use before def!\"' failed"), priority: P2, pass: "regalloc", min_opt: 1, introduced: 370, fixed: Some(390), trigger: DecrementingOuterLoop },
        BugSpec { id: "clang-26994", compiler: "clang-sim", component: MiddleEnd, kind: WrongCode, priority: P1, pass: "dce", min_opt: 1, introduced: 370, fixed: None, trigger: DeclAfterLabelWithBackGoto },
        BugSpec { id: "clang-split-op", compiler: "clang-sim", component: Target, kind: Crash("fatal error: error in backend: Do not know how to split the result of this operator!"), priority: P2, pass: "lower", min_opt: 1, introduced: 350, fixed: None, trigger: VariableShift },
        BugSpec { id: "clang-regname", compiler: "clang-sim", component: Target, kind: Crash("fatal error: error in backend: Invalid register name global variable."), priority: P3, pass: "emit", min_opt: 3, introduced: 360, fixed: Some(380), trigger: AddrOfGlobal },
        BugSpec { id: "clang-stacktop", compiler: "clang-sim", component: Target, kind: Crash("fatal error: error in backend: Access past stack top!"), priority: P3, pass: "lower", min_opt: 2, introduced: 350, fixed: None, trigger: TernaryIdenticalArms },
        BugSpec { id: "clang-sdnode", compiler: "clang-sim", component: Target, kind: Crash("Assertion `Num < NumOperands && \"Invalid child # of SDNode!\"' failed"), priority: P3, pass: "lower", min_opt: 2, introduced: 360, fixed: None, trigger: CommaInCall },
        BugSpec { id: "clang-28045", compiler: "clang-sim", component: Cpp, kind: Crash("Assertion failed: isa<TemplateSpecializationType>(Ty) in mangleType"), priority: P3, pass: "sema", min_opt: 0, introduced: 360, fixed: Some(390), trigger: UsesStruct },
        BugSpec { id: "clang-samevar4", compiler: "clang-sim", component: TreeOptimization, kind: Crash("Assertion `isReassociable(I)' failed in Reassociate.cpp"), priority: P3, pass: "fold", min_opt: 2, introduced: 370, fixed: None, trigger: SameVarTimes(4) },
        BugSpec { id: "clang-backgoto", compiler: "clang-sim", component: MiddleEnd, kind: Crash("Assertion `LoopHeaders.empty()' failed in SimplifyCFG.cpp"), priority: P3, pass: "loop", min_opt: 2, introduced: 350, fixed: Some(370), trigger: GotoIntoBranch },
        BugSpec { id: "clang-subself-wc", compiler: "clang-sim", component: TreeOptimization, kind: WrongCode, priority: P2, pass: "fold", min_opt: 2, introduced: 380, fixed: None, trigger: SubSelf },
        BugSpec { id: "clang-deep-expr", compiler: "clang-sim", component: MiddleEnd, kind: Performance, priority: P4, pass: "fold", min_opt: 1, introduced: 350, fixed: None, trigger: DeepExpression(10) },
        BugSpec { id: "clang-distinct5", compiler: "clang-sim", component: RtlOptimization, kind: Crash("Assertion `!NodePtr->isKnownSentinel()' failed in ilist_iterator"), priority: P3, pass: "regalloc", min_opt: 2, introduced: 360, fixed: None, trigger: DistinctVars(5) },
    ]
}

/// Evaluates whether `trigger` matches the program.
///
/// Single-use convenience over [`scan_facts`]: walks the whole AST for
/// one answer. Callers evaluating many triggers against the same
/// program (the compiler does — one per live bug) should scan once and
/// query the returned [`TriggerFacts`] instead.
pub fn trigger_matches(trigger: Trigger, p: &Program) -> bool {
    scan_facts(p).matches(trigger)
}

/// Walks `p` once and collects every structural fact the [`Trigger`]
/// vocabulary can ask about.
///
/// The facts borrow identifier names from the program, so the program
/// must outlive them; scanning allocates only a few reusable scratch
/// buffers regardless of program size.
pub fn scan_facts(p: &Program) -> TriggerFacts<'_> {
    let mut m = TriggerFacts::default();
    m.scan(p);
    m
}

impl<'p> TriggerFacts<'p> {
    /// Whether `trigger` matches the scanned program.
    pub fn matches(&self, trigger: Trigger) -> bool {
        match trigger {
            Trigger::TernaryIdenticalArms => self.ternary_identical,
            Trigger::SelfAssignment => self.self_assignment,
            Trigger::SubSelf => self.sub_self,
            Trigger::SameVarTimes(n) => self.max_same_var >= n as usize,
            Trigger::DistinctVars(n) => self.max_distinct_vars >= n as usize,
            Trigger::BackwardGoto => self.backward_goto,
            Trigger::GotoIntoBranch => self.goto_into_branch,
            Trigger::AliasedPointerStores => self.aliased_pointer_stores,
            Trigger::SelfIndexedArray => self.self_indexed_array,
            Trigger::DeclAfterLabelWithBackGoto => self.decl_after_label_back_goto,
            Trigger::DecrementingOuterLoop => self.decrementing_outer_loop,
            Trigger::VariableShift => self.variable_shift,
            Trigger::CommaInCall => self.comma_in_call,
            Trigger::DeepExpression(n) => self.max_expr_depth >= n as usize,
            Trigger::DivBySelf => self.div_by_self,
            Trigger::UsesStruct => self.uses_struct,
            Trigger::AddrOfGlobal => self.addr_of_global,
            Trigger::CallInLoopCond => self.call_in_loop_cond,
        }
    }
}

/// Structural facts collected in one AST walk, borrowing identifier
/// names from the scanned program. Build with [`scan_facts`], query
/// with [`TriggerFacts::matches`].
#[derive(Debug, Default)]
pub struct TriggerFacts<'p> {
    ternary_identical: bool,
    self_assignment: bool,
    sub_self: bool,
    max_same_var: usize,
    max_distinct_vars: usize,
    backward_goto: bool,
    goto_into_branch: bool,
    aliased_pointer_stores: bool,
    self_indexed_array: bool,
    decl_after_label_back_goto: bool,
    decrementing_outer_loop: bool,
    variable_shift: bool,
    comma_in_call: bool,
    max_expr_depth: usize,
    div_by_self: bool,
    uses_struct: bool,
    addr_of_global: bool,
    call_in_loop_cond: bool,
    globals: Vec<&'p str>,
    next_branch: usize,
    name_scratch: Vec<&'p str>,
}

/// Structural equality of expressions up to occurrence/node ids — the
/// analogue of GCC's `operand_equal_p`.
pub fn exprs_equal(a: &Expr, b: &Expr) -> bool {
    match (&a.kind, &b.kind) {
        (ExprKind::IntLit(x), ExprKind::IntLit(y)) => x == y,
        (ExprKind::CharLit(x), ExprKind::CharLit(y)) => x == y,
        (ExprKind::StrLit(x), ExprKind::StrLit(y)) => x == y,
        (ExprKind::Ident(x), ExprKind::Ident(y)) => x.name == y.name,
        (ExprKind::Unary(o1, e1), ExprKind::Unary(o2, e2)) => o1 == o2 && exprs_equal(e1, e2),
        (ExprKind::Post(o1, e1), ExprKind::Post(o2, e2)) => o1 == o2 && exprs_equal(e1, e2),
        (ExprKind::Binary(o1, a1, b1), ExprKind::Binary(o2, a2, b2)) => {
            o1 == o2 && exprs_equal(a1, a2) && exprs_equal(b1, b2)
        }
        (ExprKind::Assign(o1, a1, b1), ExprKind::Assign(o2, a2, b2)) => {
            o1 == o2 && exprs_equal(a1, a2) && exprs_equal(b1, b2)
        }
        (ExprKind::Ternary(c1, t1, e1), ExprKind::Ternary(c2, t2, e2)) => {
            exprs_equal(c1, c2) && exprs_equal(t1, t2) && exprs_equal(e1, e2)
        }
        (ExprKind::Call(n1, a1), ExprKind::Call(n2, a2)) => {
            n1 == n2 && a1.len() == a2.len() && a1.iter().zip(a2).all(|(x, y)| exprs_equal(x, y))
        }
        (ExprKind::Index(a1, i1), ExprKind::Index(a2, i2)) => {
            exprs_equal(a1, a2) && exprs_equal(i1, i2)
        }
        (ExprKind::Member(e1, f1, ar1), ExprKind::Member(e2, f2, ar2)) => {
            f1 == f2 && ar1 == ar2 && exprs_equal(e1, e2)
        }
        (ExprKind::Cast(t1, e1), ExprKind::Cast(t2, e2)) => t1 == t2 && exprs_equal(e1, e2),
        (ExprKind::Comma(a1, b1), ExprKind::Comma(a2, b2)) => {
            exprs_equal(a1, a2) && exprs_equal(b1, b2)
        }
        _ => false,
    }
}

impl<'p> TriggerFacts<'p> {
    fn scan(&mut self, p: &'p Program) {
        for item in &p.items {
            match item {
                Item::Struct(_) => self.uses_struct = true,
                Item::Global(decls) => {
                    for d in decls {
                        self.globals.push(d.name.as_str());
                        if let Some(init) = &d.init {
                            self.expr(init, false);
                        }
                    }
                }
                Item::Func(f) => {
                    let mut labels_seen: Vec<(&str, usize)> = Vec::new();
                    let mut saw_back_goto = false;
                    self.stmts(&f.body, &mut labels_seen, &mut saw_back_goto, 0, 0);
                    // Second walk for decl-after-label with a backward
                    // goto present anywhere in the function.
                    if saw_back_goto {
                        let mut after_label = false;
                        Self::decl_after_label(
                            &f.body,
                            &mut after_label,
                            &mut self.decl_after_label_back_goto,
                        );
                    }
                }
            }
        }
    }

    fn decl_after_label(stmts: &[Stmt], after_label: &mut bool, found: &mut bool) {
        for s in stmts {
            match s {
                Stmt::Label(_, inner) => {
                    *after_label = true;
                    Self::decl_after_label(std::slice::from_ref(inner), after_label, found);
                }
                Stmt::Decl(_) if *after_label => *found = true,
                Stmt::Block(b) => Self::decl_after_label(b, after_label, found),
                Stmt::If(_, t, e) => {
                    Self::decl_after_label(std::slice::from_ref(t), after_label, found);
                    if let Some(e) = e {
                        Self::decl_after_label(std::slice::from_ref(e), after_label, found);
                    }
                }
                Stmt::While(_, b) | Stmt::DoWhile(b, _) | Stmt::For(_, _, _, b) => {
                    Self::decl_after_label(std::slice::from_ref(b), after_label, found);
                }
                _ => {}
            }
        }
    }

    fn stmts(
        &mut self,
        stmts: &'p [Stmt],
        labels: &mut Vec<(&'p str, usize)>,
        saw_back_goto: &mut bool,
        in_branch: usize,
        loop_depth: usize,
    ) {
        // Track pointer initializations for the alias pattern, per
        // statement list.
        let mut ptr_inits: Vec<(&str, &str)> = Vec::new(); // (ptr, target)
        let mut stored_through: Vec<&str> = Vec::new();
        for s in stmts {
            match s {
                Stmt::Decl(decls) => {
                    for d in decls {
                        if let Some(init) = &d.init {
                            if d.ty.pointers > 0 {
                                if let ExprKind::Unary(UnaryOp::Addr, inner) = &init.kind {
                                    if let ExprKind::Ident(id) = &inner.kind {
                                        ptr_inits.push((d.name.as_str(), id.name.as_str()));
                                    }
                                }
                            }
                            self.expr(init, loop_depth > 0);
                        }
                    }
                }
                Stmt::Expr(e) => {
                    // `*p = …` store-through tracking.
                    if let ExprKind::Assign(_, lhs, _) = &e.kind {
                        if let ExprKind::Unary(UnaryOp::Deref, inner) = &lhs.kind {
                            if let ExprKind::Ident(id) = &inner.kind {
                                stored_through.push(id.name.as_str());
                            }
                        }
                    }
                    self.expr(e, loop_depth > 0);
                }
                Stmt::Label(name, inner) => {
                    labels.push((name.as_str(), in_branch));
                    // (branch id 0 = outside any conditional)
                    self.stmts(
                        std::slice::from_ref(inner),
                        labels,
                        saw_back_goto,
                        in_branch,
                        loop_depth,
                    );
                }
                Stmt::Goto(name) => {
                    if let Some((_, label_branch)) = labels.iter().find(|(l, _)| *l == name.as_str()) {
                        self.backward_goto = true;
                        *saw_back_goto = true;
                        if *label_branch != 0 && *label_branch != in_branch {
                            self.goto_into_branch = true;
                        }
                    }
                }
                Stmt::Block(b) => self.stmts(b, labels, saw_back_goto, in_branch, loop_depth),
                Stmt::If(c, t, e) => {
                    self.expr(c, loop_depth > 0);
                    self.next_branch += 1;
                    let then_id = self.next_branch;
                    self.stmts(
                        std::slice::from_ref(t),
                        labels,
                        saw_back_goto,
                        then_id,
                        loop_depth,
                    );
                    if let Some(e) = e {
                        self.next_branch += 1;
                        let else_id = self.next_branch;
                        self.stmts(
                            std::slice::from_ref(e),
                            labels,
                            saw_back_goto,
                            else_id,
                            loop_depth,
                        );
                    }
                }
                Stmt::While(c, b) => {
                    self.expr_in_loop_cond(c);
                    self.stmts(
                        std::slice::from_ref(b),
                        labels,
                        saw_back_goto,
                        in_branch,
                        loop_depth + 1,
                    );
                }
                Stmt::DoWhile(b, c) => {
                    self.stmts(
                        std::slice::from_ref(b),
                        labels,
                        saw_back_goto,
                        in_branch,
                        loop_depth + 1,
                    );
                    self.expr_in_loop_cond(c);
                }
                Stmt::For(init, cond, step, b) => {
                    match init {
                        Some(ForInit::Decl(ds)) => {
                            for d in ds {
                                if let Some(i) = &d.init {
                                    self.expr(i, loop_depth > 0);
                                }
                            }
                        }
                        Some(ForInit::Expr(e)) => self.expr(e, loop_depth > 0),
                        None => {}
                    }
                    if let Some(c) = cond {
                        self.expr_in_loop_cond(c);
                    }
                    if let Some(st) = step {
                        // `for (;; p1--)` with an inner loop: the
                        // decrementing-outer-loop pattern.
                        if loop_depth == 0 && Self::is_decrement(st) && Self::contains_loop(b) {
                            self.decrementing_outer_loop = true;
                        }
                        self.expr(st, true);
                    }
                    self.stmts(
                        std::slice::from_ref(b),
                        labels,
                        saw_back_goto,
                        in_branch,
                        loop_depth + 1,
                    );
                }
                Stmt::Return(Some(e)) => self.expr(e, loop_depth > 0),
                _ => {}
            }
        }
        // Alias pattern: two distinct pointers initialized from the same
        // target, both stored through.
        for (i, (p1, t1)) in ptr_inits.iter().enumerate() {
            for (p2, t2) in ptr_inits.iter().skip(i + 1) {
                if p1 != p2
                    && t1 == t2
                    && stored_through.contains(p1)
                    && stored_through.contains(p2)
                {
                    self.aliased_pointer_stores = true;
                }
            }
        }
    }

    fn is_decrement(e: &Expr) -> bool {
        matches!(
            &e.kind,
            ExprKind::Post(PostOp::Dec, _) | ExprKind::Unary(UnaryOp::PreDec, _)
        )
    }

    fn contains_loop(s: &Stmt) -> bool {
        match s {
            Stmt::While(..) | Stmt::DoWhile(..) | Stmt::For(..) => true,
            Stmt::Block(b) => b.iter().any(Self::contains_loop),
            Stmt::If(_, t, e) => {
                Self::contains_loop(t) || e.as_ref().is_some_and(|e| Self::contains_loop(e))
            }
            Stmt::Label(_, inner) => Self::contains_loop(inner),
            _ => false,
        }
    }

    fn expr_in_loop_cond(&mut self, e: &'p Expr) {
        if contains_call(e) {
            self.call_in_loop_cond = true;
        }
        self.expr(e, true);
    }

    fn expr(&mut self, e: &'p Expr, _in_loop: bool) {
        // Per-expression variable statistics, via a reused scratch
        // buffer of borrowed names (this is the compile hot path).
        let mut sorted = std::mem::take(&mut self.name_scratch);
        sorted.clear();
        e.for_each_ident(&mut |id| sorted.push(id.name.as_str()));
        sorted.sort_unstable();
        let mut max_same = 0;
        let mut run = 0;
        let mut prev: Option<&str> = None;
        for &n in &sorted {
            if prev == Some(n) {
                run += 1;
            } else {
                run = 1;
                prev = Some(n);
            }
            max_same = max_same.max(run);
        }
        self.max_same_var = self.max_same_var.max(max_same);
        sorted.dedup();
        self.max_distinct_vars = self.max_distinct_vars.max(sorted.len());
        self.name_scratch = sorted;
        self.max_expr_depth = self.max_expr_depth.max(expr_depth(e));
        self.expr_patterns(e);
    }

    fn expr_patterns(&mut self, e: &'p Expr) {
        match &e.kind {
            ExprKind::Ternary(_, t, els) if exprs_equal(t, els) => {
                self.ternary_identical = true;
            }
            ExprKind::Assign(AssignOp::Assign, lhs, rhs) if exprs_equal(lhs, rhs) => {
                self.self_assignment = true;
            }
            ExprKind::Binary(BinaryOp::Sub, a, b)
                if !matches!(a.kind, ExprKind::IntLit(_)) && exprs_equal(a, b) =>
            {
                self.sub_self = true;
            }
            ExprKind::Binary(BinaryOp::Div | BinaryOp::Rem, a, b) if exprs_equal(a, b) => {
                self.div_by_self = true;
            }
            ExprKind::Binary(BinaryOp::Shl | BinaryOp::Shr, _, amount)
                if !matches!(amount.kind, ExprKind::IntLit(_) | ExprKind::CharLit(_)) =>
            {
                self.variable_shift = true;
            }
            ExprKind::Unary(UnaryOp::Addr, inner) => {
                if let ExprKind::Ident(id) = &inner.kind {
                    if self.globals.contains(&id.name.as_str()) {
                        self.addr_of_global = true;
                    }
                }
            }
            ExprKind::Call(_, args) => {
                for a in args {
                    if matches!(a.kind, ExprKind::Comma(_, _)) {
                        self.comma_in_call = true;
                    }
                }
            }
            ExprKind::Index(_, idx) if !self.self_indexed_array => {
                let mut names = std::mem::take(&mut self.name_scratch);
                names.clear();
                idx.for_each_ident(&mut |id| names.push(id.name.as_str()));
                names.sort_unstable();
                for w in names.windows(2) {
                    if w[0] == w[1] {
                        self.self_indexed_array = true;
                    }
                }
                self.name_scratch = names;
            }
            _ => {}
        }
        // Recurse.
        match &e.kind {
            ExprKind::Unary(_, a) | ExprKind::Post(_, a) | ExprKind::Cast(_, a) => {
                self.expr_patterns(a)
            }
            ExprKind::Binary(_, a, b)
            | ExprKind::Assign(_, a, b)
            | ExprKind::Index(a, b)
            | ExprKind::Comma(a, b) => {
                self.expr_patterns(a);
                self.expr_patterns(b);
            }
            ExprKind::Ternary(c, t, els) => {
                self.expr_patterns(c);
                self.expr_patterns(t);
                self.expr_patterns(els);
            }
            ExprKind::Call(_, args) => {
                for a in args {
                    self.expr_patterns(a);
                }
            }
            ExprKind::Member(a, _, _) => self.expr_patterns(a),
            _ => {}
        }
    }
}

fn contains_call(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Call(name, _) if name != "__init_list" => true,
        ExprKind::Unary(_, a) | ExprKind::Post(_, a) | ExprKind::Cast(_, a) => contains_call(a),
        ExprKind::Binary(_, a, b)
        | ExprKind::Assign(_, a, b)
        | ExprKind::Index(a, b)
        | ExprKind::Comma(a, b) => contains_call(a) || contains_call(b),
        ExprKind::Ternary(c, t, e2) => contains_call(c) || contains_call(t) || contains_call(e2),
        ExprKind::Call(_, args) => args.iter().any(contains_call),
        ExprKind::Member(a, _, _) => contains_call(a),
        _ => false,
    }
}

fn expr_depth(e: &Expr) -> usize {
    1 + match &e.kind {
        ExprKind::Unary(_, a) | ExprKind::Post(_, a) | ExprKind::Cast(_, a) => expr_depth(a),
        ExprKind::Binary(_, a, b)
        | ExprKind::Assign(_, a, b)
        | ExprKind::Index(a, b)
        | ExprKind::Comma(a, b) => expr_depth(a).max(expr_depth(b)),
        ExprKind::Ternary(c, t, e2) => expr_depth(c).max(expr_depth(t)).max(expr_depth(e2)),
        ExprKind::Call(_, args) => args.iter().map(expr_depth).max().unwrap_or(0),
        ExprKind::Member(a, _, _) => expr_depth(a),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_minic::parse;

    fn matches(trigger: Trigger, src: &str) -> bool {
        trigger_matches(trigger, &parse(src).expect("parses"))
    }

    #[test]
    fn figure3_ternary_identical() {
        let src = "int d, e, b, c; void bar(void) { e ? (d==0 ? b : c) : (d==0 ? b : c); }";
        assert!(matches(Trigger::TernaryIdenticalArms, src));
        let orig = "int d, e, b, c; void bar(void) { e ? (d==0 ? b : c) : (e==0 ? b : c); }";
        assert!(!matches(Trigger::TernaryIdenticalArms, orig));
    }

    #[test]
    fn figure2_alias_pattern() {
        let src = "int a = 0; int main() { int *p = &a, *q = &a; *p = 1; *q = 2; return a; }";
        assert!(matches(Trigger::AliasedPointerStores, src));
        let benign =
            "int a = 0, b = 0; int main() { int *p = &a, *q = &b; *p = 1; *q = 2; return a; }";
        assert!(!matches(Trigger::AliasedPointerStores, benign));
    }

    #[test]
    fn figure12b_self_indexed_array() {
        let src = "double u[100]; int a; void f() { u[a + 13 * a] = 2; }";
        assert!(matches(Trigger::SelfIndexedArray, src));
        let orig = "double u[100]; int a, b; void f() { u[a + 13 * b] = 2; }";
        assert!(!matches(Trigger::SelfIndexedArray, orig));
    }

    #[test]
    fn figure11b_goto_into_branch() {
        let src = r#"
            char a; short b;
            void fn1() {
                if (b) ;
                else {
                    l1: ;
                }
                if (a) goto l1;
            }
        "#;
        assert!(matches(Trigger::GotoIntoBranch, src));
        assert!(matches(Trigger::BackwardGoto, src));
    }

    #[test]
    fn figure11d_decl_after_label() {
        let src = r#"
            int main() {
                int *p = 0;
                trick:
                if (p) return *p;
                int x = 0;
                p = &x;
                goto trick;
                return 0;
            }
        "#;
        assert!(matches(Trigger::DeclAfterLabelWithBackGoto, src));
    }

    #[test]
    fn figure11c_decrementing_outer_loop() {
        let src = r#"
            int a; double b; double c[10];
            void fn1(int p1) {
                for (;; p1--) {
                    a = p1;
                    for (; p1 >= a; a--) b = c[0];
                }
            }
        "#;
        assert!(matches(Trigger::DecrementingOuterLoop, src));
    }

    #[test]
    fn variable_statistics() {
        assert!(matches(
            Trigger::SameVarTimes(3),
            "int a, b; void f() { b = a + a * a; }"
        ));
        assert!(!matches(
            Trigger::SameVarTimes(4),
            "int a, b; void f() { b = a + a * a; }"
        ));
        assert!(matches(
            Trigger::DistinctVars(4),
            "int a, b, c, d; void f() { a = b + c * d - a; }"
        ));
    }

    #[test]
    fn misc_triggers() {
        assert!(matches(
            Trigger::SelfAssignment,
            "int x; void f() { x = x; }"
        ));
        assert!(matches(
            Trigger::SubSelf,
            "int x, y; void f() { y = (x + 1) - (x + 1); }"
        ));
        assert!(matches(
            Trigger::DivBySelf,
            "int x, y; void f() { y = x / x; }"
        ));
        assert!(matches(
            Trigger::VariableShift,
            "int x, n; void f() { x = x << n; }"
        ));
        assert!(!matches(
            Trigger::VariableShift,
            "int x; void f() { x = x << 2; }"
        ));
        assert!(matches(
            Trigger::CommaInCall,
            "int a; void g(int x) {} void f() { g((a = 1, a)); }"
        ));
        assert!(matches(
            Trigger::UsesStruct,
            "struct s { int x; }; int main() { return 0; }"
        ));
        assert!(matches(
            Trigger::AddrOfGlobal,
            "int g; int *p; void f() { p = &g; }"
        ));
        assert!(matches(
            Trigger::CallInLoopCond,
            "int k(void) { return 0; } void f() { while (k()) ; }"
        ));
    }

    #[test]
    fn registry_is_consistent() {
        let regs = registry();
        assert!(regs.len() >= 30, "expected a rich bug registry");
        let mut ids = std::collections::HashSet::new();
        for b in &regs {
            assert!(ids.insert(b.id), "duplicate bug id {}", b.id);
            assert!(b.min_opt <= 3);
            assert!(
                b.compiler == "gcc-sim" || b.compiler == "clang-sim",
                "unknown compiler {}",
                b.compiler
            );
            if let Some(f) = b.fixed {
                assert!(f > b.introduced, "{} fixed before introduced", b.id);
            }
        }
        // The long-latent Figure 2 bug is live from gcc 4.4 to trunk.
        let b69951 = regs.iter().find(|b| b.id == "gcc-69951").expect("present");
        assert!(b69951.live_in(440));
        assert!(b69951.live_in(700));
    }

    #[test]
    fn version_gating() {
        let regs = registry();
        let lra = regs
            .iter()
            .find(|b| b.id == "gcc-lra-1281")
            .expect("present");
        assert!(lra.live_in(485));
        assert!(!lra.live_in(600), "fixed in 600");
        assert_eq!(lra.affected_versions(GCC_VERSIONS), vec![485, 500, 520]);
    }
}
