//! Reference interpreter for mini-C with undefined-behaviour detection.
//!
//! Plays the role CompCert's reference interpreter plays in the paper
//! (§5.1, §5.4): the trusted oracle that (a) defines the expected output
//! of a test program and (b) flags programs whose behaviour is undefined
//! so they are excluded from differential comparison.
//!
//! The runtime model is deliberately simple: every scalar is an `i64`;
//! pointers are `(variable, element offset)` handles; arrays are
//! fixed-size cell vectors. Detected UB: uninitialized reads, division by
//! zero, signed overflow, out-of-bounds accesses, null dereferences and
//! call-depth/fuel exhaustion.

use spe_minic::ast::*;
use std::collections::HashMap;
use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// Integer (all scalar types share this representation).
    Int(i64),
    /// Pointer to an element of a variable (globals and locals alike).
    Ptr(PtrTarget),
    /// The null pointer.
    Null,
}

/// Target of a pointer: a storage cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PtrTarget {
    /// Storage slot id (assigned by the interpreter).
    pub slot: usize,
    /// Element offset for arrays.
    pub offset: usize,
}

/// Undefined behaviour (or resource exhaustion) detected by the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ub {
    /// Read of an uninitialized scalar or array element.
    UninitializedRead(String),
    /// Division or remainder by zero.
    DivByZero,
    /// Signed integer overflow.
    Overflow,
    /// Array or pointer access outside its object.
    OutOfBounds(String),
    /// Dereference of a null or invalid pointer.
    BadDeref,
    /// The program exceeded its fuel (possible non-termination).
    FuelExhausted,
    /// Call stack too deep.
    StackOverflow,
    /// Construct outside the executable subset (e.g. structs).
    Unsupported(String),
    /// Call to an unknown function.
    UnknownFunction(String),
    /// `main` is missing.
    NoMain,
}

impl fmt::Display for Ub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ub::UninitializedRead(n) => write!(f, "uninitialized read of `{n}`"),
            Ub::DivByZero => f.write_str("division by zero"),
            Ub::Overflow => f.write_str("signed integer overflow"),
            Ub::OutOfBounds(n) => write!(f, "out-of-bounds access on `{n}`"),
            Ub::BadDeref => f.write_str("invalid pointer dereference"),
            Ub::FuelExhausted => f.write_str("fuel exhausted (possible non-termination)"),
            Ub::StackOverflow => f.write_str("call stack overflow"),
            Ub::Unsupported(w) => write!(f, "unsupported construct: {w}"),
            Ub::UnknownFunction(n) => write!(f, "call to unknown function `{n}`"),
            Ub::NoMain => f.write_str("program has no main function"),
        }
    }
}

impl std::error::Error for Ub {}

/// Result of a successful (defined-behaviour) execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    /// `main`'s return value (the process exit code in the paper's bug
    /// reports).
    pub exit_code: i64,
    /// Output produced by `printf`-style calls, in order.
    pub output: Vec<String>,
}

/// Interpreter limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Statement/expression evaluation budget.
    pub fuel: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            fuel: 200_000,
            max_depth: 64,
        }
    }
}

/// Interprets a program's `main` under strict UB detection.
///
/// # Errors
///
/// Returns the first [`Ub`] encountered; programs rejected here are
/// excluded from differential testing, mirroring §5.4.
///
/// # Examples
///
/// ```
/// let p = spe_minic::parse("int main() { int a = 2, b = 3; return a * b; }")?;
/// let exec = spe_simcc::interp::run(&p, spe_simcc::interp::Limits::default())?;
/// assert_eq!(exec.exit_code, 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run(p: &Program, limits: Limits) -> Result<Execution, Ub> {
    let mut interp = Interp {
        program: p,
        slots: Vec::new(),
        globals: HashMap::new(),
        fuel: limits.fuel,
        max_depth: limits.max_depth,
        output: Vec::new(),
    };
    interp.init_globals()?;
    let main = p.function("main").ok_or(Ub::NoMain)?;
    let ret = interp.call(main, Vec::new(), 0)?;
    Ok(Execution {
        exit_code: match ret {
            Some(Value::Int(v)) => v & 0xff, // exit codes are 8-bit
            _ => 0,
        },
        output: interp.output,
    })
}

/// A storage slot: a named object of one or more cells.
#[derive(Debug, Clone)]
struct Slot {
    name: String,
    cells: Vec<Option<Value>>,
}

struct Interp<'p> {
    program: &'p Program,
    slots: Vec<Slot>,
    /// Global name -> slot.
    globals: HashMap<String, usize>,
    fuel: u64,
    max_depth: usize,
    output: Vec<String>,
}

/// Lexical environment of one function activation: name -> slot, innermost
/// scope last.
type Env = Vec<HashMap<String, usize>>;

enum Flow {
    Normal,
    Return(Option<Value>),
    Break,
    Continue,
    Goto(String),
}

impl<'p> Interp<'p> {
    fn burn(&mut self) -> Result<(), Ub> {
        if self.fuel == 0 {
            return Err(Ub::FuelExhausted);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn alloc(&mut self, name: &str, ty: &Type, init_zero: bool) -> Result<usize, Ub> {
        if matches!(ty.base, BaseType::Struct(_)) && ty.pointers == 0 {
            return Err(Ub::Unsupported("struct object".into()));
        }
        let n = ty.array.map(|n| n.max(1) as usize).unwrap_or(1);
        if n > 1 << 20 {
            return Err(Ub::Unsupported("huge array".into()));
        }
        let cells = vec![if init_zero { Some(Value::Int(0)) } else { None }; n];
        self.slots.push(Slot {
            name: name.to_string(),
            cells,
        });
        Ok(self.slots.len() - 1)
    }

    fn init_globals(&mut self) -> Result<(), Ub> {
        // Two passes: allocate all globals (zero-initialized, as in C),
        // then evaluate initializers in order.
        let items: Vec<&Item> = self.program.items.iter().collect();
        for item in &items {
            if let Item::Global(decls) = item {
                for d in decls {
                    let slot = self.alloc(&d.name, &d.ty, true)?;
                    self.globals.insert(d.name.clone(), slot);
                }
            }
        }
        for item in &items {
            if let Item::Global(decls) = item {
                for d in decls {
                    if let Some(init) = &d.init {
                        let slot = self.globals[&d.name];
                        let env: Env = Vec::new();
                        self.init_slot(slot, init, &env, 0)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn init_slot(
        &mut self,
        slot: usize,
        init: &'p Expr,
        env: &Env,
        depth: usize,
    ) -> Result<(), Ub> {
        if let ExprKind::Call(name, args) = &init.kind {
            if name == "__init_list" {
                for (i, a) in args.iter().enumerate() {
                    let v = self.eval(a, env, depth)?;
                    let len = self.slots[slot].cells.len();
                    if i >= len {
                        return Err(Ub::OutOfBounds(self.slots[slot].name.clone()));
                    }
                    self.slots[slot].cells[i] = Some(v);
                }
                // Remaining elements of a brace-initialized object are
                // zero (C semantics).
                for c in self.slots[slot].cells.iter_mut() {
                    if c.is_none() {
                        *c = Some(Value::Int(0));
                    }
                }
                return Ok(());
            }
        }
        let v = self.eval(init, env, depth)?;
        self.slots[slot].cells[0] = Some(v);
        Ok(())
    }

    fn call(
        &mut self,
        f: &'p Function,
        args: Vec<Value>,
        depth: usize,
    ) -> Result<Option<Value>, Ub> {
        if depth >= self.max_depth {
            return Err(Ub::StackOverflow);
        }
        let mut env: Env = vec![HashMap::new()];
        for (param, arg) in f.params.iter().zip(args) {
            let slot = self.alloc(&param.name, &param.ty, false)?;
            self.slots[slot].cells[0] = Some(arg);
            env.last_mut()
                .expect("frame scope")
                .insert(param.name.clone(), slot);
        }
        match self.run_body(&f.body, &mut env, depth)? {
            Flow::Return(v) => Ok(v),
            Flow::Goto(l) => Err(Ub::Unsupported(format!("goto to unknown label `{l}`"))),
            _ => Ok(None),
        }
    }

    /// Runs a statement list with label support: a `goto` unwinds to the
    /// nearest list containing the label and resumes there.
    fn run_body(&mut self, stmts: &'p [Stmt], env: &mut Env, depth: usize) -> Result<Flow, Ub> {
        let mut idx = 0usize;
        'outer: loop {
            while idx < stmts.len() {
                let flow = self.stmt(&stmts[idx], env, depth)?;
                match flow {
                    Flow::Normal => idx += 1,
                    Flow::Goto(label) => {
                        // Do we define the label at this level?
                        for (i, s) in stmts.iter().enumerate() {
                            if stmt_defines_label(s, &label) {
                                idx = i;
                                continue 'outer;
                            }
                        }
                        return Ok(Flow::Goto(label));
                    }
                    other => return Ok(other),
                }
            }
            return Ok(Flow::Normal);
        }
    }

    fn stmt(&mut self, s: &'p Stmt, env: &mut Env, depth: usize) -> Result<Flow, Ub> {
        self.burn()?;
        match s {
            Stmt::Expr(e) => {
                self.eval(e, env, depth)?;
                Ok(Flow::Normal)
            }
            Stmt::Decl(decls) => {
                for d in decls {
                    let slot = self.alloc(&d.name, &d.ty, false)?;
                    env.last_mut().expect("scope").insert(d.name.clone(), slot);
                    if let Some(init) = &d.init {
                        self.init_slot(slot, init, env, depth)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Block(body) => {
                env.push(HashMap::new());
                let flow = self.run_body(body, env, depth)?;
                env.pop();
                Ok(flow)
            }
            Stmt::If(c, t, e) => {
                let v = self.truthy(c, env, depth)?;
                if v {
                    self.stmt(t, env, depth)
                } else if let Some(e) = e {
                    self.stmt(e, env, depth)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While(c, body) => {
                loop {
                    self.burn()?;
                    if !self.truthy(c, env, depth)? {
                        break;
                    }
                    match self.stmt(body, env, depth)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        other => return Ok(other),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::DoWhile(body, c) => {
                loop {
                    self.burn()?;
                    match self.stmt(body, env, depth)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        other => return Ok(other),
                    }
                    if !self.truthy(c, env, depth)? {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For(init, cond, step, body) => {
                env.push(HashMap::new());
                match init {
                    Some(ForInit::Decl(decls)) => {
                        for d in decls {
                            let slot = self.alloc(&d.name, &d.ty, false)?;
                            env.last_mut().expect("scope").insert(d.name.clone(), slot);
                            if let Some(i) = &d.init {
                                self.init_slot(slot, i, env, depth)?;
                            }
                        }
                    }
                    Some(ForInit::Expr(e)) => {
                        self.eval(e, env, depth)?;
                    }
                    None => {}
                }
                let mut result = Flow::Normal;
                loop {
                    self.burn()?;
                    let go = match cond {
                        Some(c) => self.truthy(c, env, depth)?,
                        None => true,
                    };
                    if !go {
                        break;
                    }
                    match self.stmt(body, env, depth)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        other => {
                            result = other;
                            break;
                        }
                    }
                    if let Some(st) = step {
                        self.eval(st, env, depth)?;
                    }
                }
                env.pop();
                Ok(result)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.eval(e, env, depth)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Goto(l) => Ok(Flow::Goto(l.clone())),
            Stmt::Label(_, inner) => self.stmt(inner, env, depth),
            Stmt::Empty => Ok(Flow::Normal),
        }
    }

    fn truthy(&mut self, e: &'p Expr, env: &Env, depth: usize) -> Result<bool, Ub> {
        Ok(match self.eval(e, env, depth)? {
            Value::Int(v) => v != 0,
            Value::Ptr(_) => true,
            Value::Null => false,
        })
    }

    fn lookup(&self, name: &str, env: &Env) -> Option<usize> {
        for scope in env.iter().rev() {
            if let Some(&s) = scope.get(name) {
                return Some(s);
            }
        }
        self.globals.get(name).copied()
    }

    /// Resolves an lvalue expression to a cell.
    fn lvalue(&mut self, e: &'p Expr, env: &Env, depth: usize) -> Result<PtrTarget, Ub> {
        match &e.kind {
            ExprKind::Ident(id) => {
                let slot = self
                    .lookup(&id.name, env)
                    .ok_or_else(|| Ub::UnknownFunction(id.name.clone()))?;
                Ok(PtrTarget { slot, offset: 0 })
            }
            ExprKind::Unary(UnaryOp::Deref, inner) => match self.eval(inner, env, depth)? {
                Value::Ptr(t) => Ok(t),
                Value::Null => Err(Ub::BadDeref),
                Value::Int(_) => Err(Ub::BadDeref),
            },
            ExprKind::Index(base, idx) => {
                let t = self.lvalue_or_ptr(base, env, depth)?;
                let i = self.int(idx, env, depth)?;
                let slot = &self.slots[t.slot];
                let off = t.offset as i64 + i;
                if off < 0 || off as usize >= slot.cells.len() {
                    return Err(Ub::OutOfBounds(slot.name.clone()));
                }
                Ok(PtrTarget {
                    slot: t.slot,
                    offset: off as usize,
                })
            }
            ExprKind::Member(_, _, _) => Err(Ub::Unsupported("struct member access".into())),
            ExprKind::Cast(_, inner) => self.lvalue(inner, env, depth),
            _ => Err(Ub::Unsupported("invalid lvalue".into())),
        }
    }

    /// Array-to-pointer decay for `a[i]` and `p[i]`.
    fn lvalue_or_ptr(&mut self, e: &'p Expr, env: &Env, depth: usize) -> Result<PtrTarget, Ub> {
        if let ExprKind::Ident(id) = &e.kind {
            if let Some(slot) = self.lookup(&id.name, env) {
                if self.slots[slot].cells.len() > 1 {
                    return Ok(PtrTarget { slot, offset: 0 });
                }
                // A scalar: it may hold a pointer.
                return match self.read_cell(slot, 0)? {
                    Value::Ptr(t) => Ok(t),
                    Value::Null => Err(Ub::BadDeref),
                    Value::Int(_) => Err(Ub::BadDeref),
                };
            }
        }
        match self.eval(e, env, depth)? {
            Value::Ptr(t) => Ok(t),
            _ => Err(Ub::BadDeref),
        }
    }

    fn read_cell(&self, slot: usize, offset: usize) -> Result<Value, Ub> {
        let s = &self.slots[slot];
        match s.cells.get(offset) {
            Some(Some(v)) => Ok(*v),
            Some(None) => Err(Ub::UninitializedRead(s.name.clone())),
            None => Err(Ub::OutOfBounds(s.name.clone())),
        }
    }

    fn write_cell(&mut self, t: PtrTarget, v: Value) -> Result<(), Ub> {
        let s = &mut self.slots[t.slot];
        match s.cells.get_mut(t.offset) {
            Some(cell) => {
                *cell = Some(v);
                Ok(())
            }
            None => Err(Ub::OutOfBounds(s.name.clone())),
        }
    }

    fn int(&mut self, e: &'p Expr, env: &Env, depth: usize) -> Result<i64, Ub> {
        match self.eval(e, env, depth)? {
            Value::Int(v) => Ok(v),
            _ => Err(Ub::Unsupported("pointer used as integer".into())),
        }
    }

    fn eval(&mut self, e: &'p Expr, env: &Env, depth: usize) -> Result<Value, Ub> {
        self.burn()?;
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Value::Int(*v)),
            ExprKind::CharLit(c) => Ok(Value::Int(*c as i64)),
            ExprKind::StrLit(_) => Ok(Value::Int(0)), // only as printf fmt
            ExprKind::Ident(id) => {
                let slot = self
                    .lookup(&id.name, env)
                    .ok_or_else(|| Ub::UnknownFunction(id.name.clone()))?;
                if self.slots[slot].cells.len() > 1 {
                    // Array decays to pointer.
                    return Ok(Value::Ptr(PtrTarget { slot, offset: 0 }));
                }
                self.read_cell(slot, 0)
            }
            ExprKind::Unary(op, inner) => match op {
                UnaryOp::Neg => {
                    let v = self.int(inner, env, depth)?;
                    v.checked_neg().map(Value::Int).ok_or(Ub::Overflow)
                }
                UnaryOp::Not => Ok(Value::Int((!self.truthy(inner, env, depth)?) as i64)),
                UnaryOp::BitNot => Ok(Value::Int(!self.int(inner, env, depth)?)),
                UnaryOp::Deref => {
                    let t = match self.eval(inner, env, depth)? {
                        Value::Ptr(t) => t,
                        _ => return Err(Ub::BadDeref),
                    };
                    self.read_cell(t.slot, t.offset)
                }
                UnaryOp::Addr => {
                    let t = self.lvalue(inner, env, depth)?;
                    Ok(Value::Ptr(t))
                }
                UnaryOp::PreInc | UnaryOp::PreDec => {
                    let t = self.lvalue(inner, env, depth)?;
                    let old = match self.read_cell(t.slot, t.offset)? {
                        Value::Int(v) => v,
                        _ => return Err(Ub::Unsupported("++/-- on pointer".into())),
                    };
                    let new = if matches!(op, UnaryOp::PreInc) {
                        old.checked_add(1)
                    } else {
                        old.checked_sub(1)
                    }
                    .ok_or(Ub::Overflow)?;
                    self.write_cell(t, Value::Int(new))?;
                    Ok(Value::Int(new))
                }
            },
            ExprKind::Post(op, inner) => {
                let t = self.lvalue(inner, env, depth)?;
                let old = match self.read_cell(t.slot, t.offset)? {
                    Value::Int(v) => v,
                    _ => return Err(Ub::Unsupported("++/-- on pointer".into())),
                };
                let new = if matches!(op, PostOp::Inc) {
                    old.checked_add(1)
                } else {
                    old.checked_sub(1)
                }
                .ok_or(Ub::Overflow)?;
                self.write_cell(t, Value::Int(new))?;
                Ok(Value::Int(old))
            }
            ExprKind::Binary(op, a, b) => self.binary(*op, a, b, env, depth),
            ExprKind::Assign(op, lhs, rhs) => {
                let t = self.lvalue(lhs, env, depth)?;
                let rv = self.eval(rhs, env, depth)?;
                let result = match op.binary() {
                    None => rv,
                    Some(bop) => {
                        let old = match self.read_cell(t.slot, t.offset)? {
                            Value::Int(v) => v,
                            _ => return Err(Ub::Unsupported("compound assign on pointer".into())),
                        };
                        let rhs_int = match rv {
                            Value::Int(v) => v,
                            _ => return Err(Ub::Unsupported("pointer in compound assign".into())),
                        };
                        Value::Int(arith(bop, old, rhs_int)?)
                    }
                };
                self.write_cell(t, result)?;
                Ok(result)
            }
            ExprKind::Ternary(c, t, els) => {
                if self.truthy(c, env, depth)? {
                    self.eval(t, env, depth)
                } else {
                    self.eval(els, env, depth)
                }
            }
            ExprKind::Call(name, args) => self.builtin_or_call(name, args, env, depth),
            ExprKind::Index(_, _) => {
                let t = self.lvalue(e, env, depth)?;
                self.read_cell(t.slot, t.offset)
            }
            ExprKind::Member(_, _, _) => Err(Ub::Unsupported("struct member access".into())),
            ExprKind::Cast(_, inner) => self.eval(inner, env, depth),
            ExprKind::Comma(a, b) => {
                self.eval(a, env, depth)?;
                self.eval(b, env, depth)
            }
        }
    }

    fn binary(
        &mut self,
        op: BinaryOp,
        a: &'p Expr,
        b: &'p Expr,
        env: &Env,
        depth: usize,
    ) -> Result<Value, Ub> {
        // Short-circuit operators first.
        match op {
            BinaryOp::LogAnd => {
                if !self.truthy(a, env, depth)? {
                    return Ok(Value::Int(0));
                }
                return Ok(Value::Int(self.truthy(b, env, depth)? as i64));
            }
            BinaryOp::LogOr => {
                if self.truthy(a, env, depth)? {
                    return Ok(Value::Int(1));
                }
                return Ok(Value::Int(self.truthy(b, env, depth)? as i64));
            }
            _ => {}
        }
        let av = self.eval(a, env, depth)?;
        let bv = self.eval(b, env, depth)?;
        match (av, bv) {
            (Value::Int(x), Value::Int(y)) => Ok(Value::Int(arith(op, x, y)?)),
            // Pointer comparisons and pointer ± integer.
            (Value::Ptr(p), Value::Int(i)) if matches!(op, BinaryOp::Add | BinaryOp::Sub) => {
                let delta = if op == BinaryOp::Add { i } else { -i };
                let off = p.offset as i64 + delta;
                let len = self.slots[p.slot].cells.len() as i64;
                if off < 0 || off > len {
                    return Err(Ub::OutOfBounds(self.slots[p.slot].name.clone()));
                }
                Ok(Value::Ptr(PtrTarget {
                    slot: p.slot,
                    offset: off as usize,
                }))
            }
            (Value::Ptr(p), Value::Ptr(q)) if op == BinaryOp::Eq => Ok(Value::Int((p == q) as i64)),
            (Value::Ptr(p), Value::Ptr(q)) if op == BinaryOp::Ne => Ok(Value::Int((p != q) as i64)),
            (Value::Null, Value::Null) if op == BinaryOp::Eq => Ok(Value::Int(1)),
            (Value::Null, Value::Null) if op == BinaryOp::Ne => Ok(Value::Int(0)),
            (Value::Ptr(_), Value::Null) | (Value::Null, Value::Ptr(_))
                if matches!(op, BinaryOp::Eq | BinaryOp::Ne) =>
            {
                Ok(Value::Int((op == BinaryOp::Ne) as i64))
            }
            _ => Err(Ub::Unsupported("mixed pointer arithmetic".into())),
        }
    }

    fn builtin_or_call(
        &mut self,
        name: &str,
        args: &'p [Expr],
        env: &Env,
        depth: usize,
    ) -> Result<Value, Ub> {
        match name {
            "printf" => {
                let mut rendered = String::new();
                if let Some(first) = args.first() {
                    if let ExprKind::StrLit(fmt) = &first.kind {
                        rendered.push_str(fmt);
                    }
                }
                let mut vals = Vec::new();
                for a in args.iter().skip(1) {
                    match self.eval(a, env, depth)? {
                        Value::Int(v) => vals.push(v.to_string()),
                        Value::Ptr(_) => vals.push("<ptr>".into()),
                        Value::Null => vals.push("0".into()),
                    }
                }
                if !vals.is_empty() {
                    rendered.push(':');
                    rendered.push_str(&vals.join(","));
                }
                self.output.push(rendered);
                Ok(Value::Int(0))
            }
            "abort" | "exit" => {
                // Modeled as returning a sentinel through UB-free flow is
                // complex; treat as unsupported so variants using them are
                // filtered, like other libc calls.
                Err(Ub::Unsupported(format!("call to `{name}`")))
            }
            "__init_list" => Err(Ub::Unsupported("brace initializer in expression".into())),
            _ => {
                let f = self
                    .program
                    .function(name)
                    .ok_or_else(|| Ub::UnknownFunction(name.to_string()))?;
                if f.params.len() != args.len() {
                    return Err(Ub::Unsupported(format!("arity mismatch calling `{name}`")));
                }
                let mut vals = Vec::new();
                for a in args {
                    vals.push(self.eval(a, env, depth)?);
                }
                let ret = self.call(f, vals, depth + 1)?;
                Ok(ret.unwrap_or(Value::Int(0)))
            }
        }
    }
}

fn stmt_defines_label(s: &Stmt, label: &str) -> bool {
    match s {
        Stmt::Label(l, inner) => l == label || stmt_defines_label(inner, label),
        Stmt::Block(body) => body.iter().any(|s| stmt_defines_label(s, label)),
        Stmt::If(_, t, e) => {
            stmt_defines_label(t, label) || e.as_ref().is_some_and(|e| stmt_defines_label(e, label))
        }
        Stmt::While(_, b) | Stmt::DoWhile(b, _) | Stmt::For(_, _, _, b) => {
            stmt_defines_label(b, label)
        }
        _ => false,
    }
}

fn arith(op: BinaryOp, x: i64, y: i64) -> Result<i64, Ub> {
    Ok(match op {
        BinaryOp::Add => x.checked_add(y).ok_or(Ub::Overflow)?,
        BinaryOp::Sub => x.checked_sub(y).ok_or(Ub::Overflow)?,
        BinaryOp::Mul => x.checked_mul(y).ok_or(Ub::Overflow)?,
        BinaryOp::Div => {
            if y == 0 {
                return Err(Ub::DivByZero);
            }
            x.checked_div(y).ok_or(Ub::Overflow)?
        }
        BinaryOp::Rem => {
            if y == 0 {
                return Err(Ub::DivByZero);
            }
            x.checked_rem(y).ok_or(Ub::Overflow)?
        }
        BinaryOp::Lt => (x < y) as i64,
        BinaryOp::Gt => (x > y) as i64,
        BinaryOp::Le => (x <= y) as i64,
        BinaryOp::Ge => (x >= y) as i64,
        BinaryOp::Eq => (x == y) as i64,
        BinaryOp::Ne => (x != y) as i64,
        BinaryOp::BitAnd => x & y,
        BinaryOp::BitOr => x | y,
        BinaryOp::BitXor => x ^ y,
        BinaryOp::Shl => {
            if !(0..64).contains(&y) || x < 0 {
                return Err(Ub::Overflow);
            }
            x.checked_shl(y as u32).ok_or(Ub::Overflow)?
        }
        BinaryOp::Shr => {
            if !(0..64).contains(&y) {
                return Err(Ub::Overflow);
            }
            x >> y
        }
        BinaryOp::LogAnd | BinaryOp::LogOr => unreachable!("short-circuited earlier"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_minic::parse;

    fn run_src(src: &str) -> Result<Execution, Ub> {
        run(&parse(src).expect("parses"), Limits::default())
    }

    #[test]
    fn arithmetic_and_return() {
        assert_eq!(
            run_src("int main() { return 2 + 3 * 4; }")
                .unwrap()
                .exit_code,
            14
        );
    }

    #[test]
    fn globals_are_zero_initialized() {
        assert_eq!(
            run_src("int g; int main() { return g; }")
                .unwrap()
                .exit_code,
            0
        );
    }

    #[test]
    fn locals_are_not() {
        assert_eq!(
            run_src("int main() { int x; return x; }"),
            Err(Ub::UninitializedRead("x".into()))
        );
    }

    #[test]
    fn control_flow() {
        let src = r#"
            int main() {
                int s = 0;
                for (int i = 0; i < 5; i++) {
                    if (i % 2 == 0) continue;
                    s += i;
                }
                int j = 0;
                while (j < 3) { s += 10; j++; }
                do { s += 100; } while (0);
                return s; // 1+3 + 30 + 100 = 134
            }
        "#;
        assert_eq!(run_src(src).unwrap().exit_code, 134);
    }

    #[test]
    fn figure2_pointer_aliasing_without_attribute() {
        // Figure 2 with p and q both pointing at a: the last store wins.
        let src = r#"
            int a = 0;
            int main() {
                int *p = &a, *q = &a;
                *p = 1;
                *q = 2;
                return a;
            }
        "#;
        assert_eq!(run_src(src).unwrap().exit_code, 2);
    }

    #[test]
    fn figure11d_goto_lifetime_pattern() {
        // Figure 11(d): expected exit code 0.
        let src = r#"
            int main() {
                int *p = 0;
                trick:
                if (p) return *p;
                int x = 0;
                p = &x;
                goto trick;
                return 0;
            }
        "#;
        assert_eq!(run_src(src).unwrap().exit_code, 0);
    }

    #[test]
    fn arrays_and_bounds() {
        assert_eq!(
            run_src("int main() { int a[3] = {1, 2, 3}; return a[0] + a[2]; }")
                .unwrap()
                .exit_code,
            4
        );
        assert_eq!(
            run_src("int main() { int a[3] = {1, 2, 3}; return a[3]; }"),
            Err(Ub::OutOfBounds("a".into()))
        );
    }

    #[test]
    fn division_by_zero_detected() {
        assert_eq!(
            run_src("int main() { int z = 0; return 5 / z; }"),
            Err(Ub::DivByZero)
        );
    }

    #[test]
    fn signed_overflow_detected() {
        assert_eq!(
            run_src("int main() { long x = 9223372036854775807; return x + 1 > 0; }"),
            Err(Ub::Overflow)
        );
    }

    #[test]
    fn nontermination_exhausts_fuel() {
        assert_eq!(
            run_src("int main() { while (1) ; return 0; }"),
            Err(Ub::FuelExhausted)
        );
    }

    #[test]
    fn function_calls_and_recursion() {
        let src = r#"
            int fib(int n) {
                if (n < 2) return n;
                return fib(n - 1) + fib(n - 2);
            }
            int main() { return fib(10); }
        "#;
        assert_eq!(run_src(src).unwrap().exit_code, 55);
    }

    #[test]
    fn runaway_recursion_overflows_stack() {
        let src = "int f(int n) { return f(n + 1); } int main() { return f(0); }";
        assert_eq!(run_src(src), Err(Ub::StackOverflow));
    }

    #[test]
    fn printf_output_captured() {
        let exec =
            run_src(r#"int main() { int a = 7; printf("%d", a); return 0; }"#).expect("runs");
        assert_eq!(exec.output, vec!["%d:7".to_string()]);
    }

    #[test]
    fn short_circuit_prevents_ub() {
        assert_eq!(
            run_src("int main() { int z = 0; return z != 0 && 5 / z > 0; }")
                .unwrap()
                .exit_code,
            0
        );
    }

    #[test]
    fn ternary_evaluates_one_arm() {
        assert_eq!(
            run_src("int main() { int z = 0; return z ? 5 / z : 3; }")
                .unwrap()
                .exit_code,
            3
        );
    }

    #[test]
    fn structs_are_unsupported_not_crashing() {
        let src = "struct s { char c[1]; }; struct s a; int main() { return 0; }";
        assert!(matches!(run_src(src), Err(Ub::Unsupported(_))));
    }

    #[test]
    fn null_deref_detected() {
        assert_eq!(
            run_src("int main() { int *p = 0; return *p; }"),
            Err(Ub::BadDeref)
        );
    }

    #[test]
    fn pointer_swap_through_functions() {
        let src = r#"
            int g = 5;
            int deref(int *p) { return *p; }
            int main() { return deref(&g); }
        "#;
        assert_eq!(run_src(src).unwrap().exit_code, 5);
    }

    #[test]
    fn goto_backward_and_forward() {
        let src = r#"
            int main() {
                int i = 0, s = 0;
                again:
                i++;
                s += i;
                if (i < 3) goto again;
                return s; // 1+2+3
            }
        "#;
        assert_eq!(run_src(src).unwrap().exit_code, 6);
    }
}
