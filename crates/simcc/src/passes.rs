//! AST-level optimization passes of the simulated compiler.
//!
//! Four passes mirror the pass kinds the paper's bugs live in: constant
//! folding (`fold`), sparse conditional constant propagation (`ccp`),
//! dead-code elimination (`dce`) and a (deliberately unsound when the
//! corresponding bug is active) alias-based store reordering (`alias`)
//! plus light loop clean-up (`loop`). Every transformation records
//! coverage points; wrong-code defects from the [`crate::bugs`] registry
//! are realized here as incorrect rewrites.

use crate::bugs::{exprs_equal, BugSpec, Trigger};
use crate::coverage::Coverage;
use spe_minic::ast::*;
use std::collections::{HashMap, HashSet};

/// Pass pipeline context.
pub struct PassCtx<'a> {
    /// Optimization level 0–3.
    pub opt: u8,
    /// Active wrong-code bugs (crash bugs abort before the pipeline).
    pub wrong_code: Vec<&'a BugSpec>,
    /// Coverage accumulator.
    pub coverage: &'a mut Coverage,
    /// Ids of wrong-code bugs whose rewrite actually applied.
    pub miscompiled_by: Vec<&'static str>,
}

impl PassCtx<'_> {
    fn bug_active(&self, trigger: Trigger) -> Option<&'static str> {
        self.wrong_code
            .iter()
            .find(|b| b.trigger == trigger)
            .map(|b| b.id)
    }
}

/// Runs the optimization pipeline for the configured level, returning the
/// transformed program.
pub fn optimize(p: &Program, ctx: &mut PassCtx<'_>) -> Program {
    let mut prog = p.clone();
    if ctx.opt >= 1 {
        prog = fold_pass(&prog, ctx);
        prog = dce_pass(&prog, ctx);
    }
    if ctx.opt >= 2 {
        prog = ccp_pass(&prog, ctx);
        prog = alias_pass(&prog, ctx);
    }
    if ctx.opt >= 3 {
        prog = loop_pass(&prog, ctx);
    }
    prog
}

fn map_functions(p: &Program, mut f: impl FnMut(&Function) -> Function) -> Program {
    Program {
        items: p
            .items
            .iter()
            .map(|i| match i {
                Item::Func(func) => Item::Func(f(func)),
                other => other.clone(),
            })
            .collect(),
        max_occ: p.max_occ,
        max_expr: p.max_expr,
    }
}

// ----- fold ---------------------------------------------------------------

fn fold_pass(p: &Program, ctx: &mut PassCtx<'_>) -> Program {
    ctx.coverage.hit("fold", 0);
    map_functions(p, |f| Function {
        body: f.body.iter().map(|s| fold_stmt(s, ctx)).collect(),
        ..f.clone()
    })
}

fn fold_stmt(s: &Stmt, ctx: &mut PassCtx<'_>) -> Stmt {
    match s {
        Stmt::Expr(e) => Stmt::Expr(fold_expr(e, ctx)),
        Stmt::Decl(ds) => Stmt::Decl(
            ds.iter()
                .map(|d| VarDeclarator {
                    init: d.init.as_ref().map(|i| fold_expr(i, ctx)),
                    ..d.clone()
                })
                .collect(),
        ),
        Stmt::Block(b) => Stmt::Block(b.iter().map(|s| fold_stmt(s, ctx)).collect()),
        Stmt::If(c, t, e) => Stmt::If(
            fold_expr(c, ctx),
            Box::new(fold_stmt(t, ctx)),
            e.as_ref().map(|e| Box::new(fold_stmt(e, ctx))),
        ),
        Stmt::While(c, b) => Stmt::While(fold_expr(c, ctx), Box::new(fold_stmt(b, ctx))),
        Stmt::DoWhile(b, c) => Stmt::DoWhile(Box::new(fold_stmt(b, ctx)), fold_expr(c, ctx)),
        Stmt::For(init, c, st, b) => Stmt::For(
            init.as_ref().map(|i| match i {
                ForInit::Decl(ds) => ForInit::Decl(
                    ds.iter()
                        .map(|d| VarDeclarator {
                            init: d.init.as_ref().map(|i| fold_expr(i, ctx)),
                            ..d.clone()
                        })
                        .collect(),
                ),
                ForInit::Expr(e) => ForInit::Expr(fold_expr(e, ctx)),
            }),
            c.as_ref().map(|c| fold_expr(c, ctx)),
            st.as_ref().map(|s| fold_expr(s, ctx)),
            Box::new(fold_stmt(b, ctx)),
        ),
        Stmt::Return(e) => Stmt::Return(e.as_ref().map(|e| fold_expr(e, ctx))),
        Stmt::Label(l, inner) => Stmt::Label(l.clone(), Box::new(fold_stmt(inner, ctx))),
        other => other.clone(),
    }
}

fn lit(e: &Expr) -> Option<i64> {
    match e.kind {
        ExprKind::IntLit(v) => Some(v),
        ExprKind::CharLit(c) => Some(c as i64),
        _ => None,
    }
}

fn is_pure_var(e: &Expr) -> bool {
    matches!(e.kind, ExprKind::Ident(_))
}

fn fold_expr(e: &Expr, ctx: &mut PassCtx<'_>) -> Expr {
    // Variable-multiplicity buckets: enumeration rewires which variables
    // repeat inside one expression, steering the folder down different
    // canonicalization paths.
    {
        let mut names: Vec<String> = Vec::new();
        e.for_each_ident(&mut |id| names.push(id.name.clone()));
        if !names.is_empty() {
            let total = names.len();
            names.sort();
            names.dedup();
            let distinct = names.len();
            let max_same = total - distinct + 1;
            ctx.coverage.hit("fold", 18 + (max_same as u32).min(5));
            ctx.coverage.hit("ccp", 3 + (distinct as u32).min(8));
        }
    }
    let rebuild = |kind: ExprKind| Expr { id: e.id, kind };
    match &e.kind {
        ExprKind::Binary(op, a, b) => {
            let a = fold_expr(a, ctx);
            let b = fold_expr(b, ctx);
            if let (Some(x), Some(y)) = (lit(&a), lit(&b)) {
                if let Some(v) = const_arith(*op, x, y) {
                    ctx.coverage.hit("fold", 1 + (op.precedence() % 8) as u32);
                    return rebuild(ExprKind::IntLit(v));
                }
            }
            // x - x => 0 for pure operands (or 1 under the seeded
            // wrong-code defect).
            if *op == BinaryOp::Sub && is_pure_var(&a) && exprs_equal(&a, &b) {
                ctx.coverage.hit("fold", 9);
                if let Some(id) = ctx.bug_active(Trigger::SubSelf) {
                    ctx.miscompiled_by.push(id);
                    return rebuild(ExprKind::IntLit(1));
                }
                return rebuild(ExprKind::IntLit(0));
            }
            // Algebraic identities.
            match (op, lit(&a), lit(&b)) {
                (BinaryOp::Add, Some(0), _) => {
                    ctx.coverage.hit("fold", 10);
                    return b;
                }
                (BinaryOp::Add, _, Some(0)) | (BinaryOp::Sub, _, Some(0)) => {
                    ctx.coverage.hit("fold", 11);
                    return a;
                }
                (BinaryOp::Mul, _, Some(1)) => {
                    ctx.coverage.hit("fold", 12);
                    return a;
                }
                (BinaryOp::Mul, Some(1), _) => {
                    ctx.coverage.hit("fold", 12);
                    return b;
                }
                (BinaryOp::Mul, _, Some(0)) if is_pure_var(&a) => {
                    ctx.coverage.hit("fold", 13);
                    return rebuild(ExprKind::IntLit(0));
                }
                (BinaryOp::Mul, Some(0), _) if is_pure_var(&b) => {
                    ctx.coverage.hit("fold", 13);
                    return rebuild(ExprKind::IntLit(0));
                }
                _ => {}
            }
            rebuild(ExprKind::Binary(*op, Box::new(a), Box::new(b)))
        }
        ExprKind::Unary(op, inner) => {
            let inner = fold_expr(inner, ctx);
            if let (UnaryOp::Neg, Some(v)) = (op, lit(&inner)) {
                if let Some(n) = v.checked_neg() {
                    ctx.coverage.hit("fold", 14);
                    return rebuild(ExprKind::IntLit(n));
                }
            }
            if let (UnaryOp::Not, Some(v)) = (op, lit(&inner)) {
                ctx.coverage.hit("fold", 15);
                return rebuild(ExprKind::IntLit((v == 0) as i64));
            }
            rebuild(ExprKind::Unary(*op, Box::new(inner)))
        }
        ExprKind::Ternary(c, t, els) => {
            let c = fold_expr(c, ctx);
            let t = fold_expr(t, ctx);
            let els = fold_expr(els, ctx);
            if let Some(v) = lit(&c) {
                ctx.coverage.hit("fold", 16);
                return if v != 0 { t } else { els };
            }
            if exprs_equal(&t, &els) {
                // The operand_equal_p comparison site (Figure 3); the
                // crash variant is handled before the pipeline runs.
                ctx.coverage.hit("fold", 17);
            }
            rebuild(ExprKind::Ternary(Box::new(c), Box::new(t), Box::new(els)))
        }
        ExprKind::Assign(op, lhs, rhs) => rebuild(ExprKind::Assign(
            *op,
            lhs.clone(),
            Box::new(fold_expr(rhs, ctx)),
        )),
        ExprKind::Post(op, inner) => rebuild(ExprKind::Post(*op, inner.clone())),
        ExprKind::Call(name, args) => rebuild(ExprKind::Call(
            name.clone(),
            args.iter().map(|a| fold_expr(a, ctx)).collect(),
        )),
        ExprKind::Index(a, i) => rebuild(ExprKind::Index(a.clone(), Box::new(fold_expr(i, ctx)))),
        ExprKind::Comma(a, b) => rebuild(ExprKind::Comma(
            Box::new(fold_expr(a, ctx)),
            Box::new(fold_expr(b, ctx)),
        )),
        ExprKind::Cast(t, inner) => {
            rebuild(ExprKind::Cast(t.clone(), Box::new(fold_expr(inner, ctx))))
        }
        _ => e.clone(),
    }
}

/// Compile-time arithmetic: wrapping like the target machine, `None` for
/// division by zero (left for runtime).
pub(crate) fn const_arith(op: BinaryOp, x: i64, y: i64) -> Option<i64> {
    Some(match op {
        BinaryOp::Add => x.wrapping_add(y),
        BinaryOp::Sub => x.wrapping_sub(y),
        BinaryOp::Mul => x.wrapping_mul(y),
        BinaryOp::Div => {
            if y == 0 {
                return None;
            }
            x.wrapping_div(y)
        }
        BinaryOp::Rem => {
            if y == 0 {
                return None;
            }
            x.wrapping_rem(y)
        }
        BinaryOp::Lt => (x < y) as i64,
        BinaryOp::Gt => (x > y) as i64,
        BinaryOp::Le => (x <= y) as i64,
        BinaryOp::Ge => (x >= y) as i64,
        BinaryOp::Eq => (x == y) as i64,
        BinaryOp::Ne => (x != y) as i64,
        BinaryOp::BitAnd => x & y,
        BinaryOp::BitOr => x | y,
        BinaryOp::BitXor => x ^ y,
        BinaryOp::Shl => {
            if !(0..64).contains(&y) {
                return None;
            }
            x.wrapping_shl(y as u32)
        }
        BinaryOp::Shr => {
            if !(0..64).contains(&y) {
                return None;
            }
            x.wrapping_shr(y as u32)
        }
        BinaryOp::LogAnd => ((x != 0) && (y != 0)) as i64,
        BinaryOp::LogOr => ((x != 0) || (y != 0)) as i64,
    })
}

// ----- dce ------------------------------------------------------------------

fn dce_pass(p: &Program, ctx: &mut PassCtx<'_>) -> Program {
    ctx.coverage.hit("dce", 0);
    map_functions(p, |f| {
        let has_back_goto = function_has_backward_goto(&f.body);
        Function {
            body: dce_stmts(&f.body, ctx, has_back_goto, false),
            ..f.clone()
        }
    })
}

fn function_has_backward_goto(body: &[Stmt]) -> bool {
    let mut labels: HashSet<String> = HashSet::new();
    let mut found = false;
    fn walk(stmts: &[Stmt], labels: &mut HashSet<String>, found: &mut bool) {
        for s in stmts {
            match s {
                Stmt::Label(l, inner) => {
                    labels.insert(l.clone());
                    walk(std::slice::from_ref(inner), labels, found);
                }
                Stmt::Goto(l) if labels.contains(l) => *found = true,
                Stmt::Block(b) => walk(b, labels, found),
                Stmt::If(_, t, e) => {
                    walk(std::slice::from_ref(t), labels, found);
                    if let Some(e) = e {
                        walk(std::slice::from_ref(e), labels, found);
                    }
                }
                Stmt::While(_, b) | Stmt::DoWhile(b, _) | Stmt::For(_, _, _, b) => {
                    walk(std::slice::from_ref(b), labels, found);
                }
                _ => {}
            }
        }
    }
    walk(body, &mut labels, &mut found);
    found
}

fn dce_stmts(
    stmts: &[Stmt],
    ctx: &mut PassCtx<'_>,
    back_goto: bool,
    after_label: bool,
) -> Vec<Stmt> {
    let mut out = Vec::new();
    let mut seen_label = after_label;
    for s in stmts {
        if let Stmt::Label(_, _) = s {
            seen_label = true
        }
        match s {
            // `if (0)` / `if (non-zero-literal)` simplification.
            Stmt::If(c, t, e) => {
                if let Some(v) = lit(c) {
                    ctx.coverage.hit("dce", 1);
                    if v != 0 {
                        out.push(dce_one(t, ctx, back_goto, seen_label));
                    } else if let Some(e) = e {
                        out.push(dce_one(e, ctx, back_goto, seen_label));
                    }
                    continue;
                }
                out.push(Stmt::If(
                    c.clone(),
                    Box::new(dce_one(t, ctx, back_goto, seen_label)),
                    e.as_ref()
                        .map(|e| Box::new(dce_one(e, ctx, back_goto, seen_label))),
                ));
            }
            Stmt::While(c, b) => {
                if lit(c) == Some(0) {
                    ctx.coverage.hit("dce", 2);
                    continue;
                }
                out.push(Stmt::While(
                    c.clone(),
                    Box::new(dce_one(b, ctx, back_goto, seen_label)),
                ));
            }
            // Self-assignment removal: `x = x;`.
            Stmt::Expr(e)
                if matches!(&e.kind, ExprKind::Assign(AssignOp::Assign, l, r)
                    if is_pure_var(l) && exprs_equal(l, r)) =>
            {
                ctx.coverage.hit("dce", 3);
            }
            // The Clang 26994 lifetime defect: drop initializers of
            // declarations that follow a label in a function with a
            // backward goto.
            Stmt::Decl(ds) if back_goto && seen_label => {
                if let Some(id) = ctx.bug_active(Trigger::DeclAfterLabelWithBackGoto) {
                    ctx.coverage.hit("dce", 4);
                    ctx.miscompiled_by.push(id);
                    out.push(Stmt::Decl(
                        ds.iter()
                            .map(|d| VarDeclarator {
                                init: None,
                                ..d.clone()
                            })
                            .collect(),
                    ));
                    continue;
                }
                out.push(s.clone());
            }
            Stmt::Block(b) => {
                out.push(Stmt::Block(dce_stmts(b, ctx, back_goto, seen_label)));
            }
            Stmt::Label(l, inner) => {
                out.push(Stmt::Label(
                    l.clone(),
                    Box::new(dce_one(inner, ctx, back_goto, true)),
                ));
            }
            other => out.push(other.clone()),
        }
    }
    out
}

fn dce_one(s: &Stmt, ctx: &mut PassCtx<'_>, back_goto: bool, after_label: bool) -> Stmt {
    let v = dce_stmts(std::slice::from_ref(s), ctx, back_goto, after_label);
    match v.len() {
        0 => Stmt::Empty,
        1 => v.into_iter().next().expect("one statement"),
        _ => Stmt::Block(v),
    }
}

// ----- ccp ------------------------------------------------------------------

fn ccp_pass(p: &Program, ctx: &mut PassCtx<'_>) -> Program {
    ctx.coverage.hit("ccp", 0);
    map_functions(p, |f| {
        let mut addressed = HashSet::new();
        collect_addressed(&f.body, &mut addressed);
        let mut consts: HashMap<String, i64> = HashMap::new();
        Function {
            body: ccp_stmts(&f.body, &mut consts, &addressed, ctx),
            ..f.clone()
        }
    })
}

fn collect_addressed(stmts: &[Stmt], out: &mut HashSet<String>) {
    fn expr(e: &Expr, out: &mut HashSet<String>) {
        if let ExprKind::Unary(UnaryOp::Addr, inner) = &e.kind {
            if let ExprKind::Ident(id) = &inner.kind {
                out.insert(id.name.clone());
            }
        }
        match &e.kind {
            ExprKind::Unary(_, a) | ExprKind::Post(_, a) | ExprKind::Cast(_, a) => expr(a, out),
            ExprKind::Binary(_, a, b)
            | ExprKind::Assign(_, a, b)
            | ExprKind::Index(a, b)
            | ExprKind::Comma(a, b) => {
                expr(a, out);
                expr(b, out);
            }
            ExprKind::Ternary(c, t, e2) => {
                expr(c, out);
                expr(t, out);
                expr(e2, out);
            }
            ExprKind::Call(_, args) => args.iter().for_each(|a| expr(a, out)),
            ExprKind::Member(a, _, _) => expr(a, out),
            _ => {}
        }
    }
    for s in stmts {
        match s {
            Stmt::Expr(e) => expr(e, out),
            Stmt::Decl(ds) => {
                for d in ds {
                    if let Some(i) = &d.init {
                        expr(i, out);
                    }
                }
            }
            Stmt::Block(b) => collect_addressed(b, out),
            Stmt::If(c, t, e) => {
                expr(c, out);
                collect_addressed(std::slice::from_ref(t), out);
                if let Some(e) = e {
                    collect_addressed(std::slice::from_ref(e), out);
                }
            }
            Stmt::While(c, b) => {
                expr(c, out);
                collect_addressed(std::slice::from_ref(b), out);
            }
            Stmt::DoWhile(b, c) => {
                expr(c, out);
                collect_addressed(std::slice::from_ref(b), out);
            }
            Stmt::For(init, c, st, b) => {
                match init {
                    Some(ForInit::Decl(ds)) => {
                        for d in ds {
                            if let Some(i) = &d.init {
                                expr(i, out);
                            }
                        }
                    }
                    Some(ForInit::Expr(e)) => expr(e, out),
                    None => {}
                }
                if let Some(c) = c {
                    expr(c, out);
                }
                if let Some(st) = st {
                    expr(st, out);
                }
                collect_addressed(std::slice::from_ref(b), out);
            }
            Stmt::Return(Some(e)) => expr(e, out),
            Stmt::Label(_, inner) => collect_addressed(std::slice::from_ref(inner), out),
            _ => {}
        }
    }
}

/// Straight-line constant propagation. Any control flow or call clears
/// the known-constants map (sound but conservative).
fn ccp_stmts(
    stmts: &[Stmt],
    consts: &mut HashMap<String, i64>,
    addressed: &HashSet<String>,
    ctx: &mut PassCtx<'_>,
) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            Stmt::Decl(ds) => {
                let mut nds = Vec::new();
                for d in ds {
                    let init = d.init.as_ref().map(|i| ccp_expr(i, consts, ctx));
                    if let Some(i) = &init {
                        if let Some(v) = lit(i) {
                            if !addressed.contains(&d.name) {
                                consts.insert(d.name.clone(), v);
                            }
                        }
                    }
                    nds.push(VarDeclarator { init, ..d.clone() });
                }
                out.push(Stmt::Decl(nds));
            }
            Stmt::Expr(e) => {
                let ne = ccp_expr(e, consts, ctx);
                // Track `x = literal` and invalidate on other writes.
                if let ExprKind::Assign(op, lhs, rhs) = &ne.kind {
                    if let ExprKind::Ident(id) = &lhs.kind {
                        if *op == AssignOp::Assign {
                            match lit(rhs) {
                                Some(v) if !addressed.contains(&id.name) => {
                                    ctx.coverage.hit("ccp", 1);
                                    consts.insert(id.name.clone(), v);
                                }
                                _ => {
                                    consts.remove(&id.name);
                                }
                            }
                        } else {
                            consts.remove(&id.name);
                        }
                    } else {
                        // Store through pointer/array: globals and
                        // addressed locals may change.
                        consts.clear();
                    }
                } else if contains_write(&ne) {
                    consts.clear();
                }
                out.push(Stmt::Expr(ne));
            }
            // Control flow: propagate into the condition, then clear.
            Stmt::If(c, t, e) => {
                let c = ccp_expr(c, consts, ctx);
                consts.clear();
                let t2 = ccp_block(t, consts, addressed, ctx);
                let e2 = e
                    .as_ref()
                    .map(|e| Box::new(ccp_block(e, consts, addressed, ctx)));
                out.push(Stmt::If(c, Box::new(t2), e2));
                consts.clear();
            }
            Stmt::While(c, b) => {
                consts.clear();
                let b2 = ccp_block(b, consts, addressed, ctx);
                out.push(Stmt::While(c.clone(), Box::new(b2)));
                consts.clear();
            }
            Stmt::DoWhile(b, c) => {
                consts.clear();
                let b2 = ccp_block(b, consts, addressed, ctx);
                out.push(Stmt::DoWhile(Box::new(b2), c.clone()));
                consts.clear();
            }
            Stmt::For(init, c, st, b) => {
                consts.clear();
                let b2 = ccp_block(b, consts, addressed, ctx);
                out.push(Stmt::For(init.clone(), c.clone(), st.clone(), Box::new(b2)));
                consts.clear();
            }
            Stmt::Return(Some(e)) => {
                out.push(Stmt::Return(Some(ccp_expr(e, consts, ctx))));
            }
            Stmt::Block(b) => {
                consts.clear();
                let mut inner = HashMap::new();
                out.push(Stmt::Block(ccp_stmts(b, &mut inner, addressed, ctx)));
                consts.clear();
            }
            Stmt::Label(l, inner) => {
                consts.clear();
                let i2 = ccp_block(inner, consts, addressed, ctx);
                out.push(Stmt::Label(l.clone(), Box::new(i2)));
                consts.clear();
            }
            Stmt::Goto(_) => {
                consts.clear();
                out.push(s.clone());
            }
            other => out.push(other.clone()),
        }
    }
    out
}

fn ccp_block(
    s: &Stmt,
    consts: &mut HashMap<String, i64>,
    addressed: &HashSet<String>,
    ctx: &mut PassCtx<'_>,
) -> Stmt {
    let mut inner = HashMap::new();
    let _ = consts;
    let v = ccp_stmts(std::slice::from_ref(s), &mut inner, addressed, ctx);
    match v.len() {
        1 => v.into_iter().next().expect("one statement"),
        _ => Stmt::Block(v),
    }
}

fn contains_write(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Assign(_, _, _) | ExprKind::Post(_, _) => true,
        ExprKind::Unary(UnaryOp::PreInc | UnaryOp::PreDec, _) => true,
        ExprKind::Call(_, _) => true,
        ExprKind::Unary(_, a) | ExprKind::Cast(_, a) => contains_write(a),
        ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) | ExprKind::Comma(a, b) => {
            contains_write(a) || contains_write(b)
        }
        ExprKind::Ternary(c, t, e2) => contains_write(c) || contains_write(t) || contains_write(e2),
        ExprKind::Member(a, _, _) => contains_write(a),
        _ => false,
    }
}

fn ccp_expr(e: &Expr, consts: &HashMap<String, i64>, ctx: &mut PassCtx<'_>) -> Expr {
    // The gcc-samevar6-wc defect: in expressions reading one variable
    // many times, the (buggy) propagator replaces the reads with 0.
    let mut names = Vec::new();
    e.for_each_ident(&mut |id| names.push(id.name.clone()));
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for n in &names {
        *counts.entry(n.as_str()).or_insert(0) += 1;
    }
    if let Some((&worst, _)) = counts.iter().max_by_key(|(_, &c)| c) {
        if counts[worst] >= 6 {
            if let Some(id) = ctx.bug_active(Trigger::SameVarTimes(6)) {
                ctx.miscompiled_by.push(id);
                let zeroed = replace_var_reads(e, worst);
                return zeroed;
            }
        }
    }
    subst_consts(e, consts, ctx)
}

fn replace_var_reads(e: &Expr, name: &str) -> Expr {
    let rebuild = |kind: ExprKind| Expr { id: e.id, kind };
    match &e.kind {
        ExprKind::Ident(id) if id.name == name => rebuild(ExprKind::IntLit(0)),
        ExprKind::Assign(op, lhs, rhs) => rebuild(ExprKind::Assign(
            *op,
            lhs.clone(), // do not rewrite the store target
            Box::new(replace_var_reads(rhs, name)),
        )),
        ExprKind::Unary(UnaryOp::Addr, _) | ExprKind::Post(_, _) => e.clone(),
        ExprKind::Unary(op, a) => {
            rebuild(ExprKind::Unary(*op, Box::new(replace_var_reads(a, name))))
        }
        ExprKind::Binary(op, a, b) => rebuild(ExprKind::Binary(
            *op,
            Box::new(replace_var_reads(a, name)),
            Box::new(replace_var_reads(b, name)),
        )),
        ExprKind::Ternary(c, t, e2) => rebuild(ExprKind::Ternary(
            Box::new(replace_var_reads(c, name)),
            Box::new(replace_var_reads(t, name)),
            Box::new(replace_var_reads(e2, name)),
        )),
        ExprKind::Index(a, i) => rebuild(ExprKind::Index(
            a.clone(),
            Box::new(replace_var_reads(i, name)),
        )),
        ExprKind::Comma(a, b) => rebuild(ExprKind::Comma(
            Box::new(replace_var_reads(a, name)),
            Box::new(replace_var_reads(b, name)),
        )),
        _ => e.clone(),
    }
}

fn subst_consts(e: &Expr, consts: &HashMap<String, i64>, ctx: &mut PassCtx<'_>) -> Expr {
    let rebuild = |kind: ExprKind| Expr { id: e.id, kind };
    match &e.kind {
        ExprKind::Ident(id) => match consts.get(&id.name) {
            Some(v) => {
                ctx.coverage.hit("ccp", 2);
                rebuild(ExprKind::IntLit(*v))
            }
            None => e.clone(),
        },
        ExprKind::Assign(op, lhs, rhs) => rebuild(ExprKind::Assign(
            *op,
            lhs.clone(),
            Box::new(subst_consts(rhs, consts, ctx)),
        )),
        ExprKind::Unary(UnaryOp::Addr, _) => e.clone(),
        ExprKind::Unary(op, a) => {
            rebuild(ExprKind::Unary(*op, Box::new(subst_consts(a, consts, ctx))))
        }
        ExprKind::Post(_, _) => e.clone(),
        ExprKind::Binary(op, a, b) => rebuild(ExprKind::Binary(
            *op,
            Box::new(subst_consts(a, consts, ctx)),
            Box::new(subst_consts(b, consts, ctx)),
        )),
        ExprKind::Ternary(c, t, e2) => rebuild(ExprKind::Ternary(
            Box::new(subst_consts(c, consts, ctx)),
            Box::new(subst_consts(t, consts, ctx)),
            Box::new(subst_consts(e2, consts, ctx)),
        )),
        ExprKind::Call(name, args) => rebuild(ExprKind::Call(
            name.clone(),
            args.iter().map(|a| subst_consts(a, consts, ctx)).collect(),
        )),
        ExprKind::Index(a, i) => rebuild(ExprKind::Index(
            a.clone(),
            Box::new(subst_consts(i, consts, ctx)),
        )),
        ExprKind::Comma(a, b) => rebuild(ExprKind::Comma(
            Box::new(subst_consts(a, consts, ctx)),
            Box::new(subst_consts(b, consts, ctx)),
        )),
        ExprKind::Cast(t, a) => rebuild(ExprKind::Cast(
            t.clone(),
            Box::new(subst_consts(a, consts, ctx)),
        )),
        _ => e.clone(),
    }
}

// ----- alias ---------------------------------------------------------------

/// Store reordering based on (buggy, when active) alias assumptions:
/// consecutive `*p = …; *q = …;` through distinct pointer variables are
/// swapped under the gcc-69951 defect — wrong exactly when `p` and `q`
/// alias, reproducing the Figure 2 miscompilation.
fn alias_pass(p: &Program, ctx: &mut PassCtx<'_>) -> Program {
    ctx.coverage.hit("alias", 0);
    let bug = ctx.bug_active(Trigger::AliasedPointerStores);
    map_functions(p, |f| Function {
        body: alias_stmts(&f.body, bug, ctx),
        ..f.clone()
    })
}

fn is_deref_store(s: &Stmt) -> Option<&str> {
    if let Stmt::Expr(e) = s {
        if let ExprKind::Assign(AssignOp::Assign, lhs, rhs) = &e.kind {
            if let ExprKind::Unary(UnaryOp::Deref, inner) = &lhs.kind {
                if let ExprKind::Ident(id) = &inner.kind {
                    if lit(rhs).is_some() {
                        return Some(&id.name);
                    }
                }
            }
        }
    }
    None
}

fn alias_stmts(stmts: &[Stmt], bug: Option<&'static str>, ctx: &mut PassCtx<'_>) -> Vec<Stmt> {
    let mut out: Vec<Stmt> = Vec::new();
    let mut i = 0;
    while i < stmts.len() {
        if let (Some(p1), Some(p2)) = (
            is_deref_store(&stmts[i]),
            stmts.get(i + 1).and_then(is_deref_store),
        ) {
            ctx.coverage.hit("alias", 1);
            if p1 != p2 {
                if let Some(id) = bug {
                    ctx.coverage.hit("alias", 2);
                    ctx.miscompiled_by.push(id);
                    out.push(stmts[i + 1].clone());
                    out.push(stmts[i].clone());
                    i += 2;
                    continue;
                }
            }
        }
        match &stmts[i] {
            Stmt::Block(b) => out.push(Stmt::Block(alias_stmts(b, bug, ctx))),
            other => out.push(other.clone()),
        }
        i += 1;
    }
    out
}

// ----- loop -----------------------------------------------------------------

/// Loop clean-up at `-O3`: removes loops whose condition folded to zero
/// and hosts the self-indexed-array wrong-code defect (gcc-70138): the
/// (buggy) "vectorizer" rewrites a self-indexed array subscript to zero.
fn loop_pass(p: &Program, ctx: &mut PassCtx<'_>) -> Program {
    ctx.coverage.hit("loop", 0);
    let bug = ctx.bug_active(Trigger::SelfIndexedArray);
    map_functions(p, |f| Function {
        body: f.body.iter().map(|s| loop_stmt(s, bug, ctx)).collect(),
        ..f.clone()
    })
}

fn loop_stmt(s: &Stmt, bug: Option<&'static str>, ctx: &mut PassCtx<'_>) -> Stmt {
    match s {
        Stmt::For(_, Some(c), _, _) if lit(c) == Some(0) => {
            ctx.coverage.hit("loop", 1);
            Stmt::Empty
        }
        Stmt::While(c, b) => {
            ctx.coverage.hit("loop", 2);
            Stmt::While(c.clone(), Box::new(loop_stmt(b, bug, ctx)))
        }
        Stmt::For(i, c, st, b) => {
            ctx.coverage.hit("loop", 3);
            Stmt::For(
                i.clone(),
                c.clone(),
                st.clone(),
                Box::new(loop_stmt(b, bug, ctx)),
            )
        }
        Stmt::DoWhile(b, c) => Stmt::DoWhile(Box::new(loop_stmt(b, bug, ctx)), c.clone()),
        Stmt::Block(b) => Stmt::Block(b.iter().map(|s| loop_stmt(s, bug, ctx)).collect()),
        Stmt::If(c, t, e) => Stmt::If(
            c.clone(),
            Box::new(loop_stmt(t, bug, ctx)),
            e.as_ref().map(|e| Box::new(loop_stmt(e, bug, ctx))),
        ),
        Stmt::Label(l, inner) => Stmt::Label(l.clone(), Box::new(loop_stmt(inner, bug, ctx))),
        Stmt::Expr(e) => Stmt::Expr(vectorize_expr(e, bug, ctx)),
        other => other.clone(),
    }
}

fn vectorize_expr(e: &Expr, bug: Option<&'static str>, ctx: &mut PassCtx<'_>) -> Expr {
    let rebuild = |kind: ExprKind| Expr { id: e.id, kind };
    match &e.kind {
        ExprKind::Assign(op, lhs, rhs) => {
            if let ExprKind::Index(base, idx) = &lhs.kind {
                let mut names = Vec::new();
                idx.for_each_ident(&mut |id| names.push(id.name.clone()));
                names.sort();
                let self_indexed = names.windows(2).any(|w| w[0] == w[1]);
                if self_indexed {
                    ctx.coverage.hit("loop", 4);
                    if let Some(id) = bug {
                        ctx.miscompiled_by.push(id);
                        let zero = Expr {
                            id: idx.id,
                            kind: ExprKind::IntLit(0),
                        };
                        return rebuild(ExprKind::Assign(
                            *op,
                            Box::new(Expr {
                                id: lhs.id,
                                kind: ExprKind::Index(base.clone(), Box::new(zero)),
                            }),
                            rhs.clone(),
                        ));
                    }
                }
            }
            e.clone()
        }
        _ => e.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::registry;
    use spe_minic::{parse, print_program};

    fn opt(src: &str, level: u8) -> String {
        let p = parse(src).expect("parses");
        let mut cov = Coverage::new();
        let mut ctx = PassCtx {
            opt: level,
            wrong_code: Vec::new(),
            coverage: &mut cov,
            miscompiled_by: Vec::new(),
        };
        print_program(&optimize(&p, &mut ctx))
    }

    #[test]
    fn folds_constants() {
        let out = opt("int main() { return 2 + 3 * 4; }", 1);
        assert!(out.contains("return 14;"), "{out}");
    }

    #[test]
    fn folds_sub_self_soundly() {
        let out = opt("int x; int main() { return x - x; }", 1);
        assert!(out.contains("return 0;"), "{out}");
    }

    #[test]
    fn removes_dead_if() {
        let out = opt(
            "int g; int main() { if (0) g = 1; else g = 2; return g; }",
            1,
        );
        assert!(!out.contains("g = 1"), "{out}");
        assert!(out.contains("g = 2"), "{out}");
    }

    #[test]
    fn propagates_constants_straight_line() {
        let out = opt("int main() { int b = 1; int a = b; return a; }", 2);
        assert!(out.contains("int a = 1;"), "{out}");
    }

    #[test]
    fn does_not_propagate_addressed_vars() {
        let out = opt(
            "int main() { int b = 1; int *p = &b; *p = 5; int a = b; return a; }",
            2,
        );
        assert!(out.contains("int a = b;"), "{out}");
    }

    #[test]
    fn alias_swap_only_with_bug_active() {
        let src = "int a = 0; int main() { int *p = &a, *q = &a; *p = 1; *q = 2; return a; }";
        let clean = opt(src, 2);
        let p_pos = clean.find("*p = 1").expect("store p");
        let q_pos = clean.find("*q = 2").expect("store q");
        assert!(p_pos < q_pos, "sound pipeline must not reorder: {clean}");

        let regs = registry();
        let bug = regs.iter().find(|b| b.id == "gcc-69951").expect("present");
        let prog = parse(src).expect("parses");
        let mut cov = Coverage::new();
        let mut ctx = PassCtx {
            opt: 2,
            wrong_code: vec![bug],
            coverage: &mut cov,
            miscompiled_by: Vec::new(),
        };
        let out = print_program(&optimize(&prog, &mut ctx));
        let p_pos = out.find("*p = 1").expect("store p");
        let q_pos = out.find("*q = 2").expect("store q");
        assert!(q_pos < p_pos, "buggy pipeline reorders: {out}");
        assert_eq!(ctx.miscompiled_by, vec!["gcc-69951"]);
    }

    #[test]
    fn lifetime_bug_drops_initializer() {
        let src = r#"
            int main() {
                int *p = 0;
                trick:
                if (p) return *p;
                int x = 0;
                p = &x;
                goto trick;
                return 0;
            }
        "#;
        let regs = registry();
        let bug = regs
            .iter()
            .find(|b| b.id == "clang-26994")
            .expect("present");
        let prog = parse(src).expect("parses");
        let mut cov = Coverage::new();
        let mut ctx = PassCtx {
            opt: 1,
            wrong_code: vec![bug],
            coverage: &mut cov,
            miscompiled_by: Vec::new(),
        };
        let out = print_program(&optimize(&prog, &mut ctx));
        assert!(out.contains("int x;"), "initializer dropped: {out}");
        assert_eq!(ctx.miscompiled_by, vec!["clang-26994"]);
    }

    #[test]
    fn coverage_grows_with_opt_level() {
        let src = "int main() { int b = 1; if (b - b) return 2 + 3; return b * 1; }";
        let p = parse(src).expect("parses");
        let mut cov0 = Coverage::new();
        let mut ctx0 = PassCtx {
            opt: 0,
            wrong_code: Vec::new(),
            coverage: &mut cov0,
            miscompiled_by: Vec::new(),
        };
        optimize(&p, &mut ctx0);
        let mut cov3 = Coverage::new();
        let mut ctx3 = PassCtx {
            opt: 3,
            wrong_code: Vec::new(),
            coverage: &mut cov3,
            miscompiled_by: Vec::new(),
        };
        optimize(&p, &mut ctx3);
        assert!(cov3.points_hit() > cov0.points_hit());
    }

    #[test]
    fn vectorizer_bug_rewrites_self_index() {
        let src = "int u[10]; int a; int main() { a = 3; u[a + 2 * a] = 7; return u[9]; }";
        let regs = registry();
        let bug = regs.iter().find(|b| b.id == "gcc-70138").expect("present");
        let prog = parse(src).expect("parses");
        let mut cov = Coverage::new();
        let mut ctx = PassCtx {
            opt: 3,
            wrong_code: vec![bug],
            coverage: &mut cov,
            miscompiled_by: Vec::new(),
        };
        let out = print_program(&optimize(&prog, &mut ctx));
        assert!(out.contains("u[0]"), "index rewritten to zero: {out}");
    }
}
