//! Backend of the simulated compiler: lowering to a stack bytecode and
//! the virtual machine executing it.
//!
//! The machine models the *target*: arithmetic wraps like hardware,
//! uninitialized stack cells contain a canary value (so defects that drop
//! initializers become observable), and memory is a flat `i64` array
//! addressed by absolute cell index (pointers are plain addresses).

use spe_minic::ast::*;
use std::collections::HashMap;
use std::fmt;

/// Canary filling fresh stack frames; distinguishable from the zeroed
/// globals and from common small constants.
pub const STACK_CANARY: i64 = 90;

/// Bytecode instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// Push a constant.
    Push(i64),
    /// Push the absolute address `fp + offset`.
    AddrLocal(i64),
    /// Push the absolute address of a global cell.
    AddrGlobal(i64),
    /// Pop an address, push the cell's value.
    LoadInd,
    /// Pop value then address, store value.
    StoreInd,
    /// Like [`Instr::StoreInd`] but leaves the value on the stack
    /// (assignment expressions have values).
    StoreIndPush,
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Binary arithmetic on the two top values.
    Bin(BinaryOp),
    /// Unary operation on the top value.
    Un(UnaryOp),
    /// Unconditional jump.
    Jmp(usize),
    /// Pop; jump if zero.
    Jz(usize),
    /// Pop; jump if non-zero.
    Jnz(usize),
    /// Call function `idx` with `nargs` stacked arguments.
    Call {
        /// Index of the callee in the image's function table.
        func: usize,
        /// Number of stacked arguments to pass.
        nargs: usize,
    },
    /// Return with the top of stack as the value.
    Ret,
    /// Pop `nargs` values and emit formatted output.
    Print {
        /// `printf`-subset format string.
        fmt: String,
        /// Number of stacked arguments the format consumes.
        nargs: usize,
    },
    /// Stop (after `main`).
    Halt,
}

/// A compiled function.
#[derive(Debug, Clone)]
pub struct FuncInfo {
    /// Name (for diagnostics).
    pub name: String,
    /// Entry program counter.
    pub entry: usize,
    /// Number of parameters.
    pub nparams: usize,
    /// Frame size in cells (params first).
    pub frame: usize,
}

/// A fully lowered program image.
#[derive(Debug, Clone)]
pub struct Image {
    /// Flat instruction stream.
    pub instrs: Vec<Instr>,
    /// Function table.
    pub funcs: Vec<FuncInfo>,
    /// Initial global memory (cell values).
    pub globals: Vec<i64>,
    /// Index of `main` in [`Self::funcs`].
    pub main: usize,
}

/// Errors produced by lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError(pub String);

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

/// Runtime traps (a trap on a UB-free input indicates a miscompile).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// Address outside memory.
    BadAddress(i64),
    /// Division by zero.
    DivByZero,
    /// Fuel exhausted.
    Timeout,
    /// Value stack underflow (would be a codegen bug).
    StackUnderflow,
    /// Call stack too deep.
    StackOverflow,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::BadAddress(a) => write!(f, "trap: bad address {a}"),
            Trap::DivByZero => f.write_str("trap: division by zero"),
            Trap::Timeout => f.write_str("trap: timeout"),
            Trap::StackUnderflow => f.write_str("trap: stack underflow"),
            Trap::StackOverflow => f.write_str("trap: call stack overflow"),
        }
    }
}

impl std::error::Error for Trap {}

/// Result of running an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmExecution {
    /// `main`'s return value masked to 8 bits.
    pub exit_code: i64,
    /// Output of `printf` calls.
    pub output: Vec<String>,
}

// ----- lowering -------------------------------------------------------------

struct FnLower<'a> {
    instrs: &'a mut Vec<Instr>,
    /// name -> (is_global, base address/offset, cells)
    scopes: Vec<HashMap<String, (bool, i64, usize)>>,
    globals: &'a HashMap<String, (i64, usize)>,
    func_ids: &'a HashMap<String, usize>,
    next_local: i64,
    max_frame: i64,
    labels: HashMap<String, usize>,
    goto_patches: Vec<(usize, String)>,
    break_patches: Vec<Vec<usize>>,
    continue_targets: Vec<ContinueTarget>,
}

enum ContinueTarget {
    /// Jump directly to this pc.
    Pc(usize),
    /// Patch later (for `for` steps lowered after the body).
    Pending(Vec<usize>),
}

/// Lowers a (post-optimization) program to an [`Image`].
///
/// # Errors
///
/// Returns [`LowerError`] for constructs outside the executable subset
/// (structs, unknown functions in initializers, etc.).
pub fn lower(p: &Program) -> Result<Image, LowerError> {
    if p.items.iter().any(|i| matches!(i, Item::Struct(_))) {
        return Err(LowerError("struct definitions are not lowerable".into()));
    }
    // Allocate globals.
    let mut globals_layout: HashMap<String, (i64, usize)> = HashMap::new();
    let mut gmem: Vec<i64> = Vec::new();
    for item in &p.items {
        if let Item::Global(decls) = item {
            for d in decls {
                if matches!(d.ty.base, BaseType::Struct(_)) && d.ty.pointers == 0 {
                    return Err(LowerError(format!("struct global `{}`", d.name)));
                }
                let n = d.ty.array.map(|n| n.max(1) as usize).unwrap_or(1);
                if n > 1 << 20 {
                    return Err(LowerError(format!("array `{}` too large", d.name)));
                }
                globals_layout.insert(d.name.clone(), (gmem.len() as i64, n));
                gmem.extend(std::iter::repeat_n(0, n));
            }
        }
    }
    // Global initializers must be compile-time constants (or addresses).
    for item in &p.items {
        if let Item::Global(decls) = item {
            for d in decls {
                if let Some(init) = &d.init {
                    let (base, cells) = globals_layout[&d.name];
                    init_global(init, base, cells, &globals_layout, &mut gmem)?;
                }
            }
        }
    }
    let func_ids: HashMap<String, usize> = p
        .functions()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), i))
        .collect();
    let mut instrs = Vec::new();
    let mut funcs = Vec::new();
    for f in p.functions() {
        let entry = instrs.len();
        let mut fl = FnLower {
            instrs: &mut instrs,
            scopes: vec![HashMap::new()],
            globals: &globals_layout,
            func_ids: &func_ids,
            next_local: 0,
            max_frame: 0,
            labels: HashMap::new(),
            goto_patches: Vec::new(),
            break_patches: Vec::new(),
            continue_targets: Vec::new(),
        };
        for param in &f.params {
            fl.alloc_local(&param.name, &param.ty)?;
        }
        fl.stmts(&f.body)?;
        // Implicit `return 0`.
        fl.instrs.push(Instr::Push(0));
        fl.instrs.push(Instr::Ret);
        // Patch gotos.
        for (at, label) in std::mem::take(&mut fl.goto_patches) {
            let target = *fl
                .labels
                .get(&label)
                .ok_or_else(|| LowerError(format!("unknown label `{label}`")))?;
            fl.instrs[at] = Instr::Jmp(target);
        }
        let frame = fl.max_frame.max(fl.next_local) as usize;
        funcs.push(FuncInfo {
            name: f.name.clone(),
            entry,
            nparams: f.params.len(),
            frame,
        });
    }
    let main = *func_ids
        .get("main")
        .ok_or_else(|| LowerError("no main function".into()))?;
    Ok(Image {
        instrs,
        funcs,
        globals: gmem,
        main,
    })
}

fn init_global(
    init: &Expr,
    base: i64,
    cells: usize,
    layout: &HashMap<String, (i64, usize)>,
    gmem: &mut [i64],
) -> Result<(), LowerError> {
    if let ExprKind::Call(name, args) = &init.kind {
        if name == "__init_list" {
            for (i, a) in args.iter().enumerate() {
                if i >= cells {
                    return Err(LowerError("excess initializer".into()));
                }
                gmem[base as usize + i] = const_eval(a, layout)?;
            }
            return Ok(());
        }
    }
    gmem[base as usize] = const_eval(init, layout)?;
    Ok(())
}

fn const_eval(e: &Expr, layout: &HashMap<String, (i64, usize)>) -> Result<i64, LowerError> {
    match &e.kind {
        ExprKind::IntLit(v) => Ok(*v),
        ExprKind::CharLit(c) => Ok(*c as i64),
        ExprKind::Unary(UnaryOp::Neg, a) => Ok(const_eval(a, layout)?.wrapping_neg()),
        ExprKind::Unary(UnaryOp::Addr, a) => match &a.kind {
            ExprKind::Ident(id) => layout
                .get(&id.name)
                .map(|&(b, _)| b)
                .ok_or_else(|| LowerError(format!("&{} in global initializer", id.name))),
            _ => Err(LowerError("complex address in global initializer".into())),
        },
        ExprKind::Binary(op, a, b) => {
            let (x, y) = (const_eval(a, layout)?, const_eval(b, layout)?);
            crate::passes_const_arith(*op, x, y)
                .ok_or_else(|| LowerError("non-constant global initializer".into()))
        }
        _ => Err(LowerError("non-constant global initializer".into())),
    }
}

impl FnLower<'_> {
    fn alloc_local(&mut self, name: &str, ty: &Type) -> Result<i64, LowerError> {
        if matches!(ty.base, BaseType::Struct(_)) && ty.pointers == 0 {
            return Err(LowerError(format!("struct local `{name}`")));
        }
        let n = ty.array.map(|n| n.max(1) as i64).unwrap_or(1);
        if n > 1 << 20 {
            return Err(LowerError(format!("array `{name}` too large")));
        }
        let off = self.next_local;
        self.next_local += n;
        self.max_frame = self.max_frame.max(self.next_local);
        self.scopes
            .last_mut()
            .expect("scope")
            .insert(name.to_string(), (false, off, n as usize));
        Ok(off)
    }

    fn resolve(&self, name: &str) -> Option<(bool, i64, usize)> {
        for s in self.scopes.iter().rev() {
            if let Some(&v) = s.get(name) {
                return Some(v);
            }
        }
        self.globals.get(name).map(|&(b, n)| (true, b, n))
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), LowerError> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LowerError> {
        match s {
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.instrs.push(Instr::Pop);
            }
            Stmt::Decl(decls) => {
                for d in decls {
                    let off = self.alloc_local(&d.name, &d.ty)?;
                    if let Some(init) = &d.init {
                        if let ExprKind::Call(name, args) = &init.kind {
                            if name == "__init_list" {
                                let cells = d.ty.array.map(|n| n.max(1) as usize).unwrap_or(1);
                                for (i, a) in args.iter().enumerate().take(cells) {
                                    self.instrs.push(Instr::AddrLocal(off + i as i64));
                                    self.expr(a)?;
                                    self.instrs.push(Instr::StoreInd);
                                }
                                // Zero the rest, as in C.
                                for i in args.len()..cells {
                                    self.instrs.push(Instr::AddrLocal(off + i as i64));
                                    self.instrs.push(Instr::Push(0));
                                    self.instrs.push(Instr::StoreInd);
                                }
                                continue;
                            }
                        }
                        self.instrs.push(Instr::AddrLocal(off));
                        self.expr(init)?;
                        self.instrs.push(Instr::StoreInd);
                    }
                }
            }
            Stmt::Block(body) => {
                self.scopes.push(HashMap::new());
                let saved = self.next_local;
                self.stmts(body)?;
                self.next_local = saved;
                self.scopes.pop();
            }
            Stmt::If(c, t, e) => {
                self.expr(c)?;
                let jz = self.instrs.len();
                self.instrs.push(Instr::Jz(usize::MAX));
                self.stmt(t)?;
                match e {
                    Some(e) => {
                        let jmp = self.instrs.len();
                        self.instrs.push(Instr::Jmp(usize::MAX));
                        let else_at = self.instrs.len();
                        self.instrs[jz] = Instr::Jz(else_at);
                        self.stmt(e)?;
                        let end = self.instrs.len();
                        self.instrs[jmp] = Instr::Jmp(end);
                    }
                    None => {
                        let end = self.instrs.len();
                        self.instrs[jz] = Instr::Jz(end);
                    }
                }
            }
            Stmt::While(c, b) => {
                let top = self.instrs.len();
                self.expr(c)?;
                let jz = self.instrs.len();
                self.instrs.push(Instr::Jz(usize::MAX));
                self.break_patches.push(Vec::new());
                self.continue_targets.push(ContinueTarget::Pc(top));
                self.stmt(b)?;
                self.instrs.push(Instr::Jmp(top));
                let end = self.instrs.len();
                self.instrs[jz] = Instr::Jz(end);
                self.finish_loop(end);
            }
            Stmt::DoWhile(b, c) => {
                let top = self.instrs.len();
                self.break_patches.push(Vec::new());
                self.continue_targets
                    .push(ContinueTarget::Pending(Vec::new()));
                self.stmt(b)?;
                let cond_at = self.instrs.len();
                self.patch_pending_continues(cond_at);
                self.expr(c)?;
                self.instrs.push(Instr::Jnz(top));
                let end = self.instrs.len();
                self.finish_loop(end);
            }
            Stmt::For(init, cond, step, b) => {
                self.scopes.push(HashMap::new());
                let saved = self.next_local;
                match init {
                    Some(ForInit::Decl(decls)) => self.stmt(&Stmt::Decl(decls.clone()))?,
                    Some(ForInit::Expr(e)) => {
                        self.expr(e)?;
                        self.instrs.push(Instr::Pop);
                    }
                    None => {}
                }
                let top = self.instrs.len();
                let jz = match cond {
                    Some(c) => {
                        self.expr(c)?;
                        let jz = self.instrs.len();
                        self.instrs.push(Instr::Jz(usize::MAX));
                        Some(jz)
                    }
                    None => None,
                };
                self.break_patches.push(Vec::new());
                self.continue_targets
                    .push(ContinueTarget::Pending(Vec::new()));
                self.stmt(b)?;
                let step_at = self.instrs.len();
                self.patch_pending_continues(step_at);
                if let Some(st) = step {
                    self.expr(st)?;
                    self.instrs.push(Instr::Pop);
                }
                self.instrs.push(Instr::Jmp(top));
                let end = self.instrs.len();
                if let Some(jz) = jz {
                    self.instrs[jz] = Instr::Jz(end);
                }
                self.finish_loop(end);
                self.next_local = saved;
                self.scopes.pop();
            }
            Stmt::Return(e) => {
                match e {
                    Some(e) => self.expr(e)?,
                    None => self.instrs.push(Instr::Push(0)),
                }
                self.instrs.push(Instr::Ret);
            }
            Stmt::Break => {
                let at = self.instrs.len();
                self.instrs.push(Instr::Jmp(usize::MAX));
                self.break_patches
                    .last_mut()
                    .ok_or_else(|| LowerError("break outside loop".into()))?
                    .push(at);
            }
            Stmt::Continue => {
                let at = self.instrs.len();
                self.instrs.push(Instr::Jmp(usize::MAX));
                match self
                    .continue_targets
                    .last_mut()
                    .ok_or_else(|| LowerError("continue outside loop".into()))?
                {
                    ContinueTarget::Pc(pc) => {
                        let pc = *pc;
                        self.instrs[at] = Instr::Jmp(pc);
                    }
                    ContinueTarget::Pending(v) => v.push(at),
                }
            }
            Stmt::Goto(l) => {
                let at = self.instrs.len();
                self.instrs.push(Instr::Jmp(usize::MAX));
                self.goto_patches.push((at, l.clone()));
            }
            Stmt::Label(l, inner) => {
                self.labels.insert(l.clone(), self.instrs.len());
                self.stmt(inner)?;
            }
            Stmt::Empty => {}
        }
        Ok(())
    }

    fn patch_pending_continues(&mut self, target: usize) {
        if let Some(ContinueTarget::Pending(v)) = self.continue_targets.last_mut() {
            for at in std::mem::take(v) {
                self.instrs[at] = Instr::Jmp(target);
            }
        }
    }

    fn finish_loop(&mut self, end: usize) {
        for at in self.break_patches.pop().expect("loop context") {
            self.instrs[at] = Instr::Jmp(end);
        }
        self.continue_targets.pop();
    }

    /// Lowers an lvalue: leaves its *address* on the stack.
    fn addr(&mut self, e: &Expr) -> Result<(), LowerError> {
        match &e.kind {
            ExprKind::Ident(id) => {
                let (is_global, base, _) = self
                    .resolve(&id.name)
                    .ok_or_else(|| LowerError(format!("unknown variable `{}`", id.name)))?;
                self.instrs.push(if is_global {
                    Instr::AddrGlobal(base)
                } else {
                    Instr::AddrLocal(base)
                });
            }
            ExprKind::Unary(UnaryOp::Deref, inner) => {
                self.expr(inner)?;
            }
            ExprKind::Index(base, idx) => {
                // Array decays to base address; pointers are loaded.
                self.base_addr(base)?;
                self.expr(idx)?;
                self.instrs.push(Instr::Bin(BinaryOp::Add));
            }
            ExprKind::Cast(_, inner) => self.addr(inner)?,
            other => return Err(LowerError(format!("invalid lvalue {other:?}"))),
        }
        Ok(())
    }

    fn base_addr(&mut self, e: &Expr) -> Result<(), LowerError> {
        if let ExprKind::Ident(id) = &e.kind {
            if let Some((is_global, base, cells)) = self.resolve(&id.name) {
                if cells > 1 {
                    self.instrs.push(if is_global {
                        Instr::AddrGlobal(base)
                    } else {
                        Instr::AddrLocal(base)
                    });
                    return Ok(());
                }
            }
        }
        // Pointer value.
        self.expr(e)
    }

    fn expr(&mut self, e: &Expr) -> Result<(), LowerError> {
        match &e.kind {
            ExprKind::IntLit(v) => self.instrs.push(Instr::Push(*v)),
            ExprKind::CharLit(c) => self.instrs.push(Instr::Push(*c as i64)),
            ExprKind::StrLit(_) => self.instrs.push(Instr::Push(0)),
            ExprKind::Ident(id) => {
                let (is_global, base, cells) = self
                    .resolve(&id.name)
                    .ok_or_else(|| LowerError(format!("unknown variable `{}`", id.name)))?;
                let addr = if is_global {
                    Instr::AddrGlobal(base)
                } else {
                    Instr::AddrLocal(base)
                };
                self.instrs.push(addr);
                if cells == 1 {
                    self.instrs.push(Instr::LoadInd);
                }
                // Arrays decay to their address.
            }
            ExprKind::Unary(UnaryOp::Addr, inner) => self.addr(inner)?,
            ExprKind::Unary(UnaryOp::Deref, inner) => {
                self.expr(inner)?;
                self.instrs.push(Instr::LoadInd);
            }
            ExprKind::Unary(op @ (UnaryOp::PreInc | UnaryOp::PreDec), inner) => {
                self.addr(inner)?;
                self.instrs.push(Instr::Dup);
                self.instrs.push(Instr::LoadInd);
                self.instrs.push(Instr::Push(1));
                self.instrs
                    .push(Instr::Bin(if matches!(op, UnaryOp::PreInc) {
                        BinaryOp::Add
                    } else {
                        BinaryOp::Sub
                    }));
                self.instrs.push(Instr::StoreIndPush);
            }
            ExprKind::Unary(op, inner) => {
                self.expr(inner)?;
                self.instrs.push(Instr::Un(*op));
            }
            ExprKind::Post(op, inner) => {
                // [addr] dup load -> [addr old]; swapless encoding: store
                // old+delta, push old: addr dup load dup push1 op
                // -> addr old new ; need stack gymnastics. Simplest:
                // compute new, store, then push old via arithmetic.
                self.addr(inner)?;
                self.instrs.push(Instr::Dup);
                self.instrs.push(Instr::LoadInd);
                self.instrs.push(Instr::Push(1));
                self.instrs.push(Instr::Bin(if matches!(op, PostOp::Inc) {
                    BinaryOp::Add
                } else {
                    BinaryOp::Sub
                }));
                self.instrs.push(Instr::StoreIndPush);
                // Stack now holds the new value; recover the old one.
                self.instrs.push(Instr::Push(1));
                self.instrs.push(Instr::Bin(if matches!(op, PostOp::Inc) {
                    BinaryOp::Sub
                } else {
                    BinaryOp::Add
                }));
            }
            ExprKind::Binary(BinaryOp::LogAnd, a, b) => {
                self.expr(a)?;
                let jz = self.instrs.len();
                self.instrs.push(Instr::Jz(usize::MAX));
                self.expr(b)?;
                let jz2 = self.instrs.len();
                self.instrs.push(Instr::Jz(usize::MAX));
                self.instrs.push(Instr::Push(1));
                let jend = self.instrs.len();
                self.instrs.push(Instr::Jmp(usize::MAX));
                let zero_at = self.instrs.len();
                self.instrs[jz] = Instr::Jz(zero_at);
                self.instrs[jz2] = Instr::Jz(zero_at);
                self.instrs.push(Instr::Push(0));
                let end = self.instrs.len();
                self.instrs[jend] = Instr::Jmp(end);
            }
            ExprKind::Binary(BinaryOp::LogOr, a, b) => {
                self.expr(a)?;
                let jnz = self.instrs.len();
                self.instrs.push(Instr::Jnz(usize::MAX));
                self.expr(b)?;
                let jnz2 = self.instrs.len();
                self.instrs.push(Instr::Jnz(usize::MAX));
                self.instrs.push(Instr::Push(0));
                let jend = self.instrs.len();
                self.instrs.push(Instr::Jmp(usize::MAX));
                let one_at = self.instrs.len();
                self.instrs[jnz] = Instr::Jnz(one_at);
                self.instrs[jnz2] = Instr::Jnz(one_at);
                self.instrs.push(Instr::Push(1));
                let end = self.instrs.len();
                self.instrs[jend] = Instr::Jmp(end);
            }
            ExprKind::Binary(op, a, b) => {
                self.expr(a)?;
                self.expr(b)?;
                self.instrs.push(Instr::Bin(*op));
            }
            ExprKind::Assign(op, lhs, rhs) => {
                self.addr(lhs)?;
                match op.binary() {
                    None => {
                        self.expr(rhs)?;
                    }
                    Some(bop) => {
                        self.instrs.push(Instr::Dup);
                        self.instrs.push(Instr::LoadInd);
                        self.expr(rhs)?;
                        self.instrs.push(Instr::Bin(bop));
                    }
                }
                self.instrs.push(Instr::StoreIndPush);
            }
            ExprKind::Ternary(c, t, els) => {
                self.expr(c)?;
                let jz = self.instrs.len();
                self.instrs.push(Instr::Jz(usize::MAX));
                self.expr(t)?;
                let jmp = self.instrs.len();
                self.instrs.push(Instr::Jmp(usize::MAX));
                let else_at = self.instrs.len();
                self.instrs[jz] = Instr::Jz(else_at);
                self.expr(els)?;
                let end = self.instrs.len();
                self.instrs[jmp] = Instr::Jmp(end);
            }
            ExprKind::Call(name, args) => {
                if name == "printf" {
                    let fmt = match args.first().map(|a| &a.kind) {
                        Some(ExprKind::StrLit(s)) => s.clone(),
                        _ => String::new(),
                    };
                    for a in args.iter().skip(1) {
                        self.expr(a)?;
                    }
                    self.instrs.push(Instr::Print {
                        fmt,
                        nargs: args.len().saturating_sub(1),
                    });
                    self.instrs.push(Instr::Push(0));
                } else if name == "__init_list" {
                    return Err(LowerError("brace initializer in expression".into()));
                } else {
                    let func = *self
                        .func_ids
                        .get(name)
                        .ok_or_else(|| LowerError(format!("unknown function `{name}`")))?;
                    for a in args {
                        self.expr(a)?;
                    }
                    self.instrs.push(Instr::Call {
                        func,
                        nargs: args.len(),
                    });
                }
            }
            ExprKind::Index(base, idx) => {
                self.base_addr(base)?;
                self.expr(idx)?;
                self.instrs.push(Instr::Bin(BinaryOp::Add));
                self.instrs.push(Instr::LoadInd);
            }
            ExprKind::Member(_, _, _) => return Err(LowerError("struct member access".into())),
            ExprKind::Cast(_, inner) => self.expr(inner)?,
            ExprKind::Comma(a, b) => {
                self.expr(a)?;
                self.instrs.push(Instr::Pop);
                self.expr(b)?;
            }
        }
        Ok(())
    }
}

// ----- the VM ---------------------------------------------------------------

/// Executes an image with the given fuel.
///
/// # Errors
///
/// Returns a [`Trap`] on bad addresses, division by zero or timeout.
pub fn execute(image: &Image, fuel: u64) -> Result<VmExecution, Trap> {
    let mut mem = image.globals.clone();
    let stack_base = mem.len();
    mem.resize(stack_base + (1 << 16), STACK_CANARY);
    let mut values: Vec<i64> = Vec::new();
    let mut frames: Vec<(usize, usize)> = Vec::new(); // (return pc, fp)
    let mut output = Vec::new();

    let main = &image.funcs[image.main];
    let mut fp = stack_base;
    // Fill main's frame with canaries (resize above already did).
    let mut sp_mem = stack_base + main.frame;
    let mut pc = main.entry;
    let mut remaining = fuel;

    macro_rules! pop {
        () => {
            values.pop().ok_or(Trap::StackUnderflow)?
        };
    }

    loop {
        if remaining == 0 {
            return Err(Trap::Timeout);
        }
        remaining -= 1;
        let instr = image.instrs.get(pc).ok_or(Trap::BadAddress(pc as i64))?;
        pc += 1;
        match instr {
            Instr::Push(v) => values.push(*v),
            Instr::AddrLocal(off) => values.push(fp as i64 + off),
            Instr::AddrGlobal(a) => values.push(*a),
            Instr::LoadInd => {
                let a = pop!();
                if a < 0 || a as usize >= mem.len() {
                    return Err(Trap::BadAddress(a));
                }
                values.push(mem[a as usize]);
            }
            Instr::StoreInd | Instr::StoreIndPush => {
                let v = pop!();
                let a = pop!();
                if a < 0 || a as usize >= mem.len() {
                    return Err(Trap::BadAddress(a));
                }
                mem[a as usize] = v;
                if matches!(instr, Instr::StoreIndPush) {
                    values.push(v);
                }
            }
            Instr::Dup => {
                let v = *values.last().ok_or(Trap::StackUnderflow)?;
                values.push(v);
            }
            Instr::Pop => {
                pop!();
            }
            Instr::Bin(op) => {
                let b = pop!();
                let a = pop!();
                values.push(vm_arith(*op, a, b)?);
            }
            Instr::Un(op) => {
                let a = pop!();
                values.push(match op {
                    UnaryOp::Neg => a.wrapping_neg(),
                    UnaryOp::Not => (a == 0) as i64,
                    UnaryOp::BitNot => !a,
                    _ => return Err(Trap::StackUnderflow),
                });
            }
            Instr::Jmp(t) => pc = *t,
            Instr::Jz(t) => {
                if pop!() == 0 {
                    pc = *t;
                }
            }
            Instr::Jnz(t) => {
                if pop!() != 0 {
                    pc = *t;
                }
            }
            Instr::Call { func, nargs } => {
                if frames.len() >= 64 {
                    return Err(Trap::StackOverflow);
                }
                let f = &image.funcs[*func];
                let new_fp = sp_mem;
                let new_sp = new_fp + f.frame;
                if new_sp > mem.len() {
                    return Err(Trap::StackOverflow);
                }
                // Canary-fill the fresh frame.
                for cell in &mut mem[new_fp..new_sp] {
                    *cell = STACK_CANARY;
                }
                // Pop arguments into parameter slots (reverse order).
                for i in (0..*nargs).rev() {
                    let v = pop!();
                    mem[new_fp + i] = v;
                }
                frames.push((pc, fp));
                fp = new_fp;
                sp_mem = new_sp;
                pc = f.entry;
            }
            Instr::Ret => {
                let v = pop!();
                match frames.pop() {
                    Some((ret_pc, old_fp)) => {
                        sp_mem = fp;
                        fp = old_fp;
                        pc = ret_pc;
                        values.push(v);
                    }
                    None => {
                        return Ok(VmExecution {
                            exit_code: v & 0xff,
                            output,
                        });
                    }
                }
            }
            Instr::Print { fmt, nargs } => {
                let mut vals = Vec::new();
                for _ in 0..*nargs {
                    vals.push(pop!());
                }
                vals.reverse();
                let mut rendered = fmt.clone();
                if !vals.is_empty() {
                    rendered.push(':');
                    rendered.push_str(
                        &vals
                            .iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(","),
                    );
                }
                output.push(rendered);
            }
            Instr::Halt => {
                return Ok(VmExecution {
                    exit_code: 0,
                    output,
                })
            }
        }
    }
}

fn vm_arith(op: BinaryOp, a: i64, b: i64) -> Result<i64, Trap> {
    Ok(match op {
        BinaryOp::Add => a.wrapping_add(b),
        BinaryOp::Sub => a.wrapping_sub(b),
        BinaryOp::Mul => a.wrapping_mul(b),
        BinaryOp::Div => {
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            a.wrapping_div(b)
        }
        BinaryOp::Rem => {
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            a.wrapping_rem(b)
        }
        BinaryOp::Lt => (a < b) as i64,
        BinaryOp::Gt => (a > b) as i64,
        BinaryOp::Le => (a <= b) as i64,
        BinaryOp::Ge => (a >= b) as i64,
        BinaryOp::Eq => (a == b) as i64,
        BinaryOp::Ne => (a != b) as i64,
        BinaryOp::BitAnd => a & b,
        BinaryOp::BitOr => a | b,
        BinaryOp::BitXor => a ^ b,
        BinaryOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinaryOp::Shr => a.wrapping_shr((b & 63) as u32),
        BinaryOp::LogAnd => ((a != 0) && (b != 0)) as i64,
        BinaryOp::LogOr => ((a != 0) || (b != 0)) as i64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_minic::parse;

    fn run_src(src: &str) -> VmExecution {
        let p = parse(src).expect("parses");
        let img = lower(&p).expect("lowers");
        execute(&img, 1_000_000).expect("executes")
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run_src("int main() { return 2 + 3 * 4; }").exit_code, 14);
    }

    #[test]
    fn locals_params_and_calls() {
        let src = r#"
            int add(int a, int b) { return a + b; }
            int main() { int x = add(2, 3); return add(x, 10); }
        "#;
        assert_eq!(run_src(src).exit_code, 15);
    }

    #[test]
    fn recursion() {
        let src = r#"
            int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
            int main() { return fib(10); }
        "#;
        assert_eq!(run_src(src).exit_code, 55);
    }

    #[test]
    fn globals_and_pointers() {
        let src = r#"
            int a = 0;
            int main() { int *p = &a, *q = &a; *p = 1; *q = 2; return a; }
        "#;
        assert_eq!(run_src(src).exit_code, 2);
    }

    #[test]
    fn arrays_and_loops() {
        let src = r#"
            int u[5];
            int main() {
                for (int i = 0; i < 5; i++) u[i] = i * i;
                int s = 0;
                for (int i = 0; i < 5; i++) s += u[i];
                return s; // 0+1+4+9+16
            }
        "#;
        assert_eq!(run_src(src).exit_code, 30);
    }

    #[test]
    fn break_continue_do_while() {
        let src = r#"
            int main() {
                int s = 0, i = 0;
                do {
                    i++;
                    if (i == 2) continue;
                    if (i == 5) break;
                    s += i;
                } while (1);
                return s; // 1 + 3 + 4
            }
        "#;
        assert_eq!(run_src(src).exit_code, 8);
    }

    #[test]
    fn goto_and_labels() {
        let src = r#"
            int main() {
                int i = 0, s = 0;
                again: i++; s += i;
                if (i < 3) goto again;
                return s;
            }
        "#;
        assert_eq!(run_src(src).exit_code, 6);
    }

    #[test]
    fn short_circuit_semantics() {
        let src = "int main() { int z = 0; return (z != 0 && 5 / z > 0) + (1 || 5 / z); }";
        assert_eq!(run_src(src).exit_code, 1);
    }

    #[test]
    fn post_and_pre_increment_values() {
        let src = "int main() { int x = 5; int a = x++; int b = ++x; return a * 10 + b; }";
        assert_eq!(run_src(src).exit_code, (5 * 10 + 7) & 0xff);
    }

    #[test]
    fn uninitialized_local_reads_canary() {
        let src = "int main() { int x; return x; }";
        assert_eq!(run_src(src).exit_code, STACK_CANARY);
    }

    #[test]
    fn division_by_zero_traps() {
        let p = parse("int main() { int z = 0; return 5 / z; }").expect("parses");
        let img = lower(&p).expect("lowers");
        assert_eq!(execute(&img, 10_000), Err(Trap::DivByZero));
    }

    #[test]
    fn infinite_loop_times_out() {
        let p = parse("int main() { while (1) ; return 0; }").expect("parses");
        let img = lower(&p).expect("lowers");
        assert_eq!(execute(&img, 1_000), Err(Trap::Timeout));
    }

    #[test]
    fn structs_rejected() {
        let p = parse("struct s { int x; }; int main() { return 0; }").expect("parses");
        assert!(lower(&p).is_err());
    }

    #[test]
    fn printf_output() {
        let exec = run_src(r#"int main() { int a = 7; printf("%d", a); return 0; }"#);
        assert_eq!(exec.output, vec!["%d:7".to_string()]);
    }

    #[test]
    fn matches_reference_interpreter_on_defined_programs() {
        let srcs = [
            "int main() { int a = 3, b = 4; return a * b + (a - b); }",
            "int g = 10; int main() { int i; for (i = 0; i < g; i++) ; return i; }",
            "int sq(int x) { return x * x; } int main() { return sq(3) + sq(4); }",
            "int main() { int a[4] = {1,2,3,4}; int *p = &a[0]; return *(p + 2); }",
            "int main() { int x = 1; { int y = 2; x += y; } return x; }",
        ];
        for src in srcs {
            let p = parse(src).expect("parses");
            let reference =
                crate::interp::run(&p, crate::interp::Limits::default()).expect("UB-free");
            let vm = run_src(src);
            assert_eq!(reference.exit_code, vm.exit_code, "{src}");
            assert_eq!(reference.output, vm.output, "{src}");
        }
    }
}
