//! Pass/point coverage accounting for the compiler under test.
//!
//! Stands in for the gcov measurements of the paper's Figure 9: each
//! compiler pass declares a fixed set of *coverage points* (its "lines"),
//! and each pass that runs at all counts as a covered "function". The
//! harness accumulates coverage across many test programs and reports the
//! same two percentages the paper plots.

use std::collections::HashSet;

/// The static universe of passes and their point counts. The exact
/// numbers act as "lines per function"; they only need to be stable.
pub const PASS_POINTS: &[(&str, u32)] = &[
    ("parse", 16),
    ("sema", 18),
    ("fold", 30),
    ("ccp", 16),
    ("dce", 12),
    ("copyprop", 8),
    ("alias", 10),
    ("loop", 16),
    ("lower", 24),
    ("regalloc", 12),
    ("emit", 10),
    // The "GIMPLE canonicalization" pass: one point per distinct
    // (statement kind × operator sequence × variable-usage partition
    // shape) combination. Variable-usage shapes are exactly what SPE
    // enumerates, so this large sparse space models the deep pass paths
    // real compilers key on dependence structure (paper §1, observation
    // 2).
    ("gimple", 4096),
];

/// A set of hit coverage points.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Coverage {
    hits: HashSet<(&'static str, u32)>,
}

impl Coverage {
    /// Creates an empty coverage map.
    pub fn new() -> Coverage {
        Coverage::default()
    }

    /// Records that `point` of `pass` executed. Unknown passes or points
    /// beyond the declared count are ignored (defensive).
    pub fn hit(&mut self, pass: &'static str, point: u32) {
        if PASS_POINTS.iter().any(|&(p, n)| p == pass && point < n) {
            self.hits.insert((pass, point));
        }
    }

    /// Merges another run's coverage into this one.
    pub fn merge(&mut self, other: &Coverage) {
        self.hits.extend(other.hits.iter().copied());
    }

    /// Number of distinct points hit.
    pub fn points_hit(&self) -> usize {
        self.hits.len()
    }

    /// Fraction of passes with at least one hit — the paper's "function
    /// coverage".
    ///
    /// ```
    /// let mut c = spe_simcc::coverage::Coverage::new();
    /// c.hit("fold", 0);
    /// assert!(c.function_coverage() > 0.0);
    /// ```
    pub fn function_coverage(&self) -> f64 {
        let covered = PASS_POINTS
            .iter()
            .filter(|&&(p, _)| self.hits.iter().any(|&(hp, _)| hp == p))
            .count();
        covered as f64 / PASS_POINTS.len() as f64
    }

    /// Fraction of all points hit — the paper's "line coverage".
    pub fn line_coverage(&self) -> f64 {
        let total: u32 = PASS_POINTS.iter().map(|&(_, n)| n).sum();
        self.hits.len() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_coverage_is_zero() {
        let c = Coverage::new();
        assert_eq!(c.function_coverage(), 0.0);
        assert_eq!(c.line_coverage(), 0.0);
    }

    #[test]
    fn hits_accumulate_and_dedup() {
        let mut c = Coverage::new();
        c.hit("fold", 0);
        c.hit("fold", 0);
        c.hit("fold", 1);
        assert_eq!(c.points_hit(), 2);
    }

    #[test]
    fn unknown_points_ignored() {
        let mut c = Coverage::new();
        c.hit("nonexistent", 0);
        c.hit("fold", 9999);
        assert_eq!(c.points_hit(), 0);
    }

    #[test]
    fn merge_unions() {
        let mut a = Coverage::new();
        a.hit("fold", 0);
        let mut b = Coverage::new();
        b.hit("dce", 1);
        b.hit("fold", 0);
        a.merge(&b);
        assert_eq!(a.points_hit(), 2);
    }

    #[test]
    fn full_function_coverage_needs_every_pass() {
        let mut c = Coverage::new();
        for &(p, _) in PASS_POINTS {
            c.hit(p, 0);
        }
        assert!((c.function_coverage() - 1.0).abs() < 1e-12);
        assert!(c.line_coverage() < 1.0);
    }
}
