//! `simcc` — the simulated optimizing C compiler under test.
//!
//! The SPE paper's evaluation differential-tests GCC and Clang. This crate
//! is the workspace's stand-in (see `DESIGN.md` §3): a complete
//! mini-C toolchain with
//!
//! * a strict **reference interpreter** with UB detection ([`interp`],
//!   playing CompCert's oracle role),
//! * an **optimizing pipeline** (constant folding, constant propagation,
//!   DCE, alias-based reordering, loop clean-up; [`passes`]),
//! * a **bytecode backend and VM** ([`vm`]),
//! * per-pass **coverage accounting** ([`coverage`]), and
//! * a registry of **seeded defects** with bug-report metadata
//!   ([`bugs`]), gated by compiler family and version, so one campaign
//!   reproduces both the stable-release and the trunk experiments.
//!
//! # Quick start
//!
//! ```
//! use spe_simcc::{Compiler, CompilerId};
//!
//! let cc = Compiler::new(CompilerId::gcc(485), 2); // "gcc-sim 4.8.5 -O2"
//! let prog = spe_minic::parse("int main() { return 2 + 3; }")?;
//! let compiled = cc.compile(&prog)?;
//! let out = compiled.execute(100_000)?;
//! assert_eq!(out.exit_code, 5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The differential oracle itself is pluggable: [`backend`] abstracts
//! [`Compiler::observe`] behind the [`backend::CompilerBackend`] trait,
//! so campaigns can drive this in-process simulator or external compiler
//! binaries (the `spe-subproc` crate) through one interface.

#![warn(missing_docs)]

pub mod backend;
pub mod bugs;
pub mod coverage;
pub mod incremental;
pub mod interp;
pub mod passes;
pub mod vm;

use bugs::{registry, BugKind, BugSpec};
use coverage::Coverage;
use spe_minic::ast::Program;
use std::fmt;

pub(crate) use passes::const_arith as passes_const_arith;

/// Identity of a compiler under test: family plus version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompilerId {
    /// `"gcc-sim"` or `"clang-sim"`.
    pub family: &'static str,
    /// Version number (e.g. 485 = 4.8.5, 700 = trunk).
    pub version: u32,
}

impl CompilerId {
    /// A gcc-sim of the given version.
    pub fn gcc(version: u32) -> CompilerId {
        CompilerId {
            family: "gcc-sim",
            version,
        }
    }

    /// A clang-sim of the given version.
    pub fn clang(version: u32) -> CompilerId {
        CompilerId {
            family: "clang-sim",
            version,
        }
    }
}

impl fmt::Display for CompilerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (v{})", self.family, self.version)
    }
}

/// An internal compiler error: the observable form of a crash bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ice {
    /// Registry id of the seeded defect.
    pub bug_id: &'static str,
    /// Crash signature (what the harness deduplicates on).
    pub signature: &'static str,
    /// Pass that crashed.
    pub pass: &'static str,
}

impl fmt::Display for Ice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.signature)
    }
}

impl std::error::Error for Ice {}

/// Compilation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The compiler crashed (a seeded crash defect fired).
    Ice(Ice),
    /// The program uses constructs outside the lowerable subset.
    Unsupported(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Ice(i) => write!(f, "{i}"),
            CompileError::Unsupported(w) => write!(f, "unsupported: {w}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A successful compilation.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The executable image.
    pub image: vm::Image,
    /// Coverage recorded during compilation.
    pub coverage: Coverage,
    /// Ids of wrong-code defects whose rewrite applied (ground truth for
    /// triage tests; the harness discovers miscompiles differentially).
    pub miscompiled_by: Vec<&'static str>,
    /// Ids of performance defects that fired.
    pub slow_compile_bugs: Vec<&'static str>,
}

impl Compiled {
    /// Runs the image.
    ///
    /// # Errors
    ///
    /// Returns a [`vm::Trap`] on runtime faults.
    pub fn execute(&self, fuel: u64) -> Result<vm::VmExecution, vm::Trap> {
        vm::execute(&self.image, fuel)
    }
}

/// The compiler under test: a [`CompilerId`] plus optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Compiler {
    id: CompilerId,
    opt: u8,
}

impl Compiler {
    /// Creates a compiler instance.
    ///
    /// # Panics
    ///
    /// Panics if `opt > 3`.
    pub fn new(id: CompilerId, opt: u8) -> Compiler {
        assert!(opt <= 3, "optimization levels are 0..=3");
        Compiler { id, opt }
    }

    /// The compiler's identity.
    pub fn id(&self) -> CompilerId {
        self.id
    }

    /// The optimization level.
    pub fn opt(&self) -> u8 {
        self.opt
    }

    /// The seeded defects live in this compiler at this optimization
    /// level.
    pub fn live_bugs(&self) -> Vec<BugSpec> {
        registry()
            .into_iter()
            .filter(|b| {
                b.compiler == self.id.family && b.live_in(self.id.version) && b.fires_at(self.opt)
            })
            .collect()
    }

    /// Compiles a program: structural bug diagnosis, optimization
    /// pipeline, lowering.
    ///
    /// # Errors
    ///
    /// [`CompileError::Ice`] when a seeded crash defect triggers;
    /// [`CompileError::Unsupported`] for non-lowerable constructs.
    pub fn compile(&self, p: &Program) -> Result<Compiled, CompileError> {
        let mut coverage = Coverage::new();
        structural_coverage(p, &mut coverage);

        let live = self.live_bugs();
        // One structural scan answers every live trigger (previously
        // each trigger re-walked the whole AST).
        let facts = bugs::scan_facts(p);
        let triggered: Vec<&BugSpec> = live
            .iter()
            .filter(|b| facts.matches(b.trigger))
            .collect();
        if let Some(crash) = triggered.iter().find_map(|b| match b.kind {
            BugKind::Crash(sig) => Some(Ice {
                bug_id: b.id,
                signature: sig,
                pass: b.pass,
            }),
            _ => None,
        }) {
            return Err(CompileError::Ice(crash));
        }
        let slow_compile_bugs: Vec<&'static str> = triggered
            .iter()
            .filter(|b| matches!(b.kind, BugKind::Performance))
            .map(|b| b.id)
            .collect();
        let wrong_code: Vec<&BugSpec> = triggered
            .iter()
            .copied()
            .filter(|b| matches!(b.kind, BugKind::WrongCode))
            .collect();

        let mut ctx = passes::PassCtx {
            opt: self.opt,
            wrong_code,
            coverage: &mut coverage,
            miscompiled_by: Vec::new(),
        };
        let optimized = passes::optimize(p, &mut ctx);
        let miscompiled_by = std::mem::take(&mut ctx.miscompiled_by);

        coverage.hit("lower", 0);
        let image = vm::lower(&optimized).map_err(|e| CompileError::Unsupported(e.0))?;
        coverage.hit("regalloc", 0);
        coverage.hit("emit", 0);
        // Backend coverage scales with code-size buckets.
        let size_bucket = (image.instrs.len() / 16).min(5) as u32;
        coverage.hit("lower", 1 + size_bucket);
        coverage.hit("regalloc", 1 + size_bucket.min(6));
        coverage.hit("emit", 1 + size_bucket.min(4));

        Ok(Compiled {
            image,
            coverage,
            miscompiled_by,
            slow_compile_bugs,
        })
    }
}

/// The bug-relevant outcome of compiling (and, differentially, running)
/// one program under one compiler configuration.
///
/// This is the oracle entry point shared by the campaign harness and the
/// `spe-reduce` test-case reducer: "does this program still reproduce the
/// same kind of defect with the same bug id?" is answered entirely from
/// one `Observation` (see `spe_harness::reduction`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Observation {
    /// The internal compiler error, when a seeded crash defect fired.
    pub ice: Option<Ice>,
    /// The program fell outside the lowerable subset (no verdict).
    pub unsupported: bool,
    /// Wrong-code defects whose rewrite applied during optimization.
    pub miscompiled_by: Vec<&'static str>,
    /// Performance defects that fired (compilation still succeeded).
    pub slow_compile: Vec<&'static str>,
    /// The reference interpreter hit undefined behaviour or ran out of
    /// fuel, so the differential verdict is vacuous (§5.4's skip rule).
    pub reference_ub: bool,
    /// Differential mismatch against the reference on a UB-free input
    /// (exit code, output, or a runtime trap of the compiled image).
    pub wrong_code: bool,
    /// How the compiled image diverged when [`Observation::wrong_code`]
    /// is set (`None` otherwise) — the observable divergence class the
    /// harness's trigger-aware duplicate folding keys on.
    pub divergence: Option<Divergence>,
}

/// The observable way a compiled image disagreed with the UB-free
/// reference execution. Classes are checked in this order; the first
/// difference wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Divergence {
    /// Different exit code.
    ExitCode,
    /// Same exit code, different program output.
    Output,
    /// The compiled image trapped (or ran out of fuel) where the
    /// reference did not.
    Trap,
}

impl Divergence {
    /// Stable label, used in trigger signatures.
    pub fn label(self) -> &'static str {
        match self {
            Divergence::ExitCode => "exit-code",
            Divergence::Output => "output",
            Divergence::Trap => "trap",
        }
    }
}

/// The reference-interpreter limits the campaign harness and the
/// reduction oracle share: `fuel` interpreter steps, call depth 64.
pub fn reference_limits(fuel: u64) -> interp::Limits {
    interp::Limits {
        fuel,
        max_depth: 64,
    }
}

/// Differential verdict: whether running `compiled` (with the campaign's
/// `4 * fuel` VM allowance) disagrees with the UB-free reference
/// execution `expected` — by exit code, output, or a runtime trap.
pub fn differs_from_reference(
    compiled: &Compiled,
    expected: &interp::Execution,
    fuel: u64,
) -> bool {
    divergence_from_reference(compiled, expected, fuel).is_some()
}

/// [`differs_from_reference`], classified: *how* the compiled image
/// disagreed with the reference, `None` when the executions agree.
pub fn divergence_from_reference(
    compiled: &Compiled,
    expected: &interp::Execution,
    fuel: u64,
) -> Option<Divergence> {
    divergence_from_image(&compiled.image, expected, fuel)
}

/// [`divergence_from_reference`] on a bare VM image — the form the
/// incremental oracle memoizes (it caches images per pass-pipeline key
/// rather than whole [`Compiled`] values).
pub fn divergence_from_image(
    image: &vm::Image,
    expected: &interp::Execution,
    fuel: u64,
) -> Option<Divergence> {
    match vm::execute(image, fuel * 4) {
        Ok(run) if run.exit_code != expected.exit_code => Some(Divergence::ExitCode),
        Ok(run) if run.output != expected.output => Some(Divergence::Output),
        Ok(_) => None,
        Err(_) => Some(Divergence::Trap),
    }
}

impl Compiler {
    /// Observes what this configuration does on `p`.
    ///
    /// With `wrong_code_fuel: Some(fuel)` and a successful compile, the
    /// UB-checking reference interpreter runs with `fuel` (and the
    /// compiled image with `4 * fuel`, mirroring the campaign harness) to
    /// fill the differential fields; with `None` only the compile-time
    /// fields are observed — the cheap mode for crash and performance
    /// oracles.
    pub fn observe(&self, p: &Program, wrong_code_fuel: Option<u64>) -> Observation {
        match self.compile(p) {
            Err(CompileError::Ice(ice)) => Observation {
                ice: Some(ice),
                ..Observation::default()
            },
            Err(CompileError::Unsupported(_)) => Observation {
                unsupported: true,
                ..Observation::default()
            },
            Ok(compiled) => {
                let mut obs = Observation {
                    miscompiled_by: compiled.miscompiled_by.clone(),
                    slow_compile: compiled.slow_compile_bugs.clone(),
                    ..Observation::default()
                };
                if let Some(fuel) = wrong_code_fuel {
                    match interp::run(p, reference_limits(fuel)) {
                        Err(_) => obs.reference_ub = true,
                        Ok(expected) => {
                            obs.divergence =
                                divergence_from_reference(&compiled, &expected, fuel);
                            obs.wrong_code = obs.divergence.is_some();
                        }
                    }
                }
                obs
            }
        }
    }
}

/// Compiles only for coverage: runs the full pipeline with every seeded
/// defect disabled and reports the coverage even if lowering fails.
/// Used by the Figure 9 coverage experiments.
pub fn coverage_probe(p: &Program, opt: u8) -> Coverage {
    let mut coverage = Coverage::new();
    structural_coverage(p, &mut coverage);
    let mut ctx = passes::PassCtx {
        opt,
        wrong_code: Vec::new(),
        coverage: &mut coverage,
        miscompiled_by: Vec::new(),
    };
    let optimized = passes::optimize(p, &mut ctx);
    coverage.hit("lower", 0);
    if let Ok(image) = vm::lower(&optimized) {
        coverage.hit("regalloc", 0);
        coverage.hit("emit", 0);
        let size_bucket = (image.instrs.len() / 16).min(5) as u32;
        coverage.hit("lower", 1 + size_bucket);
        coverage.hit("regalloc", 1 + size_bucket.min(6));
        coverage.hit("emit", 1 + size_bucket.min(4));
    }
    coverage
}

/// Records frontend coverage points keyed by which constructs appear.
fn structural_coverage(p: &Program, cov: &mut Coverage) {
    use spe_minic::ast::{ExprKind, Item, Stmt};
    cov.hit("parse", 0);
    cov.hit("sema", 0);
    pattern_coverage(p, cov);
    fn stmt(s: &Stmt, cov: &mut Coverage) {
        match s {
            Stmt::If(..) => cov.hit("parse", 1),
            Stmt::While(..) => cov.hit("parse", 2),
            Stmt::For(..) => cov.hit("parse", 3),
            Stmt::DoWhile(..) => cov.hit("parse", 4),
            Stmt::Goto(_) => cov.hit("parse", 5),
            Stmt::Label(..) => cov.hit("parse", 6),
            Stmt::Return(_) => cov.hit("parse", 7),
            Stmt::Decl(_) => cov.hit("sema", 1),
            Stmt::Block(_) => cov.hit("sema", 2),
            _ => {}
        }
        match s {
            Stmt::Block(b) => b.iter().for_each(|s| stmt(s, cov)),
            Stmt::If(c, t, e) => {
                expr(c, cov);
                stmt(t, cov);
                if let Some(e) = e {
                    stmt(e, cov);
                }
            }
            Stmt::While(c, b) | Stmt::DoWhile(b, c) => {
                expr(c, cov);
                stmt(b, cov);
            }
            Stmt::For(_, c, st, b) => {
                if let Some(c) = c {
                    expr(c, cov);
                }
                if let Some(st) = st {
                    expr(st, cov);
                }
                stmt(b, cov);
            }
            Stmt::Expr(e) => expr(e, cov),
            Stmt::Return(Some(e)) => expr(e, cov),
            Stmt::Label(_, inner) => stmt(inner, cov),
            _ => {}
        }
    }
    fn expr(e: &spe_minic::ast::Expr, cov: &mut Coverage) {
        match &e.kind {
            ExprKind::Ternary(..) => cov.hit("parse", 8),
            ExprKind::Call(..) => cov.hit("parse", 9),
            ExprKind::Index(..) => cov.hit("parse", 10),
            ExprKind::Unary(spe_minic::ast::UnaryOp::Deref | spe_minic::ast::UnaryOp::Addr, _) => {
                cov.hit("parse", 11)
            }
            ExprKind::Assign(_, lhs, rhs) => {
                cov.hit("sema", 3);
                // Dependence shape: does the target feed itself?
                if let ExprKind::Ident(l) = &lhs.kind {
                    let mut self_dep = false;
                    let mut reads = 0u32;
                    rhs.for_each_ident(&mut |id| {
                        reads += 1;
                        if id.name == l.name {
                            self_dep = true;
                        }
                    });
                    cov.hit("sema", if self_dep { 8 } else { 9 });
                    cov.hit("sema", 10 + reads.min(5));
                }
            }
            ExprKind::Binary(op, a, b) => {
                cov.hit("sema", 4);
                // Operand shape: same variable on both sides exercises
                // the compiler's operand-equality paths.
                if let (ExprKind::Ident(x), ExprKind::Ident(y)) = (&a.kind, &b.kind) {
                    cov.hit("sema", if x.name == y.name { 16 } else { 17 });
                    let _ = op;
                }
            }
            _ => {}
        }
        match &e.kind {
            ExprKind::Unary(_, a) | ExprKind::Post(_, a) | ExprKind::Cast(_, a) => expr(a, cov),
            ExprKind::Binary(_, a, b)
            | ExprKind::Assign(_, a, b)
            | ExprKind::Index(a, b)
            | ExprKind::Comma(a, b) => {
                expr(a, cov);
                expr(b, cov);
            }
            ExprKind::Ternary(c, t, e2) => {
                expr(c, cov);
                expr(t, cov);
                expr(e2, cov);
            }
            ExprKind::Call(_, args) => args.iter().for_each(|a| expr(a, cov)),
            ExprKind::Member(a, _, _) => expr(a, cov),
            _ => {}
        }
    }
    for item in &p.items {
        match item {
            Item::Func(f) => {
                cov.hit("sema", 5);
                f.body.iter().for_each(|s| stmt(s, cov));
            }
            Item::Global(_) => cov.hit("sema", 6),
            Item::Struct(_) => cov.hit("sema", 7),
        }
    }
}

/// One coverage point per distinct variable-usage pattern of each
/// statement: the canonical form is the statement's operator skeleton
/// plus the restricted-growth encoding of its variable occurrences
/// (which holes share a variable), hashed into the "gimple" point space.
fn pattern_coverage(p: &Program, cov: &mut Coverage) {
    use spe_minic::ast::{Expr, Item, Stmt};
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn op_skeleton(e: &Expr, out: &mut String) {
        use spe_minic::ast::ExprKind as K;
        match &e.kind {
            K::IntLit(_) => out.push('n'),
            K::CharLit(_) => out.push('c'),
            K::StrLit(_) => out.push('s'),
            K::Ident(_) => out.push('v'),
            K::Unary(op, a) => {
                out.push('u');
                out.push_str(op.as_str());
                op_skeleton(a, out);
            }
            K::Post(op, a) => {
                out.push('p');
                out.push_str(op.as_str());
                op_skeleton(a, out);
            }
            K::Binary(op, a, b) => {
                out.push('b');
                out.push_str(op.as_str());
                op_skeleton(a, out);
                op_skeleton(b, out);
            }
            K::Assign(op, a, b) => {
                out.push('=');
                out.push_str(op.as_str());
                op_skeleton(a, out);
                op_skeleton(b, out);
            }
            K::Ternary(c, t, e2) => {
                out.push('?');
                op_skeleton(c, out);
                op_skeleton(t, out);
                op_skeleton(e2, out);
            }
            K::Call(name, args) => {
                out.push('(');
                out.push_str(name);
                for a in args {
                    op_skeleton(a, out);
                }
            }
            K::Index(a, i) => {
                out.push('[');
                op_skeleton(a, out);
                op_skeleton(i, out);
            }
            K::Member(a, f, _) => {
                out.push('.');
                out.push_str(f);
                op_skeleton(a, out);
            }
            K::Cast(_, a) => {
                out.push('t');
                op_skeleton(a, out);
            }
            K::Comma(a, b) => {
                out.push(',');
                op_skeleton(a, out);
                op_skeleton(b, out);
            }
        }
    }

    fn stmt_patterns(s: &Stmt, cov: &mut Coverage) {
        let mut exprs: Vec<&Expr> = Vec::new();
        match s {
            Stmt::Expr(e) | Stmt::Return(Some(e)) => exprs.push(e),
            Stmt::If(c, t, e2) => {
                exprs.push(c);
                stmt_patterns(t, cov);
                if let Some(e2) = e2 {
                    stmt_patterns(e2, cov);
                }
            }
            Stmt::While(c, b) | Stmt::DoWhile(b, c) => {
                exprs.push(c);
                stmt_patterns(b, cov);
            }
            Stmt::For(_, c, st, b) => {
                if let Some(c) = c {
                    exprs.push(c);
                }
                if let Some(st) = st {
                    exprs.push(st);
                }
                stmt_patterns(b, cov);
            }
            Stmt::Block(b) => b.iter().for_each(|s| stmt_patterns(s, cov)),
            Stmt::Label(_, inner) => stmt_patterns(inner, cov),
            Stmt::Decl(ds) => {
                for d in ds {
                    if let Some(i) = &d.init {
                        exprs.push(i);
                    }
                }
            }
            _ => {}
        }
        for e in exprs {
            let mut skeleton = String::new();
            op_skeleton(e, &mut skeleton);
            // RGS of the expression's variable occurrences: the usage
            // partition SPE enumerates.
            let mut labels: Vec<usize> = Vec::new();
            let mut order: Vec<String> = Vec::new();
            e.for_each_ident(&mut |id| {
                let idx = match order.iter().position(|n| *n == id.name) {
                    Some(i) => i,
                    None => {
                        order.push(id.name.clone());
                        order.len() - 1
                    }
                };
                labels.push(idx);
            });
            let mut h = DefaultHasher::new();
            skeleton.hash(&mut h);
            labels.hash(&mut h);
            cov.hit("gimple", (h.finish() % 4096) as u32);
        }
    }

    for item in &p.items {
        if let Item::Func(f) = item {
            f.body.iter().for_each(|s| stmt_patterns(s, cov));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_minic::parse;

    #[test]
    fn clean_compile_and_run() {
        let cc = Compiler::new(CompilerId::gcc(485), 2);
        let p = parse("int main() { int a = 6, b = 7; return a * b; }").expect("parses");
        let c = cc.compile(&p).expect("compiles");
        assert_eq!(c.execute(100_000).expect("runs").exit_code, 42);
        assert!(c.miscompiled_by.is_empty());
    }

    #[test]
    fn figure3_crashes_trunk_gcc_at_all_levels() {
        let src =
            "int d, e, b, c; int main(void) { e ? (d==0 ? b : c) : (d==0 ? b : c); return 0; }";
        let p = parse(src).expect("parses");
        for opt in 0..=3 {
            let cc = Compiler::new(CompilerId::gcc(700), opt);
            match cc.compile(&p) {
                Err(CompileError::Ice(ice)) => {
                    assert_eq!(ice.bug_id, "gcc-69801");
                    assert!(ice.signature.contains("operand_equal_p"));
                }
                other => panic!("expected ICE at -O{opt}, got {other:?}"),
            }
        }
        // The stable 4.8.5 release predates the defect (at -O1, where
        // the 4-distinct-variables register-allocator bug does not fire).
        let stable = Compiler::new(CompilerId::gcc(485), 1);
        assert!(stable.compile(&p).is_ok());
    }

    #[test]
    fn figure2_miscompiles_with_alias_bug() {
        let src = "int a = 0; int main() { int *p = &a, *q = &a; *p = 1; *q = 2; return a; }";
        let p = parse(src).expect("parses");
        let reference = interp::run(&p, interp::Limits::default()).expect("UB-free");
        assert_eq!(reference.exit_code, 2);
        // Buggy gcc-sim at -O1+ returns 1 instead — the Figure 2 report.
        let cc = Compiler::new(CompilerId::gcc(485), 2);
        let compiled = cc.compile(&p).expect("compiles");
        assert_eq!(compiled.miscompiled_by, vec!["gcc-69951"]);
        let out = compiled.execute(100_000).expect("runs");
        assert_eq!(out.exit_code, 1, "miscompiled exit code");
    }

    #[test]
    fn version_gating_controls_bugs() {
        let src = "int x, y, z, w, v; int main() { v = x + y * z - w + v; return 0; }";
        let p = parse(src).expect("parses");
        // gcc-lra-1281 (DistinctVars(4), opt>=2) lives in [485, 600).
        assert!(matches!(
            Compiler::new(CompilerId::gcc(485), 2).compile(&p),
            Err(CompileError::Ice(ice)) if ice.bug_id == "gcc-lra-1281"
        ));
        assert!(Compiler::new(CompilerId::gcc(485), 1).compile(&p).is_ok());
        assert!(Compiler::new(CompilerId::gcc(440), 2).compile(&p).is_ok());
        // The same program has 5 distinct vars, tripping clang-distinct5.
        assert!(matches!(
            Compiler::new(CompilerId::clang(390), 2).compile(&p),
            Err(CompileError::Ice(ice)) if ice.bug_id == "clang-distinct5"
        ));
    }

    #[test]
    fn optimized_output_matches_reference_when_no_bugs() {
        let srcs = [
            "int main() { int a = 3, b = 4; if (a < b) a = b; return a; }",
            "int g = 2; int main() { int s = 0; for (int i = 0; i < 4; i++) s += g; return s; }",
            "int f(int n) { return n * 2; } int main() { return f(f(5)); }",
        ];
        let cc = Compiler::new(CompilerId::gcc(440), 3);
        for src in srcs {
            let p = parse(src).expect("parses");
            let reference = interp::run(&p, interp::Limits::default()).expect("UB-free");
            let compiled = cc.compile(&p).expect("compiles");
            assert!(compiled.miscompiled_by.is_empty(), "{src}");
            let out = compiled.execute(1_000_000).expect("runs");
            assert_eq!(reference.exit_code, out.exit_code, "{src}");
        }
    }

    #[test]
    fn performance_bugs_are_reported_not_fatal() {
        // Expression nesting depth >= 8 triggers gcc-deep-expr.
        let src = "int a; int main() { a = ((((((((a + 1) + 2) + 3) + 4) + 5) + 6) + 7) + 8); return 0; }";
        let p = parse(src).expect("parses");
        let cc = Compiler::new(CompilerId::gcc(485), 1);
        let c = cc.compile(&p).expect("compiles despite slowness");
        assert!(c.slow_compile_bugs.contains(&"gcc-deep-expr"));
    }

    #[test]
    fn struct_frontend_ice() {
        let src = "struct s { int x; }; int main() { return 0; }";
        let p = parse(src).expect("parses");
        match Compiler::new(CompilerId::gcc(485), 0).compile(&p) {
            Err(CompileError::Ice(ice)) => assert_eq!(ice.bug_id, "gcc-struct-fe"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn observe_matches_compile_and_differential_run() {
        // Crash observation (no fuel needed).
        let fig3 =
            parse("int d, e, b, c; int main(void) { e ? (d==0 ? b : c) : (d==0 ? b : c); return 0; }")
                .expect("parses");
        let obs = Compiler::new(CompilerId::gcc(700), 2).observe(&fig3, None);
        assert_eq!(obs.ice.as_ref().map(|i| i.bug_id), Some("gcc-69801"));
        assert!(!obs.wrong_code);

        // Differential observation reproduces the Figure 2 miscompile.
        let fig2 =
            parse("int a = 0; int main() { int *p = &a, *q = &a; *p = 1; *q = 2; return a; }")
                .expect("parses");
        let obs = Compiler::new(CompilerId::gcc(485), 2).observe(&fig2, Some(50_000));
        assert!(obs.ice.is_none());
        assert!(obs.wrong_code, "exit code mismatch observed");
        assert!(obs.miscompiled_by.contains(&"gcc-69951"));

        // Compile-only mode leaves the differential fields untouched.
        let obs = Compiler::new(CompilerId::gcc(485), 2).observe(&fig2, None);
        assert!(!obs.wrong_code && !obs.reference_ub);

        // UB variants are marked vacuous, not wrong.
        let ub = parse("int main() { int a = 0, b = 4; b = b / a; return b; }").expect("parses");
        let obs = Compiler::new(CompilerId::gcc(440), 1).observe(&ub, Some(10_000));
        assert!(obs.reference_ub);
        assert!(!obs.wrong_code);
    }

    #[test]
    fn coverage_reported_per_compilation() {
        let cc = Compiler::new(CompilerId::gcc(440), 3);
        let p1 = parse("int main() { return 0; }").expect("parses");
        let p2 = parse(
            "int g; int main() { int *p = &g; for (int i = 0; i < 3; i++) *p += i ? 1 : 2; return g; }",
        )
        .expect("parses");
        let c1 = cc.compile(&p1).expect("compiles");
        let c2 = cc.compile(&p2).expect("compiles");
        assert!(
            c2.coverage.points_hit() > c1.coverage.points_hit(),
            "richer programs cover more of the compiler"
        );
    }
}
